//! Supervised estimator execution.
//!
//! The [`Supervisor`] wraps an [`EstimatorRegistry`] and runs every tool
//! call inside a containment boundary:
//!
//! * panics are caught with `catch_unwind` and surface as
//!   [`EstimateError::ToolFailed`] — the registry stays usable;
//! * each call gets a deterministic [`Fuel`] budget (step count, not
//!   wall-clock, so the suite stays hermetic);
//! * [`EstimateError::Transient`] failures are retried a bounded number
//!   of times, burning a seeded-PRNG backoff *in fuel steps* between
//!   attempts (again: no wall-clock);
//! * on failure the tool's declarative fallback chain is walked
//!   (tool → coarser tool → the output property's declared range), and
//!   the produced [`Figure`] carries the [`Provenance`] of whichever rung
//!   answered.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use foundation::rng::{Rng, SeedableRng, StdRng};

use crate::estimate::{EstimateError, EstimatorRegistry};
use crate::expr::Bindings;
use crate::intern::Symbol;
use crate::robust::{EstimateCache, Figure, Fuel};

/// Tunables for supervised execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Fuel budget per tool invocation (shared across its retries).
    pub fuel_limit: u64,
    /// How many times a [`EstimateError::Transient`] failure is retried.
    pub max_retries: u32,
    /// Seed for the deterministic backoff schedule.
    pub backoff_seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            fuel_limit: 1_000_000,
            max_retries: 2,
            backoff_seed: 0xD5E,
        }
    }
}

/// Counters describing what the supervisor absorbed — surfaced in
/// reports so degraded figures are visible, never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorStats {
    /// Panics caught and converted to [`EstimateError::ToolFailed`].
    pub panics_caught: u64,
    /// Transient failures retried.
    pub retries: u64,
    /// Calls answered by a fallback tool or the declared range.
    pub fallbacks_used: u64,
}

/// Runs estimators under panic isolation, fuel budgets, bounded retry
/// and declarative fallback chains.
#[derive(Debug)]
pub struct Supervisor {
    registry: EstimatorRegistry,
    config: SupervisorConfig,
    stats: std::cell::Cell<SupervisorStats>,
    cache: Option<Arc<EstimateCache>>,
}

impl Supervisor {
    /// Wraps a registry with default tunables.
    pub fn new(registry: EstimatorRegistry) -> Self {
        Supervisor::with_config(registry, SupervisorConfig::default())
    }

    /// Wraps a registry with explicit tunables.
    pub fn with_config(registry: EstimatorRegistry, config: SupervisorConfig) -> Self {
        Supervisor {
            registry,
            config,
            stats: std::cell::Cell::new(SupervisorStats::default()),
            cache: None,
        }
    }

    /// Wraps a registry with an [`EstimateCache`] layered under
    /// [`estimate`](Self::estimate): repeats of `(tool, inputs)` are
    /// answered from the cache, and only trustworthy (exact/estimated)
    /// figures are ever stored. Share the `Arc` to read stats or serve
    /// several supervisors. Do not combine with a fault-injected
    /// registry — memo hits would shift the injection schedule.
    pub fn with_cache(registry: EstimatorRegistry, cache: Arc<EstimateCache>) -> Self {
        let mut sup = Supervisor::new(registry);
        sup.cache = Some(cache);
        sup
    }

    /// The attached estimate cache, if any.
    pub fn cache(&self) -> Option<&Arc<EstimateCache>> {
        self.cache.as_ref()
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &EstimatorRegistry {
        &self.registry
    }

    /// The active tunables.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// What the supervisor has absorbed so far.
    pub fn stats(&self) -> SupervisorStats {
        self.stats.get()
    }

    /// Runs one tool supervised — panic containment, fuel, retries — with
    /// no fallback chain.
    ///
    /// # Errors
    ///
    /// The tool's terminal error after retries are exhausted;
    /// [`EstimateError::InvalidOutput`] if the tool returned a non-finite
    /// value; [`EstimateError::UnknownEstimator`] for unregistered names.
    pub fn call(&self, name: &str, inputs: &Bindings) -> Result<f64, EstimateError> {
        let fuel = Fuel::new(self.config.fuel_limit);
        // Retries share one backoff stream, seeded per (seed, tool) so
        // schedules are independent across tools yet fully reproducible.
        let mut backoff = StdRng::seed_from_u64(self.config.backoff_seed ^ hash_name(name));
        let mut attempt = 0u32;
        loop {
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                self.registry.run_with_fuel(name, inputs, &fuel)
            }));
            let result = match outcome {
                Ok(r) => r,
                Err(payload) => {
                    self.bump(|s| s.panics_caught += 1);
                    Err(EstimateError::ToolFailed(panic_message(payload.as_ref())))
                }
            };
            match result {
                Ok(v) if v.is_finite() => return Ok(v),
                Ok(v) => {
                    return Err(EstimateError::InvalidOutput(format!(
                        "{name} returned non-finite value {v}"
                    )))
                }
                Err(e) if e.is_transient() && attempt < self.config.max_retries => {
                    attempt += 1;
                    self.bump(|s| s.retries += 1);
                    // Exponential seeded backoff, paid in fuel steps; an
                    // exhausted budget ends the retry loop deterministically.
                    let base = 1u64 << attempt.min(16);
                    fuel.spend(backoff.gen_range(1..=base.max(2)))?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs `name` with its full resilience ladder and tags the result:
    ///
    /// 1. the primary tool (supervised) → [`Figure::estimated`];
    /// 2. each tool in its declared fallback chain (supervised, in
    ///    order) → [`Figure::fallback`];
    /// 3. the output property's declared `range` midpoint →
    ///    [`Figure::fallback`] with source `"declared-range"`;
    /// 4. otherwise → [`Figure::unavailable`] carrying the primary error.
    pub fn estimate(&self, name: &str, inputs: &Bindings, range: Option<(f64, f64)>) -> Figure {
        let key = self.cache.as_ref().map(|cache| {
            let tool = Symbol::intern(name);
            let fp = EstimateCache::fingerprint(inputs);
            (cache, tool, fp)
        });
        if let Some((cache, tool, fp)) = &key {
            if let Some(fig) = cache.get(*tool, *fp) {
                return fig;
            }
        }
        let fig = self.estimate_uncached(name, inputs, range);
        if let Some((cache, tool, fp)) = key {
            cache.store(tool, fp, &fig);
        }
        fig
    }

    fn estimate_uncached(&self, name: &str, inputs: &Bindings, range: Option<(f64, f64)>) -> Figure {
        let primary_err = match self.call(name, inputs) {
            Ok(v) => return Figure::estimated(v, name),
            Err(e) => e,
        };
        let chain = self
            .registry
            .get(name)
            .map(|t| t.fallbacks())
            .unwrap_or_default();
        for coarser in &chain {
            if let Ok(v) = self.call(coarser, inputs) {
                self.bump(|s| s.fallbacks_used += 1);
                return Figure::fallback(v, coarser.clone());
            }
        }
        if let Some((lo, hi)) = range {
            if lo.is_finite() && hi.is_finite() {
                self.bump(|s| s.fallbacks_used += 1);
                return Figure::fallback((lo + hi) / 2.0, "declared-range");
            }
        }
        Figure::unavailable(format!("{name}: {primary_err}"))
    }

    fn bump(&self, f: impl FnOnce(&mut SupervisorStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }
}

/// FNV-1a over the tool name: a tiny stable hash to decorrelate backoff
/// streams between tools.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Estimator;
    use crate::robust::fault::silence_injected_panics;
    use crate::robust::Provenance;
    use crate::value::Value;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Doubler;
    impl Estimator for Doubler {
        fn name(&self) -> &str {
            "Doubler"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
            inputs
                .get("X")
                .and_then(Value::as_f64)
                .map(|x| 2.0 * x)
                .ok_or_else(|| EstimateError::MissingInput("X".to_owned()))
        }
    }

    struct Panicky;
    impl Estimator for Panicky {
        fn name(&self) -> &str {
            "Panicky"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, _: &Bindings) -> Result<f64, EstimateError> {
            panic!("injected: unconditional tool crash")
        }
        fn fallbacks(&self) -> Vec<String> {
            vec!["Doubler".to_owned()]
        }
    }

    /// Fails transiently `fails` times, then succeeds.
    struct Flaky {
        fails: u64,
        calls: AtomicU64,
    }
    impl Estimator for Flaky {
        fn name(&self) -> &str {
            "Flaky"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, _: &Bindings) -> Result<f64, EstimateError> {
            if self.calls.fetch_add(1, Ordering::Relaxed) < self.fails {
                Err(EstimateError::Transient("injected: flaky".to_owned()))
            } else {
                Ok(42.0)
            }
        }
    }

    struct NanTool;
    impl Estimator for NanTool {
        fn name(&self) -> &str {
            "NanTool"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, _: &Bindings) -> Result<f64, EstimateError> {
            Ok(f64::NAN)
        }
    }

    fn x_bindings() -> Bindings {
        let mut b = Bindings::new();
        b.insert("X".to_owned(), Value::Int(21));
        b
    }

    fn supervisor(tools: Vec<Box<dyn Estimator>>) -> Supervisor {
        let mut reg = EstimatorRegistry::new();
        for t in tools {
            reg.register(t);
        }
        Supervisor::new(reg)
    }

    #[test]
    fn healthy_tool_yields_estimated_provenance() {
        let sup = supervisor(vec![Box::new(Doubler)]);
        let fig = sup.estimate("Doubler", &x_bindings(), None);
        assert_eq!(fig.value, Some(42.0));
        assert_eq!(fig.provenance, Provenance::Estimated);
        assert_eq!(sup.stats(), SupervisorStats::default());
    }

    #[test]
    fn panic_is_contained_and_fallback_chain_answers() {
        silence_injected_panics();
        let sup = supervisor(vec![Box::new(Panicky), Box::new(Doubler)]);
        let fig = sup.estimate("Panicky", &x_bindings(), None);
        assert_eq!(fig.value, Some(42.0));
        assert_eq!(fig.provenance, Provenance::Fallback);
        assert_eq!(fig.source, "Doubler");
        let stats = sup.stats();
        assert_eq!(stats.panics_caught, 1);
        assert_eq!(stats.fallbacks_used, 1);
        // The registry is still usable after the panic.
        assert_eq!(sup.call("Doubler", &x_bindings()).unwrap(), 42.0);
    }

    #[test]
    fn panic_with_no_fallback_falls_to_declared_range() {
        silence_injected_panics();
        let sup = supervisor(vec![Box::new(Panicky)]);
        let fig = sup.estimate("Panicky", &x_bindings(), Some((10.0, 30.0)));
        assert_eq!(fig.value, Some(20.0));
        assert_eq!(fig.provenance, Provenance::Fallback);
        assert_eq!(fig.source, "declared-range");
    }

    #[test]
    fn nothing_left_reports_unavailable_with_the_primary_error() {
        silence_injected_panics();
        let sup = supervisor(vec![Box::new(Panicky)]);
        let fig = sup.estimate("Panicky", &x_bindings(), None);
        assert_eq!(fig.value, None);
        assert_eq!(fig.provenance, Provenance::Unavailable);
        assert!(fig.source.contains("Panicky"), "{}", fig.source);
        assert!(fig.source.contains("crash"), "{}", fig.source);
    }

    #[test]
    fn transient_failures_are_retried_within_bounds() {
        let sup = supervisor(vec![Box::new(Flaky {
            fails: 2,
            calls: AtomicU64::new(0),
        })]);
        assert_eq!(sup.call("Flaky", &Bindings::new()).unwrap(), 42.0);
        assert_eq!(sup.stats().retries, 2);

        // Three consecutive failures exceed max_retries = 2.
        let sup = supervisor(vec![Box::new(Flaky {
            fails: 3,
            calls: AtomicU64::new(0),
        })]);
        assert!(matches!(
            sup.call("Flaky", &Bindings::new()).unwrap_err(),
            EstimateError::Transient(_)
        ));
    }

    #[test]
    fn non_finite_output_is_rejected_not_propagated() {
        let sup = supervisor(vec![Box::new(NanTool)]);
        assert!(matches!(
            sup.call("NanTool", &Bindings::new()).unwrap_err(),
            EstimateError::InvalidOutput(_)
        ));
        // ... and the range fallback covers for it.
        let fig = sup.estimate("NanTool", &Bindings::new(), Some((0.0, 8.0)));
        assert_eq!(fig.value, Some(4.0));
        assert_eq!(fig.provenance, Provenance::Fallback);
    }

    #[test]
    fn unknown_tools_and_non_finite_ranges_stay_unavailable() {
        let sup = supervisor(vec![]);
        assert!(matches!(
            sup.call("Ghost", &Bindings::new()).unwrap_err(),
            EstimateError::UnknownEstimator(_)
        ));
        let fig = sup.estimate("Ghost", &Bindings::new(), Some((f64::NEG_INFINITY, 1.0)));
        assert_eq!(fig.provenance, Provenance::Unavailable);
    }

    /// Counts how often it actually runs, so cache hits are observable.
    struct Counting {
        calls: AtomicU64,
    }
    impl Estimator for Counting {
        fn name(&self) -> &str {
            "Counting"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            inputs
                .get("X")
                .and_then(Value::as_f64)
                .ok_or_else(|| EstimateError::MissingInput("X".to_owned()))
        }
    }

    #[test]
    fn cache_answers_repeats_without_rerunning_the_tool() {
        let mut reg = EstimatorRegistry::new();
        reg.register(Box::new(Counting {
            calls: AtomicU64::new(0),
        }));
        let cache = Arc::new(EstimateCache::new());
        let sup = Supervisor::with_cache(reg, Arc::clone(&cache));
        let b = x_bindings();
        let first = sup.estimate("Counting", &b, None);
        let second = sup.estimate("Counting", &b, None);
        assert_eq!(first, second);
        assert_eq!(first.provenance, Provenance::Estimated);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));

        // A changed input is a different key: miss, not a stale hit.
        let mut other = x_bindings();
        other.insert("X", Value::Int(4));
        assert_eq!(sup.estimate("Counting", &other, None).value, Some(4.0));
        // Rolling back to the original inputs hits again.
        assert_eq!(sup.estimate("Counting", &b, None), first);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn degraded_figures_are_recomputed_until_the_tool_recovers() {
        silence_injected_panics();
        let mut reg = EstimatorRegistry::new();
        reg.register(Box::new(Panicky));
        let cache = Arc::new(EstimateCache::new());
        let sup = Supervisor::with_cache(reg, Arc::clone(&cache));
        let fig = sup.estimate("Panicky", &x_bindings(), Some((10.0, 30.0)));
        assert_eq!(fig.provenance, Provenance::Fallback);
        // The degraded figure was not stored ...
        assert!(cache.is_empty());
        assert_eq!(cache.stats().uncacheable, 1);
        // ... so once a healthy tool answers under the same name, the
        // session sees the recovery instead of the stale fallback.
        let mut healthy = EstimatorRegistry::new();
        healthy.register(Box::new(Doubler));
        struct Renamed(Doubler);
        impl Estimator for Renamed {
            fn name(&self) -> &str {
                "Panicky"
            }
            fn metric(&self) -> &str {
                "ns"
            }
            fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
                self.0.estimate(inputs)
            }
        }
        let mut recovered = EstimatorRegistry::new();
        recovered.register(Box::new(Renamed(Doubler)));
        let sup2 = Supervisor::with_cache(recovered, Arc::clone(&cache));
        let fig2 = sup2.estimate("Panicky", &x_bindings(), Some((10.0, 30.0)));
        assert_eq!(fig2.provenance, Provenance::Estimated);
        assert_eq!(fig2.value, Some(42.0));
    }

    #[test]
    fn backoff_schedule_is_deterministic() {
        let run = || {
            let sup = supervisor(vec![Box::new(Flaky {
                fails: 2,
                calls: AtomicU64::new(0),
            })]);
            sup.call("Flaky", &Bindings::new()).unwrap();
            sup.stats()
        };
        assert_eq!(run(), run());
    }
}
