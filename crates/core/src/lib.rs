#![warn(missing_docs)]
//! The **design space layer**: the paper's primary contribution.
//!
//! A design space layer is a library layer that sits on top of
//! conventional IP-reuse libraries and gives designers an *implicit*
//! representation of the space of all feasible implementations of a
//! design object, organised for systematic pruning during early
//! (conceptual) design. Its building blocks, all implemented here:
//!
//! * **Classes of design objects** ([`hierarchy::DesignSpace`],
//!   [`hierarchy::CdoId`]) — a generalization/specialization hierarchy of
//!   CDOs built on common functionality *and* proximity in the evaluation
//!   space. Properties are inherited from ancestor CDOs.
//! * **Properties** ([`property::Property`]) — the meta-data attached to a
//!   CDO: behavioural/structural *descriptions*, *requirements* (problem
//!   givens and target figures of merit), and *design issues* (areas of
//!   design decision with enumerated options). A CDO may carry at most one
//!   **generalized design issue**; each of its options spawns a child CDO,
//!   partitioning the design space.
//! * **Consistency constraints** ([`constraint::ConsistencyConstraint`]) —
//!   a single construct expressing option inconsistencies, quantitative or
//!   heuristic relations (with dependency ordering between an independent
//!   and a dependent property set), estimation-tool contexts, and
//!   dominance elimination.
//! * **Exploration sessions** ([`session::ExplorationSession`]) — the
//!   conceptual-design loop: enter requirement values, decide issues
//!   (descending the hierarchy at generalized issues), get violations and
//!   derived values from the constraints, revisit decisions.
//! * **The evaluation space** ([`eval::EvaluationSpace`]) — figures of
//!   merit, ranges, Pareto fronts and clustering, used both to organise
//!   the hierarchy and to present surviving candidates.
//! * **Estimation tools** ([`estimate::Estimator`]) — the plugin interface
//!   that CC3-style constraints bind into specific utilization contexts,
//!   for conceptual design when no suitable core exists.
//! * **Self-documentation** ([`doc`]) — every layer renders itself to
//!   human-readable Markdown, the paper's "self-documented" claim.
//! * **Static analysis** ([`analyze`], [`diag`]) — a compiler-style
//!   verification pass over a finished layer: derivation-graph cycles and
//!   unresolved references, statically contradictory constraints, dead
//!   options, unreachable child CDOs and shadowed properties, reported as
//!   [`diag::Diagnostic`]s with stable `DSLnnn` codes.
//! * **Resilience** ([`robust`]) — supervised estimator execution
//!   (panic isolation, deterministic fuel budgets, seeded retry,
//!   declarative fallback chains, provenance-tagged figures),
//!   transactional sessions with an append-only decision journal and
//!   crash recovery, and a deterministic fault-injection harness for
//!   chaos testing.
//!
//! Domain-specific layers (cryptography, IDCT) and the reuse-library
//! indexing live in the `dse-library` crate; this crate is
//! domain-agnostic.
//!
//! # A tiny layer
//!
//! ```
//! use dse::prelude::*;
//!
//! # fn main() -> Result<(), dse::DseError> {
//! let mut space = DesignSpace::new("adders");
//! let adder = space.add_root("Adder", "all adder implementations");
//! space.add_property(adder, Property::requirement(
//!     "WordSize", Domain::int_range(1, 1024), Some(Unit::bits()), "operand width",
//! ))?;
//! space.add_property(adder, Property::generalized_issue(
//!     "LogicStyle",
//!     Domain::options(["ripple-carry", "carry-look-ahead", "carry-save"]),
//!     "dominant area/delay lever",
//! ))?;
//! let children = space.specialize(adder, "LogicStyle")?;
//! assert_eq!(children.len(), 3);
//!
//! let mut session = ExplorationSession::new(&space, adder);
//! session.set_requirement("WordSize", Value::from(64))?;
//! session.decide("LogicStyle", Value::from("carry-save"))?;
//! assert_eq!(space.path_string(session.focus()), "Adder.carry-save");
//! # Ok(())
//! # }
//! ```

pub mod analyze;
pub mod behavior;
pub mod constraint;
pub mod diag;
pub mod diff;
pub mod doc;
pub mod error;
pub mod estimate;
pub mod eval;
pub mod expr;
pub mod hierarchy;
pub mod intern;
pub mod property;
pub mod robust;
pub mod script;
pub mod session;
pub mod value;

pub use error::DseError;

/// Convenient glob-import surface for layer authors.
pub mod prelude {
    pub use crate::analyze::{
        analyze, analyze_detailed, analyze_with_engine, evaluation_order, Analysis,
        DerivationGraph, DomainEngine,
    };
    pub use crate::analyze::solve::{Conflict, Solver, SolveTotals, Viability};
    pub use crate::behavior::{BehavioralDescription, OperandCoding, OperatorUse};
    pub use crate::constraint::{ConsistencyConstraint, ConstraintOutcome, Relation};
    pub use crate::diag::{DiagCode, Diagnostic, Report, Severity, Span};
    pub use crate::diff::{diff, LayerChange};
    pub use crate::error::DseError;
    pub use crate::estimate::{EstimateError, Estimator, EstimatorRegistry};
    pub use crate::eval::{EvalPoint, EvaluationSpace, FigureOfMerit};
    pub use crate::expr::{Bindings, CmpOp, Expr, Pred};
    pub use crate::hierarchy::{CdoId, DesignSpace, Symbol};
    pub use crate::property::{Property, PropertyKind, Unit};
    pub use crate::robust::{
        BreakerConfig, BreakerView, CacheStats, EstimateCache, Fault, FaultPlan, FaultRates,
        Figure, Fuel, Journal, JournalAppender, JournalDir, JournalRecord, JournaledSession,
        Provenance, RecoverError, RecoveryReport, Supervisor, SupervisorConfig,
    };
    pub use crate::script::{SessionAction, SessionScript};
    pub use crate::session::{Decision, ExplorationSession, SessionSnapshot};
    pub use crate::value::{Domain, Value};
}
