//! Estimation tools wired into the layer (the paper's CC3 context).
//!
//! When the pruned design-space region contains no suitable core, the
//! layer still assists conceptual design through early estimation. These
//! [`Estimator`] implementations are backed by the same substrates that
//! price the library cores, so estimates and core figures are mutually
//! consistent.

use dse::estimate::{EstimateError, Estimator};
use dse::expr::Bindings;
use hwmodel::behavior::{brickell_iteration, montgomery_iteration};
use swmodel::{MontgomeryVariant, ProcessorModel, SoftwareRoutine};
use techlib::Technology;

/// The paper's `BehaviorDelayEstimator`: ranks algorithm-level behavioural
/// descriptions by maximum combinational delay (CC3's
/// `MaxCombDelay_R = BehaviorDelayEstimator(B)`).
///
/// Inputs: `Algorithm` (`"Montgomery"`/`"Brickell"`), `EOL`, and
/// optionally `Radix` (default 2).
#[derive(Debug)]
pub struct BehaviorDelayEstimator {
    tech: Technology,
}

impl BehaviorDelayEstimator {
    /// Builds the estimator against a technology target.
    pub fn new(tech: Technology) -> Self {
        BehaviorDelayEstimator { tech }
    }
}

impl Estimator for BehaviorDelayEstimator {
    fn name(&self) -> &str {
        "BehaviorDelayEstimator"
    }

    fn metric(&self) -> &str {
        "max combinational delay (ns)"
    }

    fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
        let algorithm = inputs
            .get("Algorithm")
            .ok_or_else(|| EstimateError::MissingInput("Algorithm".to_owned()))?
            .as_text()
            .ok_or_else(|| EstimateError::NotApplicable("Algorithm must be text".to_owned()))?
            .to_owned();
        let eol = inputs
            .get("EOL")
            .ok_or_else(|| EstimateError::MissingInput("EOL".to_owned()))?
            .as_i64()
            .ok_or_else(|| EstimateError::NotApplicable("EOL must be an integer".to_owned()))?
            as u32;
        let radix = inputs.get("Radix").and_then(|v| v.as_i64()).unwrap_or(2) as u64;
        let k = radix.trailing_zeros().max(1);
        let graph = match algorithm.as_str() {
            "Montgomery" => montgomery_iteration(eol, k),
            "Brickell" => brickell_iteration(eol, k),
            other => {
                return Err(EstimateError::NotApplicable(format!(
                    "no behavioural description for algorithm {other:?}"
                )))
            }
        };
        Ok(graph.max_combinational_delay_ns(&self.tech))
    }
}

/// Software execution-time estimator: the analytic Koç operation counts
/// priced on a processor model.
///
/// Inputs: `EOL`, `Variant` (`"SOS"`…`"CIHS"`), `Language` (`"C"`/`"ASM"`).
#[derive(Debug)]
pub struct SoftwareTimeEstimator;

impl Estimator for SoftwareTimeEstimator {
    fn name(&self) -> &str {
        "SoftwareTimeEstimator"
    }

    fn metric(&self) -> &str {
        "execution time (µs)"
    }

    fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
        let eol = inputs
            .get("EOL")
            .ok_or_else(|| EstimateError::MissingInput("EOL".to_owned()))?
            .as_i64()
            .ok_or_else(|| EstimateError::NotApplicable("EOL must be an integer".to_owned()))?
            as u32;
        let variant_name = inputs
            .get("Variant")
            .ok_or_else(|| EstimateError::MissingInput("Variant".to_owned()))?
            .as_text()
            .unwrap_or_default()
            .to_owned();
        let variant = MontgomeryVariant::ALL
            .into_iter()
            .find(|v| v.to_string() == variant_name)
            .ok_or_else(|| {
                EstimateError::NotApplicable(format!("unknown variant {variant_name:?}"))
            })?;
        let language = inputs
            .get("Language")
            .ok_or_else(|| EstimateError::MissingInput("Language".to_owned()))?
            .as_text()
            .unwrap_or_default()
            .to_owned();
        let cpu = match language.as_str() {
            "ASM" => ProcessorModel::pentium60_asm(),
            "C" => ProcessorModel::pentium60_c(),
            other => {
                return Err(EstimateError::NotApplicable(format!(
                    "unknown language {other:?}"
                )))
            }
        };
        Ok(SoftwareRoutine::new(variant, cpu).estimate_mont_mul_us(eol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse::estimate::EstimatorRegistry;
    use dse::value::Value;

    fn bindings(pairs: &[(&str, Value)]) -> Bindings {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn behavior_estimator_ranks_montgomery_below_brickell() {
        let est = BehaviorDelayEstimator::new(Technology::g10_035());
        let mont = est
            .estimate(&bindings(&[
                ("Algorithm", Value::from("Montgomery")),
                ("EOL", Value::from(768)),
            ]))
            .unwrap();
        let brick = est
            .estimate(&bindings(&[
                ("Algorithm", Value::from("Brickell")),
                ("EOL", Value::from(768)),
            ]))
            .unwrap();
        assert!(mont < brick, "montgomery {mont} vs brickell {brick}");
    }

    #[test]
    fn behavior_estimator_reports_missing_inputs() {
        let est = BehaviorDelayEstimator::new(Technology::g10_035());
        assert_eq!(
            est.estimate(&Bindings::new()).unwrap_err(),
            EstimateError::MissingInput("Algorithm".to_owned())
        );
        assert!(matches!(
            est.estimate(&bindings(&[
                ("Algorithm", Value::from("PaperAndPencil")),
                ("EOL", Value::from(64)),
            ]))
            .unwrap_err(),
            EstimateError::NotApplicable(_)
        ));
    }

    #[test]
    fn software_estimator_orders_languages() {
        let est = SoftwareTimeEstimator;
        let asm = est
            .estimate(&bindings(&[
                ("EOL", Value::from(1024)),
                ("Variant", Value::from("CIHS")),
                ("Language", Value::from("ASM")),
            ]))
            .unwrap();
        let c = est
            .estimate(&bindings(&[
                ("EOL", Value::from(1024)),
                ("Variant", Value::from("CIHS")),
                ("Language", Value::from("C")),
            ]))
            .unwrap();
        assert!(c > 4.0 * asm);
    }

    #[test]
    fn registry_integration() {
        let mut reg = EstimatorRegistry::new();
        reg.register(Box::new(BehaviorDelayEstimator::new(Technology::g10_035())));
        reg.register(Box::new(SoftwareTimeEstimator));
        let v = reg
            .run(
                "BehaviorDelayEstimator",
                &bindings(&[
                    ("Algorithm", Value::from("Montgomery")),
                    ("EOL", Value::from(64)),
                    ("Radix", Value::from(4)),
                ]),
            )
            .unwrap();
        assert!(v > 0.0);
        assert_eq!(reg.names().len(), 2);
    }
}
