//! One benchmark per reproduced paper artifact: regenerating each
//! table/figure end to end (the `tables` harness body).

use bench::experiments::{
    ablation_cc2, ablation_pruning, fig12, fig3, fig6, fig9, fir, methods, power, table1,
    walkthrough,
};
use criterion::{criterion_group, criterion_main, Criterion};
use techlib::Technology;

fn bench_artifacts(c: &mut Criterion) {
    let tech = Technology::g10_035();
    let mut group = c.benchmark_group("artifacts");
    group.sample_size(10);
    group.bench_function("table1", |b| b.iter(|| table1::run(&tech)));
    group.bench_function("fig6", |b| b.iter(|| fig6::run(&tech)));
    group.bench_function("fig9", |b| b.iter(|| fig9::run(&tech)));
    group.bench_function("fig12", |b| b.iter(|| fig12::run(&tech)));
    group.bench_function("fig3", |b| b.iter(fig3::run));
    group.bench_function("ablation_pruning", |b| {
        b.iter(|| ablation_pruning::run(&tech))
    });
    group.bench_function("power", |b| b.iter(|| power::run(&tech)));
    group.bench_function("fir", |b| b.iter(|| fir::run(&tech)));
    group.finish();

    // The heavyweight artifacts run once per sample.
    let mut heavy = c.benchmark_group("artifacts/heavy");
    heavy.sample_size(10);
    heavy.bench_function("ablation_cc2", |b| b.iter(ablation_cc2::run));
    heavy.bench_function("walkthrough", |b| b.iter(walkthrough::render));
    heavy.bench_function("methods", |b| b.iter(methods::run));
    heavy.finish();
}

criterion_group!(benches, bench_artifacts);
criterion_main!(benches);
