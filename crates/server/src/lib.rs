#![warn(missing_docs)]
//! `dse-serve`: a concurrent multi-session exploration daemon over
//! shared design-space snapshots.
//!
//! A design space layer is read-mostly: layers are authored rarely and
//! explored constantly, often by several designers (or several agents
//! of one designer) at once. This crate turns the workspace's
//! exploration machinery into a long-running TCP daemon:
//!
//! * [`Snapshot`] — an immutable, `Arc`-shared design space plus reuse
//!   library. Opening a session never clones a space; thousands of
//!   sessions borrow one snapshot.
//! * [`Engine`] — the transport-independent core: session lifecycle
//!   (`open`/`close`, with journal-backed crash recovery), exploration
//!   ops (`decide`/`retract`/`eval`/`surviving_cores`/`report`), and
//!   control ops (`stats`/`invalidate`/`shutdown`). Per-session state
//!   is a [`dse::session::SessionSnapshot`]; each request rebuilds a
//!   borrowing session via `ExplorationSession::resume`, applies the
//!   op, and commits the new snapshot. All sessions share one
//!   process-wide estimate cache.
//! * [`protocol`] — the wire format: newline-delimited JSON, one
//!   request per line, one response per line, stable `DSL3xx` error
//!   codes, optional `id` echo for pipelining clients.
//! * [`Server`] — the TCP front on [`foundation::net`]: thread per
//!   connection, pipelined requests batched through
//!   [`Engine::handle_batch`] (independent sessions run in parallel on
//!   [`foundation::par`]; per-session order is preserved), graceful
//!   drain on `shutdown`.
//! * [`guard`] — overload protection: connection and session caps with
//!   structured `DSL309` refusals carrying `retry_after_ms`, idle
//!   connection reaping, cooperative per-request deadlines
//!   (`deadline_ms` → `DSL310`, deterministic because the budget is
//!   fuel steps rather than wall time), per-tool circuit breakers in
//!   the estimation supervisor, journal compaction with verified
//!   replay, and logical-clock TTL eviction of idle sessions (they
//!   resume transparently from their journals on next touch).
//!
//! Durability: with a journal directory configured, every mutating op
//! appends to `<session>.jsonl` *before* the new state commits and a
//! `<session>.meta` sidecar names the snapshot; at boot the engine
//! replays every journal it finds. Kill the daemon, restart it, and
//! every session is open again — a torn final record (crash
//! mid-append) is dropped with a `DSL201` diagnostic, while mid-body
//! corruption is rejected and surfaced as a boot warning.
//!
//! ```no_run
//! use std::sync::Arc;
//! use dse_server::{EngineBuilder, Server};
//! use techlib::Technology;
//!
//! let engine = EngineBuilder::new(Technology::g10_035())
//!     .with_shipped_layers()
//!     .journal_dir("/tmp/dse-journals")
//!     .build()
//!     .unwrap();
//! let server = Server::start(Arc::new(engine), "127.0.0.1:0").unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run().unwrap(); // until a shutdown request drains it
//! ```

pub mod daemon;
pub mod engine;
pub mod guard;
pub mod protocol;

pub use daemon::Server;
pub use engine::{Engine, EngineBuilder, Snapshot};
pub use guard::GuardConfig;
pub use protocol::{ProtocolError, Request};
