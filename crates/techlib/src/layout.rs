//! Layout styles — one of the design issues the paper's layer exposes
//! ("Layout Style" with options standard-cell, gate-array, …).

use std::fmt;


/// Physical implementation style. Each style applies density and speed
/// factors on top of the fabrication node's raw cell figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum LayoutStyle {
    /// Placed-and-routed standard cells: the calibration baseline.
    StandardCell,
    /// Prefabricated gate-array / sea-of-gates: faster turnaround, lower
    /// density, slower wires.
    GateArray,
    /// Hand-crafted full-custom layout: denser and faster, at design cost.
    FullCustom,
}

impl LayoutStyle {
    /// All styles, for iteration.
    pub const ALL: [LayoutStyle; 3] = [
        LayoutStyle::StandardCell,
        LayoutStyle::GateArray,
        LayoutStyle::FullCustom,
    ];

    /// Multiplier on cell area relative to standard cell.
    pub fn area_factor(self) -> f64 {
        match self {
            LayoutStyle::StandardCell => 1.0,
            LayoutStyle::GateArray => 1.45,
            LayoutStyle::FullCustom => 0.75,
        }
    }

    /// Multiplier on cell delay relative to standard cell.
    pub fn delay_factor(self) -> f64 {
        match self {
            LayoutStyle::StandardCell => 1.0,
            LayoutStyle::GateArray => 1.25,
            LayoutStyle::FullCustom => 0.85,
        }
    }
}

impl fmt::Display for LayoutStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayoutStyle::StandardCell => "standard-cell",
            LayoutStyle::GateArray => "gate-array",
            LayoutStyle::FullCustom => "full-custom",
        };
        f.write_str(s)
    }
}

foundation::impl_json_enum!(LayoutStyle { StandardCell, GateArray, FullCustom });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_cell_is_the_baseline() {
        assert_eq!(LayoutStyle::StandardCell.area_factor(), 1.0);
        assert_eq!(LayoutStyle::StandardCell.delay_factor(), 1.0);
    }

    #[test]
    fn gate_array_trades_density_for_turnaround() {
        assert!(LayoutStyle::GateArray.area_factor() > 1.0);
        assert!(LayoutStyle::GateArray.delay_factor() > 1.0);
    }

    #[test]
    fn full_custom_is_denser_and_faster() {
        assert!(LayoutStyle::FullCustom.area_factor() < 1.0);
        assert!(LayoutStyle::FullCustom.delay_factor() < 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(LayoutStyle::StandardCell.to_string(), "standard-cell");
        assert_eq!(LayoutStyle::GateArray.to_string(), "gate-array");
    }
}
