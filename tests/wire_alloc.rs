//! Counting-allocator proof of the zero-copy wire path.
//!
//! A counting `#[global_allocator]` wraps the system allocator so a
//! test can meter exactly how many heap allocations a code region
//! performs. Everything is asserted from ONE test function: the libtest
//! harness runs tests on separate threads, and a concurrent test's
//! allocations would bleed into a metering window.
//!
//! What is pinned down:
//!
//! * the borrowed request parser performs **zero** allocations on every
//!   hot-op line;
//! * a warm `stats` round-trip through `handle_line_into` with a reused
//!   response buffer performs **zero** allocations end to end — parse,
//!   dispatch, render;
//! * a warm `decide` round-trip allocates only what the session core
//!   needs: strictly fewer allocations than the tree-codec oracle for
//!   the same request, and within a fixed small budget so codec
//!   allocations cannot silently creep back in.
//!
//! The wire gate in `scripts/verify.sh` runs this suite at
//! `DSE_THREADS=1` and `DSE_THREADS=8`; metered regions never cross the
//! parallel pool, so the counts must hold at any pool size.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Allocations performed while running `f`.
fn allocations_in<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

#[test]
fn wire_codec_is_allocation_free_in_steady_state() {
    use design_space_layer::dse_server::protocol::parse_request_fast;
    use design_space_layer::dse_server::{engine::WIRE_ENGINE_ENV, EngineBuilder};

    // -- the borrowed parser never touches the heap ----------------------
    let hot_lines = [
        r#"{"op":"stats"}"#,
        r#"{"op":"open","session":"a","snapshot":"crypto"}"#,
        r#"{"op":"decide","session":"a","name":"EOL","value":768,"id":"r1"}"#,
        r#"{"op":"decide","session":"a","name":"ModuloIsOdd","value":"Guaranteed"}"#,
        r#"{"op":"retract","session":"a","name":"EOL"}"#,
        r#"{"op":"eval","session":"a","deadline_ms":60000}"#,
        r#"{"op":"surviving_cores","session":"a","limit":4,"offset":2}"#,
        r#"{"op":"viable","session":"a","name":"ImplementationStyle","id":17}"#,
        r#"{"op":"close","session":"a"}"#,
    ];
    for line in hot_lines {
        let (n, parsed) = allocations_in(|| parse_request_fast(line).is_some());
        assert!(parsed, "hot-op line must take the fast path: {line}");
        assert_eq!(n, 0, "parse_request_fast allocated {n}× on {line}");
    }

    // -- engines: one on the wire path, one forced onto the oracle -------
    std::env::set_var(WIRE_ENGINE_ENV, "tree");
    let tree = EngineBuilder::new(techlib::Technology::g10_035())
        .with_shipped_layers()
        .build()
        .expect("tree engine builds");
    std::env::remove_var(WIRE_ENGINE_ENV);
    let fast = EngineBuilder::new(techlib::Technology::g10_035())
        .with_shipped_layers()
        .build()
        .expect("fast engine builds");

    // -- a warm stats round-trip performs ZERO allocations ---------------
    let mut out = Vec::new();
    for _ in 0..16 {
        out.clear();
        fast.handle_line_into(r#"{"op":"stats"}"#, &mut out); // warm-up
    }
    let (stats_allocs, ()) = allocations_in(|| {
        for _ in 0..100 {
            out.clear();
            fast.handle_line_into(r#"{"op":"stats"}"#, &mut out);
        }
    });
    assert_eq!(
        stats_allocs, 0,
        "warm stats round-trips allocated {stats_allocs}× over 100 requests"
    );
    let (tree_stats_allocs, _) =
        allocations_in(|| tree.handle_line_tree(r#"{"op":"stats"}"#));
    assert!(
        tree_stats_allocs > 0,
        "oracle sanity: the tree codec allocates on stats"
    );

    // -- a warm decide round-trip allocates only for the session core ----
    for engine in [&tree, &fast] {
        engine.handle_line(r#"{"op":"open","session":"w","snapshot":"crypto"}"#);
    }
    let decide = r#"{"op":"decide","session":"w","name":"EOL","value":768}"#;
    let retract = r#"{"op":"retract","session":"w"}"#;
    for _ in 0..16 {
        out.clear();
        fast.handle_line_into(decide, &mut out); // warm-up
        out.clear();
        fast.handle_line_into(retract, &mut out);
    }
    let (fast_decide, ()) = allocations_in(|| {
        out.clear();
        fast.handle_line_into(decide, &mut out);
    });
    fast.handle_line(retract);
    let (tree_decide, _) = allocations_in(|| tree.handle_line_tree(decide));
    tree.handle_line_tree(retract);
    assert!(
        fast_decide < tree_decide,
        "wire path must allocate strictly less than the oracle on decide: \
         {fast_decide} vs {tree_decide}"
    );
    // The session core legitimately allocates (state clone, journal
    // record, focus path); the budget below holds the codec at zero —
    // re-adding tree parse or `format!`-style rendering blows past it.
    // Measured: ~26 allocations, all in the session core. A tree parse
    // alone adds 10+, so the budget still trips on any codec regression.
    assert!(
        fast_decide <= 32,
        "warm decide round-trip allocated {fast_decide}× — codec \
         allocations are creeping back into the wire path"
    );
}
