//! Ablation A1: how much pruning power does the generalized-first
//! ordering buy?
//!
//! The paper argues that generalized design issues must come first because
//! they discriminate the broad performance families; deciding fine-grained
//! issues first leaves the designer staring at wide, uninformative ranges
//! (the Fig. 2(c) problem). This ablation runs the same Section-5
//! requirement set through two decision orderings and records, after each
//! step, the surviving-core count and the width of the delay range.

use dse::eval::FigureOfMerit;
use dse::value::Value;
use dse_library::{crypto, Explorer};
use techlib::Technology;

use crate::fmt;

/// One decision step's observation.
#[derive(Debug, Clone)]
pub struct PruneStep {
    /// The decision made.
    pub action: String,
    /// Surviving cores after it.
    pub surviving: usize,
    /// Delay-range width (max − min) over survivors, ns.
    pub delay_spread_ns: f64,
}

/// The outcome of one ordering.
#[derive(Debug, Clone)]
pub struct OrderingTrace {
    /// Label of the ordering.
    pub label: &'static str,
    /// The steps.
    pub steps: Vec<PruneStep>,
}

fn observe(exp: &Explorer<'_>, action: String, steps: &mut Vec<PruneStep>) {
    let spread = exp
        .merit_range(&FigureOfMerit::DelayNs)
        .map(|(lo, hi)| hi - lo)
        .unwrap_or(0.0);
    steps.push(PruneStep {
        action,
        surviving: exp.surviving_cores().len(),
        delay_spread_ns: spread,
    });
}

/// Runs both orderings against the Section-5 requirements.
pub fn run(tech: &Technology) -> Vec<OrderingTrace> {
    let layer = crypto::build_layer().expect("layer builds");
    let library = crypto::build_library(tech, 768);

    let set_reqs = |exp: &mut Explorer<'_>| {
        exp.session
            .set_requirement("EOL", Value::from(768))
            .unwrap();
        exp.session
            .set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        exp.session
            .set_requirement("MaxLatencyUs", Value::from(8.0))
            .unwrap();
    };

    // Ordering 1: generalized-first (the paper's strategy).
    let mut traces = Vec::new();
    {
        let mut exp = Explorer::new(&layer.space, layer.omm, &library);
        set_reqs(&mut exp);
        let mut steps = Vec::new();
        observe(&exp, "requirements".to_owned(), &mut steps);
        for (issue, option) in [
            ("ImplementationStyle", Value::from("Hardware")),
            ("Algorithm", Value::from("Montgomery")),
            ("AdderStructure", Value::from("carry-save")),
            ("Radix", Value::from(4)),
            ("MultiplierStructure", Value::from("mux-table")),
        ] {
            exp.session.decide(issue, option.clone()).unwrap();
            observe(&exp, format!("{issue} = {option}"), &mut steps);
        }
        traces.push(OrderingTrace {
            label: "generalized-first",
            steps,
        });
    }

    // Ordering 2: detail-first — fine-grained issues decided while the
    // space still spans both broad families. (The generalized issues are
    // deferred to the end; the layer still forces CC-consistent choices.)
    {
        let mut exp = Explorer::new(&layer.space, layer.omm, &library);
        set_reqs(&mut exp);
        let mut steps = Vec::new();
        observe(&exp, "requirements".to_owned(), &mut steps);
        // Detail issues live under the Hardware class, so the descent
        // must happen, but we pick the *least* discriminating issues first.
        exp.session
            .decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        for (issue, option) in [
            ("LayoutStyle", Value::from("standard-cell")),
            ("FabricationTechnology", Value::from("0.35um")),
            ("SliceWidth", Value::from(64)),
            ("Radix", Value::from(2)),
        ] {
            exp.session.decide(issue, option.clone()).unwrap();
            observe(&exp, format!("{issue} = {option}"), &mut steps);
        }
        traces.push(OrderingTrace {
            label: "detail-first",
            steps,
        });
    }

    traces
}

/// Area under the surviving-count curve: lower = faster pruning.
pub fn pruning_area(trace: &OrderingTrace) -> f64 {
    trace.steps.iter().map(|s| s.surviving as f64).sum::<f64>() / trace.steps.len() as f64
}

/// Renders the comparison.
pub fn render(tech: &Technology) -> String {
    let traces = run(tech);
    let mut out = String::from("Ablation A1 — pruning power of decision orderings (EOL = 768)\n\n");
    for t in &traces {
        let rows: Vec<Vec<String>> = t
            .steps
            .iter()
            .map(|s| {
                vec![
                    s.action.clone(),
                    s.surviving.to_string(),
                    fmt::num(s.delay_spread_ns),
                ]
            })
            .collect();
        out.push_str(&format!(
            "{} (mean surviving cores per step: {:.1})\n{}\n",
            t.label,
            pruning_area(t),
            fmt::table(&["decision", "surviving", "delay spread (ns)"], &rows)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generalized_first_prunes_faster() {
        let traces = run(&Technology::g10_035());
        let gen = traces
            .iter()
            .find(|t| t.label == "generalized-first")
            .unwrap();
        let detail = traces.iter().find(|t| t.label == "detail-first").unwrap();
        assert!(
            pruning_area(gen) < pruning_area(detail),
            "gen {} vs detail {}",
            pruning_area(gen),
            pruning_area(detail)
        );
    }

    #[test]
    fn generalized_first_narrows_the_delay_spread_sooner() {
        let traces = run(&Technology::g10_035());
        let gen = &traces[0];
        // After the Algorithm decision (step 2), the spread is a fraction
        // of the initial hardware spread.
        let initial = gen.steps[1].delay_spread_ns;
        let after_algo = gen.steps[2].delay_spread_ns;
        assert!(after_algo < initial);
    }

    #[test]
    fn both_orderings_end_with_nonempty_candidate_sets() {
        for t in run(&Technology::g10_035()) {
            assert!(t.steps.last().unwrap().surviving > 0, "{}", t.label);
        }
    }
}
