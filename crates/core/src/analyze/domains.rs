//! Domain (abstract-interval) checks — DSL005 / DSL006 / DSL008 / DSL009.
//!
//! These passes enumerate the finitely enumerable domains a predicate
//! touches and evaluate the predicate over every combination. A
//! constraint that fires on *every* combination is a contradiction; a
//! design-issue option for which *no* combination survives is dead; a
//! spawned child CDO whose inherited option bindings leave no surviving
//! combination is unreachable.
//!
//! Soundness: a constraint is only analyzed when every property it
//! references is either fixed by the region's inherited bindings or has
//! an enumerable domain (`Enumeration`, `Flag`, `PowersOfTwo`, or an
//! integer range no wider than [`MAX_INT_RANGE_SPAN`]), and the joint
//! combination count stays below [`MAX_COMBINATIONS`]. Anything else is
//! skipped, never guessed at — so these checks produce no false errors
//! on spaces with open-ended requirement domains.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use super::solve::{count_firing_exact, survives_exact, SolveStats, SolveTotals, SEARCH_NODE_BUDGET};
use super::DomainEngine;
use crate::constraint::Relation;
use crate::diag::{DiagCode, Diagnostic, Span};
use crate::expr::{Bindings, Pred};
use crate::hierarchy::{CdoId, DesignSpace};
use crate::property::PropertyKind;
use crate::value::{Domain, Value};

/// Combination-count cap for the *exhaustive* (legacy oracle) engine.
/// The propagation engine has no joint cap — only the search-node
/// budget ([`SEARCH_NODE_BUDGET`]) bounds it.
pub(crate) const MAX_COMBINATIONS: usize = 4096;

/// Widest integer range the analyzer will enumerate.
pub(crate) const MAX_INT_RANGE_SPAN: i64 = 64;

/// Smallest joint combination count worth memoizing. Below this the
/// enumeration is cheaper than building the memo key, so the sequential
/// path stays fast; above it, sibling subtrees whose *relevant* region
/// bindings coincide share one verdict instead of re-enumerating.
const MEMO_MIN_COMBINATIONS: usize = 16;

/// Cross-CDO memo for the elimination sweeps, shared by the per-CDO
/// parallel fan-out (interior mutability, `Sync`). Routes every query
/// through the engine selected at construction: the propagation-guided
/// exact search by default, the legacy exhaustive odometer as the test
/// oracle. Both engines are exact; memo hits only save work, never
/// change verdicts. `None` entries record "too large for this engine"
/// (joint-count overflow or an exhausted search budget).
///
/// The key is exact, not a hash: the rendered predicates, the
/// enumeration axes, and the fixed bindings *projected onto the names
/// the predicates reference*. Projection is what makes the memo fire
/// across subtrees — a deeper CDO whose extra inherited options are
/// irrelevant to the constraint set reuses the ancestor's verdict
/// ("skip unchanged subtrees"). Entries are only consulted for joint
/// enumerations of at least [`MEMO_MIN_COMBINATIONS`] combinations.
pub(crate) struct ElimMemo {
    engine: DomainEngine,
    stats: SolveStats,
    verdicts: Mutex<HashMap<String, Option<(usize, usize)>>>,
    sat: Mutex<HashMap<String, Option<bool>>>,
}

impl ElimMemo {
    pub(crate) fn new(engine: DomainEngine) -> ElimMemo {
        ElimMemo {
            engine,
            stats: SolveStats::new(),
            verdicts: Mutex::new(HashMap::new()),
            sat: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn engine(&self) -> DomainEngine {
        self.engine
    }

    /// The solver work accumulated across every query so far.
    pub(crate) fn totals(&self) -> SolveTotals {
        self.stats.snapshot()
    }

    fn absorb(&self, t: &SolveTotals) {
        self.stats.absorb(t);
    }

    /// `(firing, total)` over the joint enumeration, memoized when the
    /// combination count clears the threshold. `None` when the selected
    /// engine cannot finish (overflow / search budget) — the caller
    /// reports the skip instead of guessing.
    fn count_firing(
        &self,
        preds: &[(&str, &Pred)],
        axes: &[(String, Vec<Value>)],
        fixed: &Bindings,
    ) -> Option<(usize, usize)> {
        match Combos::total(axes) {
            None => return None,
            Some(combos) if combos < MEMO_MIN_COMBINATIONS => {
                return Some(count_firing_direct(preds, axes, fixed));
            }
            Some(_) => {}
        }
        let key = memo_key(preds, axes, fixed);
        if let Some(&v) = self.verdicts.lock().unwrap().get(&key) {
            return v;
        }
        let v = match self.engine {
            DomainEngine::Propagation => {
                let (v, totals) = count_firing_exact(preds, axes, fixed, SEARCH_NODE_BUDGET);
                self.absorb(&totals);
                v
            }
            DomainEngine::Exhaustive => Some(count_firing_direct(preds, axes, fixed)),
        };
        self.verdicts.lock().unwrap().insert(key, v);
        v
    }

    /// Whether any combination survives every predicate. Short-circuits
    /// below the memo threshold; shares `(firing, total)` entries with
    /// the contradiction counter above it.
    fn survives(
        &self,
        preds: &[(&str, &Pred)],
        axes: &[(String, Vec<Value>)],
        fixed: &Bindings,
    ) -> Option<bool> {
        if axes.is_empty() {
            // The region fixes every reference: a single combination,
            // evaluated in place without cloning the bindings.
            return Some(!eliminated(preds, fixed));
        }
        match Combos::total(axes) {
            None => return None,
            Some(combos) if combos < MEMO_MIN_COMBINATIONS => {
                return Some(Combos::new(axes, fixed).any(|b| !eliminated(preds, &b)));
            }
            Some(_) => {}
        }
        let key = memo_key(preds, axes, fixed);
        if let Some(&v) = self.verdicts.lock().unwrap().get(&key) {
            return v.map(|(firing, total)| firing < total);
        }
        if let Some(&v) = self.sat.lock().unwrap().get(&key) {
            return v;
        }
        let v = match self.engine {
            DomainEngine::Propagation => {
                let (v, totals) = survives_exact(preds, axes, fixed, SEARCH_NODE_BUDGET);
                self.absorb(&totals);
                v
            }
            DomainEngine::Exhaustive => self
                .count_firing(preds, axes, fixed)
                .map(|(firing, total)| firing < total),
        };
        self.sat.lock().unwrap().insert(key, v);
        v
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.verdicts.lock().unwrap().len()
    }
}

/// Whether the joint enumeration is even admissible for the engine: the
/// legacy oracle refuses past [`MAX_COMBINATIONS`]; the propagation
/// engine only refuses on combination-count overflow.
fn admissible(engine: DomainEngine, axes: &[(String, Vec<Value>)]) -> Result<(), Option<usize>> {
    match Combos::total(axes) {
        None => Err(None),
        Some(t) if engine == DomainEngine::Exhaustive && t > MAX_COMBINATIONS => Err(Some(t)),
        Some(_) => Ok(()),
    }
}

/// The DSL111 note for a joint domain the engine refuses or cannot
/// finish: an explicit "skipped, not guessed" marker instead of the old
/// silent skip.
fn too_large_note(span: Span, engine: DomainEngine, total: Option<usize>) -> Diagnostic {
    let message = match (engine, total) {
        (DomainEngine::Exhaustive, Some(t)) => format!(
            "domain too large for exhaustive check: {t} joint combinations exceed the \
             {MAX_COMBINATIONS}-combination cap (the propagation engine has no such cap)"
        ),
        (DomainEngine::Propagation, _) => format!(
            "domain too large for the propagation engine: the {SEARCH_NODE_BUDGET}-node \
             search budget was exhausted before a verdict"
        ),
        (DomainEngine::Exhaustive, None) => {
            "domain too large for exhaustive check: the joint combination count overflows"
                .to_owned()
        }
    };
    Diagnostic::new(DiagCode::DomainTooLarge, span, message)
}

/// Renders a "because" chain for DSL110 messages.
fn chain_text(because: &[(String, Value)]) -> String {
    if because.is_empty() {
        return "no prior decisions required".to_owned();
    }
    let mut out = String::from("because ");
    for (i, (name, value)) in because.iter().enumerate() {
        if i > 0 {
            out.push_str(" ∧ ");
        }
        let _ = write!(out, "{name} = {value}");
    }
    out
}

/// Counts combinations on which any predicate in the set fires.
fn count_firing_direct(
    preds: &[(&str, &Pred)],
    axes: &[(String, Vec<Value>)],
    fixed: &Bindings,
) -> (usize, usize) {
    if axes.is_empty() {
        return (usize::from(eliminated(preds, fixed)), 1);
    }
    let mut firing = 0usize;
    let mut total = 0usize;
    for b in Combos::new(axes, fixed) {
        total += 1;
        if eliminated(preds, &b) {
            firing += 1;
        }
    }
    (firing, total)
}

/// The exact memo key: predicates (rendered), axes, and the projection
/// of `fixed` onto the predicate reference sets.
fn memo_key(preds: &[(&str, &Pred)], axes: &[(String, Vec<Value>)], fixed: &Bindings) -> String {
    let mut key = String::new();
    for (_, p) in preds {
        let _ = write!(key, "{p}\u{1}");
    }
    key.push('\u{2}');
    for (name, values) in axes {
        let _ = write!(key, "{name}=");
        for v in values {
            let _ = write!(key, "{v},");
        }
        key.push('\u{1}');
    }
    key.push('\u{2}');
    // Only the referenced fixed bindings can influence the verdict.
    let mut relevant: Vec<String> = preds.iter().flat_map(|(_, p)| p.references()).collect();
    relevant.sort_unstable();
    relevant.dedup();
    for name in relevant {
        if let Some(v) = fixed.get(&name) {
            let _ = write!(key, "{name}={v}\u{1}");
        }
    }
    key
}

/// The finitely enumerable values of a domain, from the analyzer's point
/// of view (adds small integer ranges to `Domain::enumerate`).
fn enumerable(domain: &Domain) -> Option<Vec<Value>> {
    if let Some(vs) = domain.enumerate() {
        return Some(vs);
    }
    if let Domain::IntRange { min, max } = domain {
        let span = max.checked_sub(*min)?;
        if (0..=MAX_INT_RANGE_SPAN).contains(&span) {
            return Some((*min..=*max).map(Value::Int).collect());
        }
    }
    None
}

/// An odometer over `axes`, yielding each joint assignment merged over
/// `fixed`.
struct Combos<'a> {
    axes: &'a [(String, Vec<Value>)],
    idx: Vec<usize>,
    fixed: &'a Bindings,
    done: bool,
}

impl<'a> Combos<'a> {
    fn new(axes: &'a [(String, Vec<Value>)], fixed: &'a Bindings) -> Combos<'a> {
        Combos {
            axes,
            idx: vec![0; axes.len()],
            fixed,
            done: false,
        }
    }

    fn total(axes: &[(String, Vec<Value>)]) -> Option<usize> {
        axes.iter()
            .try_fold(1usize, |acc, (_, vs)| acc.checked_mul(vs.len()))
    }
}

impl Iterator for Combos<'_> {
    type Item = Bindings;

    fn next(&mut self) -> Option<Bindings> {
        if self.done {
            return None;
        }
        let mut b = self.fixed.clone();
        for (i, (name, vs)) in self.axes.iter().enumerate() {
            b.insert(name.clone(), vs[self.idx[i]].clone());
        }
        // Advance the odometer.
        self.done = true;
        for (i, (_, vs)) in self.axes.iter().enumerate() {
            self.idx[i] += 1;
            if self.idx[i] < vs.len() {
                self.done = false;
                break;
            }
            self.idx[i] = 0;
        }
        Some(b)
    }
}

/// Builds the enumeration axes for `refs` as seen from `anchor`, minus
/// the names already fixed. Returns `None` when any unfixed reference has
/// an unknown or non-enumerable domain — the caller must skip the check.
/// Size limits are the caller's concern ([`admissible`]): an over-cap
/// joint is reported (DSL111), never silently dropped.
fn axes_for(
    space: &DesignSpace,
    anchor: CdoId,
    refs: impl IntoIterator<Item = String>,
    fixed: &Bindings,
) -> Option<Vec<(String, Vec<Value>)>> {
    let mut axes: Vec<(String, Vec<Value>)> = Vec::new();
    for r in refs {
        if fixed.contains_key(&r) || axes.iter().any(|(n, _)| *n == r) {
            continue;
        }
        let domain = super::domain_at(space, anchor, &r)?;
        axes.push((r, enumerable(domain)?));
    }
    Some(axes)
}

/// Greedy minimization of the "because" chain behind an all-firing
/// verdict: each fixed binding the predicates reference is relaxed back
/// to its full enumerable domain, and dropped from the chain when the
/// contradiction is still provable without it. What remains is a
/// locally-minimal set of prior decisions implying the conflict.
fn minimal_because(
    space: &DesignSpace,
    anchor: CdoId,
    memo: &ElimMemo,
    preds: &[(&str, &Pred)],
    axes: &[(String, Vec<Value>)],
    fixed: &Bindings,
) -> Vec<(String, Value)> {
    let mut refs: Vec<String> = preds.iter().flat_map(|(_, p)| p.references()).collect();
    refs.sort();
    refs.dedup();
    let mut cur_axes = axes.to_vec();
    let mut cur_fixed = fixed.clone();
    let mut kept = Vec::new();
    for name in refs {
        let Some(value) = cur_fixed.get(&name).cloned() else {
            continue;
        };
        let Some(options) = super::domain_at(space, anchor, &name).and_then(enumerable) else {
            // Not relaxable (open or unknown domain): keep it — we
            // cannot prove it redundant.
            kept.push((name, value));
            continue;
        };
        let mut try_fixed = cur_fixed.clone();
        try_fixed.remove(&name);
        let mut try_axes = cur_axes.clone();
        try_axes.push((name.clone(), options));
        let (verdict, totals) = count_firing_exact(preds, &try_axes, &try_fixed, SEARCH_NODE_BUDGET);
        memo.absorb(&totals);
        match verdict {
            Some((firing, total)) if total > 0 && firing == total => {
                // Still a contradiction without this decision.
                cur_axes = try_axes;
                cur_fixed = try_fixed;
            }
            _ => kept.push((name, value)),
        }
    }
    kept
}

/// Greedy deletion over `preds`: the subset that still eliminates every
/// completion under `fixed` + `axes`. Keeps the full set whenever a
/// trial cannot be re-proved within the search budget.
fn minimal_eliminators<'a>(
    memo: &ElimMemo,
    preds: &[(&'a str, &'a Pred)],
    axes: &[(String, Vec<Value>)],
    fixed: &Bindings,
) -> Vec<&'a str> {
    let proves_dead = |trial: &[(&str, &Pred)]| -> bool {
        if axes.is_empty() {
            return eliminated(trial, fixed);
        }
        let (verdict, totals) = survives_exact(trial, axes, fixed, SEARCH_NODE_BUDGET);
        memo.absorb(&totals);
        verdict == Some(false)
    };
    let mut keep: Vec<(&str, &Pred)> = preds.to_vec();
    let mut i = 0;
    while keep.len() > 1 && i < keep.len() {
        let mut trial = keep.clone();
        trial.remove(i);
        if proves_dead(&trial) {
            keep = trial;
        } else {
            i += 1;
        }
    }
    keep.into_iter().map(|(n, _)| n).collect()
}

/// The region bindings at `id`: every `(issue, option)` accumulated along
/// the spawned-by chain.
fn region_bindings(space: &DesignSpace, id: CdoId) -> Bindings {
    space.inherited_bindings(id).into_iter().collect()
}

/// Whether any constraint in `preds` fires (eliminates) under `b`.
fn eliminated(preds: &[(&str, &Pred)], b: &Bindings) -> bool {
    preds.iter().any(|(_, p)| p.eval(b) == Ok(true))
}

// ---------------------------------------------------------------------
// DSL005 (contradiction) and DSL009 (dominance pre-pass hint).
// ---------------------------------------------------------------------

pub(crate) fn contradictions_node(
    space: &DesignSpace,
    id: CdoId,
    memo: &ElimMemo,
    out: &mut Vec<Diagnostic>,
) {
    let node = space.node(id);
    if node.own_constraints().is_empty() {
        return;
    }
    let fixed = region_bindings(space, id);
    for c in node.own_constraints() {
        let Some(pred) = super::constraint_pred(c) else {
            continue;
        };
        let Some(axes) = axes_for(space, id, pred.references(), &fixed) else {
            continue;
        };
        let span = Span::at(space.path_string(id)).constraint(c.name());
        if let Err(overflow) = admissible(memo.engine(), &axes) {
            out.push(too_large_note(span, memo.engine(), overflow));
            continue;
        }
        let Some((firing, total)) = memo.count_firing(&[(c.name(), pred)], &axes, &fixed) else {
            out.push(too_large_note(span, memo.engine(), None));
            continue;
        };
        if total == 0 {
            continue;
        }
        if firing == total {
            out.push(Diagnostic::new(
                DiagCode::Contradiction,
                span.clone(),
                format!(
                    "every one of the {total} combinations of its enumerable options violates this constraint"
                ),
            ));
            if memo.engine() == DomainEngine::Propagation {
                let because =
                    minimal_because(space, id, memo, &[(c.name(), pred)], &axes, &fixed);
                out.push(Diagnostic::new(
                    DiagCode::PropagationConflict,
                    span,
                    format!(
                        "conflict chain: {}; constraint {} fires on every assignment of its enumerable options",
                        chain_text(&because),
                        c.name()
                    ),
                ));
            }
        } else if firing > 0 && matches!(c.relation(), Relation::Dominance(_)) {
            out.push(Diagnostic::new(
                DiagCode::DominanceHint,
                span,
                format!(
                    "{firing} of {total} option combinations are statically dominated and can be pre-eliminated"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// DSL006: dead design-issue options.
// ---------------------------------------------------------------------

pub(crate) fn dead_options_node(
    space: &DesignSpace,
    id: CdoId,
    memo: &ElimMemo,
    out: &mut Vec<Diagnostic>,
) {
    let node = space.node(id);
    if !node.own_properties().iter().any(|p| {
        matches!(
            p.kind(),
            PropertyKind::DesignIssue | PropertyKind::GeneralizedIssue
        )
    }) {
        return;
    }
    let fixed = region_bindings(space, id);
    for prop in node.own_properties() {
        if !matches!(
            prop.kind(),
            PropertyKind::DesignIssue | PropertyKind::GeneralizedIssue
        ) {
            continue;
        }
        let Some(options) = enumerable(prop.domain()) else {
            continue;
        };
        // Constraints that can eliminate combinations involving this
        // issue: every pred-relation constraint effective at `id`
        // that references the issue and whose other references are
        // all enumerable or fixed.
        let effective = space.effective_constraints(id);
        // One `references()` walk per predicate, reused for both the
        // applicability filter and the joint axis set.
        let with_refs: Vec<(&str, &Pred, Vec<String>)> = effective
            .iter()
            .filter_map(|(_, c)| super::constraint_pred(c).map(|p| (c.name(), p, p.references())))
            .filter(|(_, _, refs)| refs.iter().any(|r| r == prop.name()))
            .collect();
        if with_refs.is_empty() {
            continue;
        }
        let applicable: Vec<(&str, &Pred)> = with_refs.iter().map(|&(n, p, _)| (n, p)).collect();
        let joint_refs: Vec<String> = with_refs
            .iter()
            .flat_map(|(_, _, refs)| refs.iter())
            .filter(|r| *r != prop.name())
            .cloned()
            .collect();
        let Some(axes) = axes_for(space, id, joint_refs, &fixed) else {
            continue;
        };
        let span = Span::at(space.path_string(id)).property(prop.name());
        if let Err(overflow) = admissible(memo.engine(), &axes) {
            out.push(too_large_note(span, memo.engine(), overflow));
            continue;
        }
        for option in &options {
            let mut fixed_opt = fixed.clone();
            fixed_opt.insert(prop.name().to_owned(), option.clone());
            match memo.survives(&applicable, &axes, &fixed_opt) {
                Some(true) => {}
                Some(false) => {
                    let names: Vec<&str> = applicable.iter().map(|(n, _)| *n).collect();
                    out.push(Diagnostic::new(
                        DiagCode::DeadOption,
                        span.clone(),
                        format!(
                            "option {option} of {:?} is dead: every combination is eliminated (constraints {})",
                            prop.name(),
                            names.join(", ")
                        ),
                    ));
                    if memo.engine() == DomainEngine::Propagation {
                        let minimal = minimal_eliminators(memo, &applicable, &axes, &fixed_opt);
                        out.push(Diagnostic::new(
                            DiagCode::PropagationConflict,
                            span.clone(),
                            format!(
                                "conflict chain: because {} = {option}; constraints {} eliminate every completion",
                                prop.name(),
                                minimal.join(", ")
                            ),
                        ));
                    }
                }
                None => {
                    // Identical notes across options collapse in the
                    // report-level dedup.
                    out.push(too_large_note(span.clone(), memo.engine(), None));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// DSL008: unreachable spawned children (option statically eliminated).
// ---------------------------------------------------------------------

pub(crate) fn unreachable_node(
    space: &DesignSpace,
    id: CdoId,
    memo: &ElimMemo,
    out: &mut Vec<Diagnostic>,
) {
    let node = space.node(id);
    let Some((issue, option)) = node.spawned_by() else {
        return;
    };
    let fixed = region_bindings(space, id);
    let effective = space.effective_constraints(id);
    // Retain every pred constraint whose references the region can
    // enumerate; constraints touching open domains are dropped
    // (fewer eliminations can only under-report unreachability). One
    // `references()` walk per predicate, reused for the axis set.
    let with_refs: Vec<(&str, &Pred, Vec<String>)> = effective
        .iter()
        .filter_map(|(_, c)| super::constraint_pred(c).map(|p| (c.name(), p, p.references())))
        .filter(|(_, _, refs)| {
            refs.iter().all(|r| {
                fixed.contains_key(r)
                    || super::domain_at(space, id, r)
                        .map(|d| enumerable(d).is_some())
                        .unwrap_or(false)
            })
        })
        .collect();
    if with_refs.is_empty() {
        return;
    }
    let preds: Vec<(&str, &Pred)> = with_refs.iter().map(|&(n, p, _)| (n, p)).collect();
    let joint_refs: Vec<String> = with_refs
        .iter()
        .flat_map(|(_, _, refs)| refs.iter())
        .cloned()
        .collect();
    let Some(axes) = axes_for(space, id, joint_refs, &fixed) else {
        return;
    };
    let span = Span::at(space.path_string(id)).property(issue);
    if let Err(overflow) = admissible(memo.engine(), &axes) {
        out.push(too_large_note(span, memo.engine(), overflow));
        return;
    }
    match memo.survives(&preds, &axes, &fixed) {
        Some(true) => {}
        Some(false) => {
            let names: Vec<&str> = preds.iter().map(|(n, _)| *n).collect();
            out.push(Diagnostic::new(
                DiagCode::UnreachableChild,
                span.clone(),
                format!(
                    "unreachable: spawning option {issue} = {option} is statically eliminated (constraints {})",
                    names.join(", ")
                ),
            ));
            if memo.engine() == DomainEngine::Propagation {
                let minimal = minimal_eliminators(memo, &preds, &axes, &fixed);
                out.push(Diagnostic::new(
                    DiagCode::PropagationConflict,
                    span,
                    format!(
                        "conflict chain: because {issue} = {option}; constraints {} eliminate every completion",
                        minimal.join(", ")
                    ),
                ));
            }
        }
        None => out.push(too_large_note(span, memo.engine(), None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::constraint::ConsistencyConstraint;
    use crate::property::Property;

    fn issue_space() -> (DesignSpace, CdoId) {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        s.add_property(
            root,
            Property::issue("Mode", Domain::options(["x", "y"]), ""),
        )
        .unwrap();
        (s, root)
    }

    fn cc(name: &str, pred: Pred) -> ConsistencyConstraint {
        let refs = pred.references();
        ConsistencyConstraint::new(name, "", refs, [], Relation::InconsistentOptions(pred))
    }

    #[test]
    fn contradiction_when_every_combination_fires() {
        let (mut s, root) = issue_space();
        s.add_constraint(
            root,
            cc(
                "CCdead",
                Pred::any([Pred::is("Style", "A"), Pred::is_not("Style", "A")]),
            ),
        )
        .unwrap();
        let r = analyze(&s);
        assert!(r
            .errors()
            .any(|d| d.code == DiagCode::Contradiction && d.span.constraint.as_deref() == Some("CCdead")));
    }

    #[test]
    fn near_miss_partial_elimination_is_not_a_contradiction() {
        let (mut s, root) = issue_space();
        s.add_constraint(root, cc("CCok", Pred::is("Style", "A")))
            .unwrap();
        let r = analyze(&s);
        assert!(!r.diagnostics().iter().any(|d| d.code == DiagCode::Contradiction));
    }

    #[test]
    fn dead_option_when_all_combinations_eliminate_it() {
        let (mut s, root) = issue_space();
        // Style = B is inconsistent with both Mode options → B is dead.
        s.add_constraint(
            root,
            cc(
                "CCb",
                Pred::all([Pred::is("Style", "B"), Pred::any([
                    Pred::is("Mode", "x"),
                    Pred::is("Mode", "y"),
                ])]),
            ),
        )
        .unwrap();
        let r = analyze(&s);
        let dead: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::DeadOption)
            .collect();
        assert_eq!(dead.len(), 1, "{r}");
        assert!(dead[0].message.contains("option B"));
    }

    #[test]
    fn near_miss_option_with_an_escape_is_alive() {
        let (mut s, root) = issue_space();
        // Style = B only clashes with Mode = x; Mode = y rescues it.
        s.add_constraint(
            root,
            cc("CCb", Pred::all([Pred::is("Style", "B"), Pred::is("Mode", "x")])),
        )
        .unwrap();
        let r = analyze(&s);
        assert!(!r.diagnostics().iter().any(|d| d.code == DiagCode::DeadOption), "{r}");
    }

    #[test]
    fn unreachable_child_of_an_eliminated_option() {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::generalized_issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        s.specialize(root, "Style").unwrap();
        s.add_constraint(root, cc("CCkill", Pred::is("Style", "B"))).unwrap();
        let r = analyze(&s);
        let hit: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::UnreachableChild)
            .collect();
        assert_eq!(hit.len(), 1, "{r}");
        assert!(hit[0].span.path.ends_with(".B"));
    }

    #[test]
    fn open_domains_are_skipped_not_guessed() {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::requirement("EOL", Domain::int_range(8, 4096), None, ""),
        )
        .unwrap();
        s.add_property(
            root,
            Property::issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        // References a 4089-value range: the analyzer must skip, not err.
        s.add_constraint(
            root,
            cc(
                "CCwide",
                Pred::all([
                    Pred::is("Style", "A"),
                    Pred::cmp(
                        crate::expr::CmpOp::Ge,
                        crate::expr::Expr::prop("EOL"),
                        crate::expr::Expr::constant(0),
                    ),
                ]),
            ),
        )
        .unwrap();
        let r = analyze(&s);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn small_int_ranges_are_enumerated() {
        assert_eq!(
            enumerable(&Domain::int_range(1, 3)),
            Some(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(enumerable(&Domain::int_range(0, MAX_INT_RANGE_SPAN + 1)), None);
        assert_eq!(enumerable(&Domain::real_up_to(5.0)), None);
        assert_eq!(enumerable(&Domain::int_range(i64::MIN, i64::MAX)), None);
    }

    #[test]
    fn elimination_memo_shares_verdicts_across_regions() {
        // The predicate references only "A"/"B"/"C", so regions whose
        // fixed bindings differ only in irrelevant names must project to
        // the same key and share one memoized verdict.
        let pred = Pred::all([
            Pred::is("A", "a0"),
            Pred::is("B", "b0"),
            Pred::is("C", "c0"),
        ]);
        let preds = [("CC", &pred)];
        let axes: Vec<(String, Vec<Value>)> = ["A", "B"]
            .iter()
            .map(|n| {
                let vs = (0..4)
                    .map(|i| Value::from(format!("{}{i}", n.to_lowercase())))
                    .collect();
                (n.to_string(), vs)
            })
            .collect();
        for engine in [DomainEngine::Exhaustive, DomainEngine::Propagation] {
            let memo = ElimMemo::new(engine);
            let mut region1 = Bindings::new();
            region1.insert("C", Value::from("c0"));
            region1.insert("Irrelevant", Value::Int(1));
            let mut region2 = Bindings::new();
            region2.insert("C", Value::from("c0"));
            region2.insert("Irrelevant", Value::Int(2));
            assert_eq!(memo.count_firing(&preds, &axes, &region1), Some((1, 16)));
            assert_eq!(memo.count_firing(&preds, &axes, &region2), Some((1, 16)));
            assert_eq!(memo.len(), 1, "projected keys must coincide");
            assert_eq!(memo.survives(&preds, &axes, &region1), Some(true));
            // A *relevant* fixed binding changes the verdict and the key.
            let mut region3 = Bindings::new();
            region3.insert("C", Value::from("c1"));
            assert_eq!(memo.count_firing(&preds, &axes, &region3), Some((0, 16)));
            assert_eq!(memo.len(), 2);
        }
    }

    #[test]
    fn combination_cap_bounds_the_search() {
        let axes: Vec<(String, Vec<Value>)> = (0..4)
            .map(|i| {
                (
                    format!("p{i}"),
                    (0..9).map(Value::Int).collect::<Vec<_>>(),
                )
            })
            .collect();
        assert_eq!(Combos::total(&axes), Some(6561));
        let fixed = Bindings::new();
        assert_eq!(Combos::new(&axes, &fixed).count(), 6561);
    }

    /// A predicate referencing 14 flags has a 2^14 = 16384-combination
    /// joint: past MAX_COMBINATIONS the oracle refuses with an explicit
    /// DSL111 note (not a silent skip), while the propagation engine
    /// counts the dominated region exactly.
    #[test]
    fn over_cap_joints_note_on_oracle_and_prove_on_propagation() {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        for i in 0..14 {
            s.add_property(root, Property::issue(format!("F{i}"), Domain::Flag, ""))
                .unwrap();
        }
        // Fires iff F0 ∧ F1; the tautologies drag every flag into the
        // joint without changing the verdict, so no option is dead.
        let mut terms = vec![Pred::is("F0", true), Pred::is("F1", true)];
        for i in 2..14 {
            let f = format!("F{i}");
            terms.push(Pred::any([Pred::is(&*f, true), Pred::is_not(&*f, true)]));
        }
        let pred = Pred::all(terms);
        let refs = pred.references();
        s.add_constraint(
            root,
            ConsistencyConstraint::new("CCwide", "", refs, [], Relation::Dominance(pred)),
        )
        .unwrap();

        let oracle = crate::analyze::analyze_with_engine(&s, DomainEngine::Exhaustive);
        assert!(
            oracle.diagnostics().iter().any(|d| d.code == DiagCode::DomainTooLarge
                && d.message.contains("16384 joint combinations")),
            "{oracle}"
        );
        assert!(!oracle.diagnostics().iter().any(|d| d.code == DiagCode::DominanceHint));

        let prop = crate::analyze::analyze_with_engine(&s, DomainEngine::Propagation);
        assert!(
            prop.diagnostics().iter().any(|d| d.code == DiagCode::DominanceHint
                && d.message.contains("4096 of 16384")),
            "{prop}"
        );
        assert!(!prop.diagnostics().iter().any(|d| d.code == DiagCode::DomainTooLarge));
        assert!(!prop.diagnostics().iter().any(|d| d.code == DiagCode::DeadOption));
    }

    /// A contradiction proved by the propagation engine carries a DSL110
    /// companion naming its (here empty) decision chain.
    #[test]
    fn contradiction_gets_a_because_chain_companion() {
        let (mut s, root) = issue_space();
        s.add_constraint(
            root,
            cc(
                "CCdead",
                Pred::any([Pred::is("Style", "A"), Pred::is_not("Style", "A")]),
            ),
        )
        .unwrap();
        let r = crate::analyze::analyze_with_engine(&s, DomainEngine::Propagation);
        let chain: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::PropagationConflict)
            .collect();
        assert!(
            chain
                .iter()
                .any(|d| d.message.contains("no prior decisions required")
                    && d.message.contains("CCdead")),
            "{r}"
        );
        // The oracle proves the same DSL005 but never emits chains.
        let oracle = crate::analyze::analyze_with_engine(&s, DomainEngine::Exhaustive);
        assert!(oracle.errors().any(|d| d.code == DiagCode::Contradiction));
        assert!(!oracle
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::PropagationConflict));
    }

    /// The DSL110 companion of a dead option names a *minimal* constraint
    /// subset: the irrelevant constraint is pruned from the chain.
    #[test]
    fn dead_option_chain_is_minimized_to_the_culprit_constraints() {
        let (mut s, root) = issue_space();
        s.add_constraint(
            root,
            cc(
                "CCb",
                Pred::all([
                    Pred::is("Style", "B"),
                    Pred::any([Pred::is("Mode", "x"), Pred::is("Mode", "y")]),
                ]),
            ),
        )
        .unwrap();
        // Applicable (mentions Style) but never fires: must be pruned
        // from the chain.
        s.add_constraint(
            root,
            cc("CCnoise", Pred::all([Pred::is("Style", "A"), Pred::is("Style", "B")])),
        )
        .unwrap();
        let r = crate::analyze::analyze_with_engine(&s, DomainEngine::Propagation);
        let chain: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::PropagationConflict)
            .collect();
        assert_eq!(chain.len(), 1, "{r}");
        assert!(chain[0].message.contains("because Style = B"), "{}", chain[0].message);
        assert!(chain[0].message.contains("CCb"), "{}", chain[0].message);
        assert!(!chain[0].message.contains("CCnoise"), "{}", chain[0].message);
    }

    /// Both engines agree bit-for-bit on every issue-space fixture in
    /// this module once DSL110/DSL111 (engine-specific by design) are
    /// filtered out.
    #[test]
    fn engines_agree_on_small_spaces() {
        let (mut s, root) = issue_space();
        s.add_constraint(
            root,
            cc(
                "CCb",
                Pred::all([
                    Pred::is("Style", "B"),
                    Pred::any([Pred::is("Mode", "x"), Pred::is("Mode", "y")]),
                ]),
            ),
        )
        .unwrap();
        s.add_constraint(root, cc("CCok", Pred::is("Style", "A"))).unwrap();
        let verdicts = |engine| {
            crate::analyze::analyze_with_engine(&s, engine)
                .diagnostics()
                .iter()
                .filter(|d| {
                    !matches!(
                        d.code,
                        DiagCode::PropagationConflict | DiagCode::DomainTooLarge
                    )
                })
                .map(|d| format!("{d}"))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            verdicts(DomainEngine::Propagation),
            verdicts(DomainEngine::Exhaustive)
        );
    }
}
