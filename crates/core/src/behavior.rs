//! Behavioural descriptions and behavioural decomposition.
//!
//! A behavioural description specifies a CDO's intended behaviour at the
//! algorithm level (the paper's Fig. 10 pseudo-code for Montgomery). It
//! also *decomposes* the complex CDO: the description expresses behaviour
//! in terms of other, less complex CDOs (the adders and multipliers in
//! lines 3–4 of Fig. 10), and those operator slots are explored using the
//! referenced CDOs' own design spaces — the paper's DI7.

use std::fmt;


/// The coding assumed for operands/results — the paper's Req2/Req3
/// (`2's Complement`, `Redundant`, …); a mismatch with the application's
/// requirements implies conversion hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OperandCoding {
    /// Plain unsigned binary.
    Unsigned,
    /// Two's complement.
    TwosComplement,
    /// Sign-magnitude.
    SignMagnitude,
    /// Redundant (carry-save) representation.
    Redundant,
}

impl fmt::Display for OperandCoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OperandCoding::Unsigned => "unsigned",
            OperandCoding::TwosComplement => "2's complement",
            OperandCoding::SignMagnitude => "sign-magnitude",
            OperandCoding::Redundant => "redundant",
        };
        f.write_str(s)
    }
}

/// One operator slot in a behavioural decomposition: an operation in the
/// description realized by another CDO in the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorUse {
    /// Where the operator appears, e.g. `"oper(+, line:3)"`.
    site: String,
    /// Dotted path of the CDO that realizes the operator, e.g.
    /// `"Operator.LogicArithmetic.Arithmetic.Adder"`.
    cdo_path: String,
}

impl OperatorUse {
    /// Creates an operator slot.
    pub fn new(site: impl Into<String>, cdo_path: impl Into<String>) -> Self {
        OperatorUse {
            site: site.into(),
            cdo_path: cdo_path.into(),
        }
    }

    /// The site label.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The realizing CDO's dotted path.
    pub fn cdo_path(&self) -> &str {
        &self.cdo_path
    }
}

impl fmt::Display for OperatorUse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⟶ {}", self.site, self.cdo_path)
    }
}

/// An algorithm-level behavioural description of a CDO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehavioralDescription {
    name: String,
    /// The pseudo-code text (self-documentation; the executable form lives
    /// in the substrate crates).
    text: String,
    operand_coding: OperandCoding,
    result_coding: OperandCoding,
    decomposition: Vec<OperatorUse>,
}

impl BehavioralDescription {
    /// Creates a description.
    pub fn new(
        name: impl Into<String>,
        text: impl Into<String>,
        operand_coding: OperandCoding,
        result_coding: OperandCoding,
    ) -> Self {
        BehavioralDescription {
            name: name.into(),
            text: text.into(),
            operand_coding,
            result_coding,
            decomposition: Vec::new(),
        }
    }

    /// Adds an operator slot (builder style).
    #[must_use]
    pub fn with_operator(mut self, op: OperatorUse) -> Self {
        self.decomposition.push(op);
        self
    }

    /// The description's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pseudo-code text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Input operand coding.
    pub fn operand_coding(&self) -> OperandCoding {
        self.operand_coding
    }

    /// Result coding.
    pub fn result_coding(&self) -> OperandCoding {
        self.result_coding
    }

    /// The behavioural decomposition: operator slots realized by other
    /// CDOs.
    pub fn decomposition(&self) -> &[OperatorUse] {
        &self.decomposition
    }
}

impl fmt::Display for BehavioralDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (operands: {}, result: {})",
            self.name, self.operand_coding, self.result_coding
        )?;
        for line in self.text.lines() {
            writeln!(f, "    {line}")?;
        }
        for op in &self.decomposition {
            writeln!(f, "  uses {op}")?;
        }
        Ok(())
    }
}

/// The paper's Fig. 10 Montgomery pseudo-code, verbatim.
pub fn montgomery_fig10_text() -> &'static str {
    "1: R := 0; Q0 := 0; B := r2*B\n\
     2: FOR i=1 TO n+1\n\
     3:   R := (Ai*B + R + Qi*M) div r;\n\
     4:   Qi := (R0*(r-M0)^-1) mod r;\n\
     5: IF (R > M) THEN\n\
     6:   R := R - M;"
}

foundation::impl_json_enum!(OperandCoding { Unsigned, TwosComplement, SignMagnitude, Redundant });
foundation::impl_json_struct!(OperatorUse { site, cdo_path });
foundation::impl_json_struct!(BehavioralDescription {
    name,
    text,
    operand_coding,
    result_coding,
    decomposition,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_operators() {
        let bd = BehavioralDescription::new(
            "Montgomery",
            montgomery_fig10_text(),
            OperandCoding::TwosComplement,
            OperandCoding::Redundant,
        )
        .with_operator(OperatorUse::new(
            "oper(+, line:3)",
            "Operator.Arithmetic.Adder",
        ))
        .with_operator(OperatorUse::new(
            "oper(*, line:3)",
            "Operator.Arithmetic.Multiplier",
        ));
        assert_eq!(bd.decomposition().len(), 2);
        assert_eq!(
            bd.decomposition()[0].cdo_path(),
            "Operator.Arithmetic.Adder"
        );
    }

    #[test]
    fn display_includes_pseudocode_and_slots() {
        let bd = BehavioralDescription::new(
            "Montgomery",
            montgomery_fig10_text(),
            OperandCoding::TwosComplement,
            OperandCoding::Redundant,
        )
        .with_operator(OperatorUse::new("oper(+, line:3)", "A.B"));
        let s = bd.to_string();
        assert!(s.contains("FOR i=1 TO n+1"));
        assert!(s.contains("uses oper(+, line:3) ⟶ A.B"));
        assert!(s.contains("redundant"));
    }

    #[test]
    fn codings_display() {
        assert_eq!(OperandCoding::TwosComplement.to_string(), "2's complement");
        assert_eq!(OperandCoding::Redundant.to_string(), "redundant");
    }
}
