#![warn(missing_docs)]
//! The modular-exponentiation coprocessor — the application the paper's
//! case study designs for.
//!
//! Cryptography applications (digital signatures, public-key encryption)
//! use modular exponentiation `Mᴱ mod N` as their basic operation, which
//! in turn reduces to repeated modular multiplication. This crate models
//! the coprocessor around pluggable multiplier engines:
//!
//! * [`engine::ReferenceEngine`] — the `bignum` golden model,
//! * [`engine::HardwareEngine`] — any of the Table-1 datapath
//!   architectures, cycle-accounted through the `hwmodel` simulator,
//! * [`engine::SoftwareEngine`] — any Koç variant/processor pairing from
//!   `swmodel`,
//!
//! plus [`spec::KocSpec`] (the Req1–Req5 requirement set from the Koç
//! coprocessor specification), the end-to-end Section-5
//! [`walkthrough`], and a toy [`rsa`] built on top.
//!
//! # Example
//!
//! ```
//! use bignum::UBig;
//! use coproc::engine::ReferenceEngine;
//! use coproc::ModExp;
//!
//! let m = UBig::from(1000003u64); // odd prime modulus
//! let mut coproc = ModExp::new(ReferenceEngine::new());
//! let got = coproc.mod_pow(&UBig::from(7u64), &UBig::from(65537u64), &m)?;
//! assert_eq!(got, UBig::from(7u64).mod_pow(&UBig::from(65537u64), &m));
//! # Ok::<(), coproc::CoprocError>(())
//! ```

pub mod engine;
mod error;
mod exponentiator;
mod method;
pub mod rsa;
pub mod spec;
pub mod walkthrough;

pub use engine::{EngineKind, ModMulEngine};
pub use error::CoprocError;
pub use exponentiator::{ExpReport, ModExp};
pub use method::ExpMethod;
