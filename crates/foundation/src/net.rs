//! Std-only TCP plumbing for line- and length-framed JSON protocols.
//!
//! The workspace's wire format is newline-delimited JSON over the
//! [`crate::json`] codec: one request per line in, one response per line
//! out. This module supplies the three pieces every such endpoint needs,
//! without reaching outside `std`:
//!
//! * [`read_line_bounded`] / [`write_line`] — the line framing itself,
//!   with a hard cap on line length so a hostile peer cannot make the
//!   reader buffer unbounded garbage.
//! * [`read_frame`] / [`write_frame`] — a length-prefixed alternative
//!   (`<decimal length>\n<payload>`) for payloads that may themselves
//!   contain newlines (bulk space uploads, archived journals).
//! * [`TcpServer`] — a non-blocking accept loop that polls a stop flag,
//!   so a daemon can drain gracefully instead of being killed out of
//!   `accept(2)`.

use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Default cap on a single line (or frame) read from a peer: 1 MiB.
pub const MAX_WIRE_BYTES: usize = 1 << 20;

/// How long the accept loop sleeps between polls of the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

fn too_long(max: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("wire message exceeds the {max}-byte cap"),
    )
}

/// Reads one `\n`-terminated line, stripping the terminator (and a
/// preceding `\r`, for telnet-style clients).
///
/// Returns `Ok(None)` on a clean end-of-stream at a line boundary. A
/// stream that ends mid-line yields the partial line — the peer wrote
/// it deliberately; let the JSON parser judge it.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] once a line exceeds `max` bytes (the
/// connection should be dropped: the rest of the line cannot be
/// resynchronized), or any underlying read error.
pub fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                finish_line(line).map(Some)
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max {
                    return Err(too_long(max));
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                return finish_line(line).map(Some);
            }
            None => {
                let n = buf.len();
                if line.len() + n > max {
                    return Err(too_long(max));
                }
                line.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

fn finish_line(mut line: Vec<u8>) -> io::Result<String> {
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("line is not UTF-8: {e}")))
}

/// Writes `line` followed by `\n` and flushes.
///
/// # Errors
///
/// Any underlying write error.
pub fn write_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Writes a length-prefixed frame: the payload length in ASCII decimal,
/// a newline, then the raw payload bytes. Flushes.
///
/// # Errors
///
/// Any underlying write error.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    writer.write_all(payload.len().to_string().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame written by [`write_frame`]. Returns `Ok(None)` on a
/// clean end-of-stream before the length header.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for a malformed length header, a
/// length beyond `max`, or a truncated payload; any underlying read
/// error otherwise.
pub fn read_frame(reader: &mut impl BufRead, max: usize) -> io::Result<Option<Vec<u8>>> {
    let header = match read_line_bounded(reader, 32)? {
        Some(h) => h,
        None => return Ok(None),
    };
    let len: usize = header.trim().parse().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed frame length {header:?}"),
        )
    })?;
    if len > max {
        return Err(too_long(max));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A TCP listener whose accept loop polls a stop flag: setting the flag
/// makes [`TcpServer::serve`] return instead of blocking forever in
/// `accept(2)` — the hook a daemon's graceful shutdown hangs off.
#[derive(Debug)]
pub struct TcpServer {
    listener: TcpListener,
    local: SocketAddr,
}

impl TcpServer {
    /// Binds (port 0 picks an ephemeral port; see
    /// [`TcpServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any bind error.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(TcpServer { listener, local })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Accepts connections until `stop` becomes true, invoking `on_conn`
    /// for each accepted stream (restored to blocking mode). `on_conn`
    /// decides its own concurrency — spawn a thread, queue the stream,
    /// or handle it inline.
    ///
    /// # Errors
    ///
    /// A fatal accept error; `WouldBlock` is the poll rhythm, not an
    /// error, and per-connection setup failures skip that connection.
    pub fn serve(
        &self,
        stop: &AtomicBool,
        mut on_conn: impl FnMut(TcpStream, SocketAddr),
    ) -> io::Result<()> {
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(false).is_ok() {
                        on_conn(stream, peer);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// One injected network fault, drawn from a seeded [`NetFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// No fault: the operation passes through.
    None,
    /// The connection dies: this and every later operation fail
    /// (`ConnectionReset` on reads, `BrokenPipe` on writes).
    Drop,
    /// A short read/write: only part of the buffer moves, forcing the
    /// caller's retry/`write_all` loop to do its job.
    Partial,
    /// A brief stall (1 ms) before the operation proceeds — enough to
    /// interleave with other connections, bounded so suites stay fast.
    Stall,
}

/// Per-mille rates for each fault class in a [`NetFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultRates {
    /// ‰ of operations that kill the connection.
    pub drop_per_mille: u16,
    /// ‰ of operations that move only part of the buffer.
    pub partial_per_mille: u16,
    /// ‰ of operations that stall briefly first.
    pub stall_per_mille: u16,
}

impl NetFaultRates {
    /// No faults at all.
    pub fn benign() -> NetFaultRates {
        NetFaultRates {
            drop_per_mille: 0,
            partial_per_mille: 0,
            stall_per_mille: 0,
        }
    }

    /// The chaos-soak default: 2% drops, 10% partial transfers, 5%
    /// stalls.
    pub fn chaos() -> NetFaultRates {
        NetFaultRates {
            drop_per_mille: 20,
            partial_per_mille: 100,
            stall_per_mille: 50,
        }
    }
}

/// A seeded, precomputed fault schedule for a [`FaultStream`].
///
/// Mirrors `dse::robust::FaultPlan`: the whole schedule is drawn up
/// front from a [`crate::rng::StdRng`], indexed cyclically by operation
/// number, so every run with the same seed injects exactly the same
/// faults at exactly the same points regardless of timing or thread
/// interleaving.
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    schedule: Vec<NetFault>,
}

impl NetFaultPlan {
    /// Draws a schedule of `ops` entries from `seed` at `rates`.
    pub fn new(seed: u64, ops: usize, rates: NetFaultRates) -> NetFaultPlan {
        use crate::rng::{Rng, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E45_5446_4155_4C54); // "NETFAULT"
        let mut schedule = Vec::with_capacity(ops.max(1));
        for _ in 0..ops.max(1) {
            let roll = rng.gen_range(0u16..1000);
            let drop_end = rates.drop_per_mille;
            let partial_end = drop_end + rates.partial_per_mille;
            let stall_end = partial_end + rates.stall_per_mille;
            schedule.push(if roll < drop_end {
                NetFault::Drop
            } else if roll < partial_end {
                NetFault::Partial
            } else if roll < stall_end {
                NetFault::Stall
            } else {
                NetFault::None
            });
        }
        NetFaultPlan { schedule }
    }

    /// A schedule that never faults.
    pub fn benign() -> NetFaultPlan {
        NetFaultPlan {
            schedule: vec![NetFault::None],
        }
    }

    /// The fault for operation `i` (cyclic past the schedule length).
    pub fn fault_for_op(&self, i: u64) -> NetFault {
        self.schedule[(i % self.schedule.len() as u64) as usize]
    }
}

/// A `Read + Write` wrapper that injects the faults of a
/// [`NetFaultPlan`], one schedule entry per I/O operation.
///
/// Drops are sticky: once the plan kills the connection, every later
/// operation fails too, exactly like a real broken socket. Partial
/// transfers move at most half the buffer (at least one byte), and
/// stalls sleep 1 ms — long enough to shuffle interleavings, short
/// enough for hermetic suites.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    plan: NetFaultPlan,
    op: u64,
    dead: bool,
}

impl<S> FaultStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: NetFaultPlan) -> FaultStream<S> {
        FaultStream {
            inner,
            plan,
            op: 0,
            dead: false,
        }
    }

    /// Operations performed so far (fault schedule index).
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// Whether an injected drop has killed this stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Unwraps the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn next_fault(&mut self) -> NetFault {
        let fault = self.plan.fault_for_op(self.op);
        self.op += 1;
        fault
    }
}

impl<S: io::Read> io::Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected connection drop (sticky)",
            ));
        }
        match self.next_fault() {
            NetFault::Drop => {
                self.dead = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected connection drop",
                ))
            }
            NetFault::Partial => {
                let cap = (buf.len() / 2).max(1).min(buf.len());
                self.inner.read(&mut buf[..cap])
            }
            NetFault::Stall => {
                std::thread::sleep(Duration::from_millis(1));
                self.inner.read(buf)
            }
            NetFault::None => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected connection drop (sticky)",
            ));
        }
        match self.next_fault() {
            NetFault::Drop => {
                self.dead = true;
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected connection drop",
                ))
            }
            NetFault::Partial if buf.len() > 1 => self.inner.write(&buf[..buf.len() / 2]),
            NetFault::Stall => {
                std::thread::sleep(Duration::from_millis(1));
                self.inner.write(buf)
            }
            NetFault::Partial | NetFault::None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected connection drop (sticky)",
            ));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn lines_roundtrip_with_crlf_and_partial_tails() {
        let input = b"alpha\r\nbeta\ngamma".to_vec();
        let mut r = BufReader::new(&input[..]);
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("alpha")
        );
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("beta")
        );
        // Unterminated tail comes through; then clean EOF.
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("gamma")
        );
        assert_eq!(read_line_bounded(&mut r, 64).unwrap(), None);
    }

    #[test]
    fn oversized_lines_are_rejected_not_buffered() {
        let input = vec![b'x'; 1000];
        let mut r = BufReader::new(&input[..]);
        let err = read_line_bounded(&mut r, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frames_carry_embedded_newlines() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"two\nlines").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r, 64).unwrap().as_deref(),
            Some(&b"two\nlines"[..])
        );
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r, 64).unwrap(), None);
    }

    #[test]
    fn bad_frame_headers_and_oversized_frames_fail() {
        let mut r = BufReader::new(&b"nope\nxxxx"[..]);
        assert!(read_frame(&mut r, 64).is_err());
        let mut buf = Vec::new();
        write_frame(&mut buf, &vec![b'y'; 100]).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert!(read_frame(&mut r, 64).is_err());
    }

    #[test]
    fn tcp_server_echoes_and_stops_on_flag() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));

        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                server
                    .serve(&stop, |stream, _| {
                        let mut r = BufReader::new(stream.try_clone().unwrap());
                        let mut w = stream;
                        while let Ok(Some(line)) = read_line_bounded(&mut r, MAX_WIRE_BYTES) {
                            write_line(&mut w, &format!("echo {line}")).unwrap();
                        }
                    })
                    .unwrap();
            })
        };

        let client = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(client.try_clone().unwrap());
        let mut w = client;
        write_line(&mut w, "hello").unwrap();
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("echo hello")
        );
        drop((r, w));

        stop.store(true, Ordering::SeqCst);
        accept.join().unwrap();
    }

    #[test]
    fn fault_plans_are_deterministic_per_seed() {
        let a = NetFaultPlan::new(9, 256, NetFaultRates::chaos());
        let b = NetFaultPlan::new(9, 256, NetFaultRates::chaos());
        let c = NetFaultPlan::new(10, 256, NetFaultRates::chaos());
        let draw = |p: &NetFaultPlan| (0..512).map(|i| p.fault_for_op(i)).collect::<Vec<_>>();
        assert_eq!(draw(&a), draw(&b));
        assert_ne!(draw(&a), draw(&c), "different seeds should differ");
        // Cyclic indexing past the schedule length.
        assert_eq!(a.fault_for_op(0), a.fault_for_op(256));
        // Benign plans never fault.
        let benign = NetFaultPlan::new(9, 256, NetFaultRates::benign());
        assert!(draw(&benign).iter().all(|&f| f == NetFault::None));
    }

    #[test]
    fn fault_stream_injects_sticky_drops_and_partial_writes() {
        // A plan that is 100% drops: first op kills the stream for good.
        let all_drop = NetFaultPlan::new(
            1,
            8,
            NetFaultRates {
                drop_per_mille: 1000,
                partial_per_mille: 0,
                stall_per_mille: 0,
            },
        );
        let mut s = FaultStream::new(Vec::<u8>::new(), all_drop);
        let err = s.write(b"hello").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(s.is_dead());
        assert_eq!(s.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert!(s.flush().is_err());

        // A plan that is 100% partial transfers: write_all still lands
        // every byte, it just takes several write calls.
        let all_partial = NetFaultPlan::new(
            1,
            8,
            NetFaultRates {
                drop_per_mille: 0,
                partial_per_mille: 1000,
                stall_per_mille: 0,
            },
        );
        let mut s = FaultStream::new(Vec::<u8>::new(), all_partial);
        s.write_all(b"twelve bytes").unwrap();
        assert!(s.ops() > 1, "partial writes must split the buffer");
        assert_eq!(s.into_inner(), b"twelve bytes");

        // Partial reads deliver the full message across multiple reads.
        let mut r = FaultStream::new(
            &b"payload"[..],
            NetFaultPlan::new(
                2,
                8,
                NetFaultRates {
                    drop_per_mille: 0,
                    partial_per_mille: 1000,
                    stall_per_mille: 0,
                },
            ),
        );
        let mut out = Vec::new();
        io::Read::read_to_end(&mut r, &mut out).unwrap();
        assert_eq!(out, b"payload");
    }
}
