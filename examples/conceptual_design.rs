//! Conceptual design when *no suitable core exists*: the layer's second
//! job. The designer needs a 2048-bit modular multiplier, the reuse
//! library was stocked for 768-bit cores only, and the CC3-style
//! estimation context bridges the gap with early estimates.
//!
//! ```text
//! cargo run --example conceptual_design
//! ```

use design_space_layer::dse::estimate::EstimatorRegistry;
use design_space_layer::dse::eval::FigureOfMerit;
use design_space_layer::dse::value::Value;
use design_space_layer::dse_library::estimators::{BehaviorDelayEstimator, SoftwareTimeEstimator};
use design_space_layer::dse_library::{crypto, Explorer};
use design_space_layer::hwmodel::{AdderKind, Algorithm, DigitMultiplierKind, ModMulArchitecture};
use design_space_layer::techlib::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::g10_035();
    let layer = crypto::build_layer()?;
    // The library was built for 768-bit operands...
    let library = crypto::build_library(&tech, 768);

    // ...but this application needs 2048 bits, 30 µs per multiplication.
    let mut exp = Explorer::new(&layer.space, layer.omm, &library);
    exp.session.set_requirement("EOL", Value::from(2048))?;
    exp.session
        .set_requirement("MaxLatencyUs", Value::from(30.0))?;
    exp.session
        .set_requirement("ModuloIsOdd", Value::from("Guaranteed"))?;
    exp.session
        .decide("ImplementationStyle", Value::from("Hardware"))?;
    exp.session.decide("Algorithm", Value::from("Montgomery"))?;

    // Cores survive the option filter (they are Montgomery hardware), but
    // none of them serves 2048-bit operands: NumberOfSlices for EOL=2048
    // doesn't match any record. Conceptual design takes over.
    println!("library was stocked for 768-bit operands; designing 2048-bit conceptually\n");

    // 1. CC2 derives the latency budget per radix.
    for radix in [2i64, 4] {
        if exp.session.decided("Radix").is_some() {
            exp.session.revise("Radix", Value::from(radix))?;
        } else {
            exp.session.decide("Radix", Value::from(radix))?;
        }
        for (prop, value) in exp.session.derived() {
            println!("  CC2 with Radix = {radix}: {prop} = {value} cycles");
        }
    }

    // 2. CC3's estimation context: rank the algorithmic alternatives by
    //    combinational delay before any RT-level data exists.
    let mut registry = EstimatorRegistry::new();
    registry.register(Box::new(BehaviorDelayEstimator::new(tech.clone())));
    registry.register(Box::new(SoftwareTimeEstimator));

    exp.session.decide(
        "BehavioralDecomposition",
        Value::from("select-per-operator"),
    )?;
    for (estimator, output) in exp.session.ready_estimators() {
        let v = registry.run(&estimator, exp.session.bindings())?;
        println!("  {estimator} -> {output} = {v:.1} ns");
    }

    // 3. With the conceptual parameters fixed, instantiate the paper's
    //    estimation models directly and check the requirement.
    let arch = ModMulArchitecture::new(
        Algorithm::Montgomery,
        4,
        64,
        AdderKind::CarrySave,
        DigitMultiplierKind::MuxTable,
    )?;
    let est = arch.estimate(2048, &tech);
    println!(
        "\nconceptual design: {arch}\n  estimated area {:.0} um^2, clock {:.2} ns, \
         one 2048-bit modmul {:.2} us",
        est.area_um2,
        est.clock_ns,
        est.latency_ns / 1000.0
    );
    let meets = est.latency_ns / 1000.0 <= 30.0;
    println!("  meets the 30 us requirement: {meets}");

    // 4. The estimate becomes the specification handed to detailed design;
    //    the evaluation space records it like any other point.
    let point = design_space_layer::dse::eval::EvalPoint::new("conceptual-2048")
        .with(FigureOfMerit::AreaUm2, est.area_um2)
        .with(FigureOfMerit::DelayNs, est.latency_ns);
    println!(
        "\nrecorded conceptual point: {} (area {:.0}, delay {:.0} ns)",
        point.label(),
        point.merit(&FigureOfMerit::AreaUm2).unwrap(),
        point.merit(&FigureOfMerit::DelayNs).unwrap()
    );
    Ok(())
}
