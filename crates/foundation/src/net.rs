//! Std-only TCP plumbing for line- and length-framed JSON protocols.
//!
//! The workspace's wire format is newline-delimited JSON over the
//! [`crate::json`] codec: one request per line in, one response per line
//! out. This module supplies the three pieces every such endpoint needs,
//! without reaching outside `std`:
//!
//! * [`read_line_bounded`] / [`write_line`] — the line framing itself,
//!   with a hard cap on line length so a hostile peer cannot make the
//!   reader buffer unbounded garbage.
//! * [`read_frame`] / [`write_frame`] — a length-prefixed alternative
//!   (`<decimal length>\n<payload>`) for payloads that may themselves
//!   contain newlines (bulk space uploads, archived journals).
//! * [`TcpServer`] — a non-blocking accept loop that polls a stop flag,
//!   so a daemon can drain gracefully instead of being killed out of
//!   `accept(2)`.

use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Default cap on a single line (or frame) read from a peer: 1 MiB.
pub const MAX_WIRE_BYTES: usize = 1 << 20;

/// How long the accept loop sleeps between polls of the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

fn too_long(max: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("wire message exceeds the {max}-byte cap"),
    )
}

/// Reads one `\n`-terminated line, stripping the terminator (and a
/// preceding `\r`, for telnet-style clients).
///
/// Returns `Ok(None)` on a clean end-of-stream at a line boundary. A
/// stream that ends mid-line yields the partial line — the peer wrote
/// it deliberately; let the JSON parser judge it.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] once a line exceeds `max` bytes (the
/// connection should be dropped: the rest of the line cannot be
/// resynchronized), or any underlying read error.
pub fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                finish_line(line).map(Some)
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max {
                    return Err(too_long(max));
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                return finish_line(line).map(Some);
            }
            None => {
                let n = buf.len();
                if line.len() + n > max {
                    return Err(too_long(max));
                }
                line.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

fn finish_line(mut line: Vec<u8>) -> io::Result<String> {
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("line is not UTF-8: {e}")))
}

/// Writes `line` followed by `\n` and flushes.
///
/// # Errors
///
/// Any underlying write error.
pub fn write_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Writes a length-prefixed frame: the payload length in ASCII decimal,
/// a newline, then the raw payload bytes. Flushes.
///
/// # Errors
///
/// Any underlying write error.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    writer.write_all(payload.len().to_string().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame written by [`write_frame`]. Returns `Ok(None)` on a
/// clean end-of-stream before the length header.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for a malformed length header, a
/// length beyond `max`, or a truncated payload; any underlying read
/// error otherwise.
pub fn read_frame(reader: &mut impl BufRead, max: usize) -> io::Result<Option<Vec<u8>>> {
    let header = match read_line_bounded(reader, 32)? {
        Some(h) => h,
        None => return Ok(None),
    };
    let len: usize = header.trim().parse().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed frame length {header:?}"),
        )
    })?;
    if len > max {
        return Err(too_long(max));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A TCP listener whose accept loop polls a stop flag: setting the flag
/// makes [`TcpServer::serve`] return instead of blocking forever in
/// `accept(2)` — the hook a daemon's graceful shutdown hangs off.
#[derive(Debug)]
pub struct TcpServer {
    listener: TcpListener,
    local: SocketAddr,
}

impl TcpServer {
    /// Binds (port 0 picks an ephemeral port; see
    /// [`TcpServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any bind error.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(TcpServer { listener, local })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Accepts connections until `stop` becomes true, invoking `on_conn`
    /// for each accepted stream (restored to blocking mode). `on_conn`
    /// decides its own concurrency — spawn a thread, queue the stream,
    /// or handle it inline.
    ///
    /// # Errors
    ///
    /// A fatal accept error; `WouldBlock` is the poll rhythm, not an
    /// error, and per-connection setup failures skip that connection.
    pub fn serve(
        &self,
        stop: &AtomicBool,
        mut on_conn: impl FnMut(TcpStream, SocketAddr),
    ) -> io::Result<()> {
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(false).is_ok() {
                        on_conn(stream, peer);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn lines_roundtrip_with_crlf_and_partial_tails() {
        let input = b"alpha\r\nbeta\ngamma".to_vec();
        let mut r = BufReader::new(&input[..]);
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("alpha")
        );
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("beta")
        );
        // Unterminated tail comes through; then clean EOF.
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("gamma")
        );
        assert_eq!(read_line_bounded(&mut r, 64).unwrap(), None);
    }

    #[test]
    fn oversized_lines_are_rejected_not_buffered() {
        let input = vec![b'x'; 1000];
        let mut r = BufReader::new(&input[..]);
        let err = read_line_bounded(&mut r, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frames_carry_embedded_newlines() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"two\nlines").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r, 64).unwrap().as_deref(),
            Some(&b"two\nlines"[..])
        );
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r, 64).unwrap(), None);
    }

    #[test]
    fn bad_frame_headers_and_oversized_frames_fail() {
        let mut r = BufReader::new(&b"nope\nxxxx"[..]);
        assert!(read_frame(&mut r, 64).is_err());
        let mut buf = Vec::new();
        write_frame(&mut buf, &vec![b'y'; 100]).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert!(read_frame(&mut r, 64).is_err());
    }

    #[test]
    fn tcp_server_echoes_and_stops_on_flag() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));

        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                server
                    .serve(&stop, |stream, _| {
                        let mut r = BufReader::new(stream.try_clone().unwrap());
                        let mut w = stream;
                        while let Ok(Some(line)) = read_line_bounded(&mut r, MAX_WIRE_BYTES) {
                            write_line(&mut w, &format!("echo {line}")).unwrap();
                        }
                    })
                    .unwrap();
            })
        };

        let client = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(client.try_clone().unwrap());
        let mut w = client;
        write_line(&mut w, "hello").unwrap();
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("echo hello")
        );
        drop((r, w));

        stop.store(true, Ordering::SeqCst);
        accept.join().unwrap();
    }
}
