//! The FIR domain end to end: explore the DSP layer, select a core, and
//! verify the selected architecture functionally against reference
//! convolution — the same layer→selection→validation loop as the
//! cryptography case study, on a different domain.

use design_space_layer::dse::eval::FigureOfMerit;
use design_space_layer::dse::value::Value;
use design_space_layer::dse_library::{fir, lint_library, Explorer};
use design_space_layer::hwmodel::fir::{reference_fir, FirArchitecture};
use design_space_layer::techlib::Technology;

#[test]
fn fir_selection_walkthrough_with_functional_verification() {
    let layer = fir::build_layer().unwrap();
    let library = fir::build_library(&Technology::g10_035());

    let mut exp = Explorer::new(&layer.space, layer.fir, &library);
    exp.session
        .set_requirement("Taps", Value::from(32))
        .unwrap();
    exp.session
        .set_requirement("DataWidth", Value::from(12))
        .unwrap();
    exp.session
        .set_requirement("SampleRateMsps", Value::from(25.0))
        .unwrap();

    // CC9 rejects the serial family at this spec.
    assert!(exp
        .session
        .decide("Parallelism", Value::from("serial"))
        .is_err());
    exp.session
        .decide("Parallelism", Value::from("semi-parallel"))
        .unwrap();
    let survivors = exp.surviving_cores();
    assert_eq!(survivors.len(), 1);
    let core = survivors[0];
    assert_eq!(core.name(), "fir32x12-4mac");

    // Rebuild the architecture from the core's bindings and verify it
    // computes real convolutions.
    let arch = FirArchitecture::new(
        core.binding("Taps").unwrap().as_i64().unwrap() as u32,
        core.binding("DataWidth").unwrap().as_i64().unwrap() as u32,
        core.binding("CoefficientWidth").unwrap().as_i64().unwrap() as u32,
        core.binding("MacUnits").unwrap().as_i64().unwrap() as u32,
    )
    .unwrap();
    let input: Vec<i64> = (0..64).map(|i| ((i * 97) % 256) - 128).collect();
    let coeffs: Vec<i64> = (0..32).map(|k| ((k * 31) % 128) - 64).collect();
    let (got, cycles) = arch.simulate(&input, &coeffs).unwrap();
    assert_eq!(got, reference_fir(&input, &coeffs));
    assert_eq!(cycles, 64 * 8); // 32 taps on 4 MACs = 8 cycles/sample

    // The recorded merit agrees with a fresh estimate.
    let est = arch.estimate(&Technology::g10_035());
    let recorded = core.merit_value(&FigureOfMerit::DelayNs).unwrap();
    assert!((est.sample_time_ns - recorded).abs() < 1e-6);
}

#[test]
fn fir_library_lints_clean_modulo_parameter_requirements() {
    let layer = fir::build_layer().unwrap();
    let library = fir::build_library(&Technology::g10_035());
    let report = lint_library(&layer.space, layer.fir, &library);
    // FIR cores legitimately parameterize on Taps/DataWidth (application
    // requirements the macro is built for); nothing else may be flagged.
    assert!(
        report.diagnostics().iter().all(|d| {
            let p = d.span.property.as_deref();
            p == Some("Taps") || p == Some("DataWidth")
        }),
        "{report}"
    );
}

#[test]
fn three_domains_coexist_in_one_environment() {
    // One design environment can operate several domain layers at once
    // (the paper's Fig. 1: one layer per domain over many libraries).
    use design_space_layer::dse_library::{crypto, idct};
    let crypto_layer = crypto::build_layer().unwrap();
    let idct_layer = idct::build_layer_generalization().unwrap();
    let fir_layer = fir::build_layer().unwrap();
    for (name, space) in [
        ("crypto", &crypto_layer.space),
        ("idct", &idct_layer.space),
        ("fir", &fir_layer.space),
    ] {
        assert!(space.validate().is_empty(), "{name}");
        let md = design_space_layer::dse::doc::render_markdown(space);
        assert!(md.contains("## Hierarchy"), "{name}");
    }
}
