//! Wall-clock benchmarks of the five word-level Montgomery variants as
//! *actually executed* by this library (not the Pentium cost model) — a
//! sanity companion to Fig. 6: the relative ordering of the variants'
//! real memory traffic shows up in real time too.

fn main() {
    bench::suites::sw_variants().finish();
}
