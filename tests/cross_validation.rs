//! Cross-crate validation: the same modular arithmetic computed through
//! every modelled route — big-integer reference, all eight hardware
//! datapaths, all five software variants — must agree.

use design_space_layer::bignum::{uniform_below, MontgomeryContext, UBig};
use design_space_layer::coproc::engine::{HardwareEngine, ReferenceEngine, SoftwareEngine};
use design_space_layer::coproc::ModExp;
use design_space_layer::hwmodel::{paper_designs, sim};
use design_space_layer::swmodel::{
    MontgomeryVariant, OpCounts, ProcessorModel, SoftwareRoutine, WordMontgomery,
};
use foundation::rng::{SeedableRng, StdRng};

fn odd_modulus(bits: u32, rng: &mut StdRng) -> UBig {
    let mut m = uniform_below(&UBig::power_of_two(bits), rng);
    m.set_bit(bits - 1, true);
    m.set_bit(0, true);
    m
}

#[test]
fn plain_products_agree_across_all_routes() {
    let mut rng = StdRng::seed_from_u64(1001);
    let m = odd_modulus(96, &mut rng);
    let a = uniform_below(&m, &mut rng);
    let b = uniform_below(&m, &mut rng);
    let expect = a.mod_mul(&b, &m);

    // Big-integer Montgomery context.
    let ctx = MontgomeryContext::new(&m).unwrap();
    assert_eq!(ctx.mod_mul(&a, &b), expect, "bignum REDC");

    // Every hardware datapath.
    for family in paper_designs() {
        for w in [8u32, 32] {
            let arch = family.architecture(w).unwrap();
            let got = sim::mod_mul_via(&arch, &a, &b, &m).unwrap();
            assert_eq!(got, expect, "{} w{w}", family.name());
        }
    }

    // Every software variant.
    let word = WordMontgomery::new(&m).unwrap();
    for v in MontgomeryVariant::ALL {
        let mut counts = OpCounts::new();
        assert_eq!(word.mod_mul(&a, &b, v, &mut counts).unwrap(), expect, "{v}");
    }
}

#[test]
fn exponentiation_agrees_across_engine_types() {
    let mut rng = StdRng::seed_from_u64(1002);
    let m = odd_modulus(64, &mut rng);
    let base = uniform_below(&m, &mut rng);
    let exp = UBig::from(0xDEC0DEu64);
    let expect = base.mod_pow(&exp, &m);

    assert_eq!(
        ModExp::new(ReferenceEngine::new())
            .mod_pow(&base, &exp, &m)
            .unwrap(),
        expect,
        "reference engine"
    );

    for family in paper_designs() {
        let arch = family.architecture(16).unwrap();
        let mut coproc = ModExp::new(HardwareEngine::new(arch, 3.0));
        assert_eq!(
            coproc.mod_pow(&base, &exp, &m).unwrap(),
            expect,
            "{}",
            family.name()
        );
    }

    for v in [MontgomeryVariant::Cios, MontgomeryVariant::Fips] {
        let eng = SoftwareEngine::new(SoftwareRoutine::new(v, ProcessorModel::pentium60_asm()));
        assert_eq!(
            ModExp::new(eng).mod_pow(&base, &exp, &m).unwrap(),
            expect,
            "{v}"
        );
    }
}

#[test]
fn carry_save_and_carry_propagate_datapaths_are_bit_identical() {
    // Designs #1 (CLA) and #2 (CSA) differ only in accumulator structure;
    // their outputs must be identical bit for bit, multiplication after
    // multiplication.
    let designs = paper_designs();
    let cla = designs[0].architecture(8).unwrap();
    let csa = designs[1].architecture(8).unwrap();
    let mut rng = StdRng::seed_from_u64(1003);
    let m = odd_modulus(48, &mut rng);
    for _ in 0..25 {
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);
        let out_cla = sim::simulate(&cla, &a, &b, &m).unwrap();
        let out_csa = sim::simulate(&csa, &a, &b, &m).unwrap();
        assert_eq!(out_cla.product, out_csa.product);
        assert_eq!(out_cla.cycles, out_csa.cycles, "same cycle count too");
    }
}

#[test]
fn radix_choice_does_not_change_results() {
    // #2 (radix 2) vs #5 (radix 4): different digit serialization, same
    // plain product.
    let designs = paper_designs();
    let r2 = designs[1].architecture(16).unwrap();
    let r4 = designs[4].architecture(16).unwrap();
    let mut rng = StdRng::seed_from_u64(1004);
    let m = odd_modulus(64, &mut rng);
    for _ in 0..10 {
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);
        assert_eq!(
            sim::mod_mul_via(&r2, &a, &b, &m).unwrap(),
            sim::mod_mul_via(&r4, &a, &b, &m).unwrap()
        );
    }
}

#[test]
fn hardware_cycle_counts_match_the_analytic_model() {
    // The simulator's executed cycles equal the architecture's closed-form
    // count — the number the estimator multiplies by the clock period.
    let mut rng = StdRng::seed_from_u64(1005);
    for family in paper_designs() {
        let arch = family.architecture(16).unwrap();
        let m = odd_modulus(64, &mut rng);
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);
        let out = sim::simulate(&arch, &a, &b, &m).unwrap();
        assert_eq!(
            out.cycles,
            arch.cycles(out.eol).unwrap(),
            "{}",
            family.name()
        );
    }
}
