//! Figs. 4/5/7: the CDO hierarchies, rendered through the layer's
//! self-documentation facility.

use dse_library::{crypto, idct};

/// Renders both hierarchies (crypto and IDCT).
pub fn render() -> String {
    let crypto_layer = crypto::build_layer().expect("layer builds");
    let idct_layer = idct::build_layer_generalization().expect("layer builds");
    format!(
        "Figs. 5/7 — the cryptography layer\n\n{}\n\nFig. 4 — the IDCT layer\n\n{}",
        dse::doc::render_markdown(&crypto_layer.space),
        dse::doc::render_markdown(&idct_layer.space),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_hierarchies_render() {
        let s = render();
        // Fig. 5 taxonomy.
        for name in [
            "Operator",
            "LogicArithmetic",
            "Arithmetic",
            "Adder",
            "Exponentiator",
        ] {
            assert!(s.contains(name), "{name}");
        }
        // Fig. 7 generalization levels.
        assert!(s.contains("[ImplementationStyle = Hardware]"));
        assert!(s.contains("[Algorithm = Montgomery]"));
        assert!(s.contains("[Algorithm = Brickell]"));
        // Fig. 4 IDCT.
        assert!(s.contains("IDCT"));
        assert!(s.contains("[FabricationTechnology = 0.35um]"));
    }
}
