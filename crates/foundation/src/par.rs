//! A std-only work-stealing thread pool with deterministic reduction —
//! the workspace's replacement for `rayon`.
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism.** [`par_map`] writes each result into the slot of
//!    its *submission* index, so the output order is independent of
//!    completion order and bit-identical to the sequential path.
//! 2. **Panic propagation.** A panicking task is caught on the worker,
//!    carried back, and re-raised on the caller's thread, so the
//!    `robust` supervisor's `catch_unwind` containment keeps working
//!    unchanged when the panicking code happens to run on a pool worker.
//! 3. **Reproducibility switch.** `DSE_THREADS` controls the pool size:
//!    unset ⇒ available parallelism, `0` or `1` ⇒ fully sequential
//!    in-caller execution (no worker threads are consulted at all).
//!    [`with_thread_limit`] gives tests an in-process override.
//!
//! The pool is global and lazy: worker threads are spawned on first
//! parallel call and parked (condvar wait) when idle, so programs that
//! never go parallel never pay for it. Workers pop from a shared
//! injector deque and *steal* from its far end when their local slice
//! runs dry; the caller participates in the work while waiting, so
//! nested `scope` calls cannot deadlock.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of work queued on the pool. The `'static` bound is erased by
/// [`Scope`], which guarantees (with a completion latch) that no task
/// outlives the borrows it captures.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    /// Worker threads currently alive (for the no-leak debug assertion).
    live_workers: AtomicUsize,
}

/// The global pool: worker threads plus the shared injector queue.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: usize,
}

static POOL: OnceLock<ThreadPool> = OnceLock::new();

thread_local! {
    /// In-process override used by determinism tests; `None` defers to
    /// the pool size. Set via [`with_thread_limit`].
    static THREAD_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
    /// True on pool worker threads; lets nested parallel calls degrade
    /// to sequential instead of deadlocking on a saturated pool.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Parses `DSE_THREADS`; `None` means "use available parallelism".
fn env_threads() -> Option<usize> {
    let raw = std::env::var("DSE_THREADS").ok()?;
    raw.trim().parse::<usize>().ok()
}

fn default_threads() -> usize {
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

impl ThreadPool {
    fn global() -> &'static ThreadPool {
        POOL.get_or_init(|| {
            let threads = default_threads();
            let shared = Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                work_ready: Condvar::new(),
                live_workers: AtomicUsize::new(0),
            });
            // With N-way parallelism the caller itself is one lane, so
            // N-1 workers saturate the machine.
            let workers = threads.saturating_sub(1);
            for i in 0..workers {
                let shared = Arc::clone(&shared);
                shared.live_workers.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("dse-par-{i}"))
                    .spawn(move || {
                        IS_WORKER.with(|w| w.set(true));
                        worker_loop(&shared);
                        shared.live_workers.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn pool worker");
            }
            ThreadPool { shared, workers }
        })
    }

    /// Worker threads backing the pool (0 ⇒ everything runs inline).
    pub fn workers(&self) -> usize {
        self.workers
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared.work_ready.wait(q).expect("pool queue");
            }
        };
        job();
    }
}

/// The effective parallelism for the *current* call: the thread-local
/// test override if set, else the pool size chosen from `DSE_THREADS` /
/// available parallelism. Always ≥ 1.
pub fn current_threads() -> usize {
    let limit = THREAD_LIMIT.with(Cell::get);
    match limit {
        Some(n) => n.max(1),
        None => {
            // Do not force pool creation just to answer a size query.
            match POOL.get() {
                Some(p) => p.workers + 1,
                None => default_threads().max(1),
            }
        }
    }
}

/// Runs `f` with parallelism capped at `threads` on this thread
/// (`0`/`1` ⇒ sequential), restoring the previous cap afterwards.
/// This is the in-process analogue of setting `DSE_THREADS` and is what
/// the determinism property tests sweep over.
pub fn with_thread_limit<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    THREAD_LIMIT.with(|l| {
        let prev = l.replace(Some(threads));
        struct Restore<'a>(&'a Cell<Option<usize>>, Option<usize>);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.0.set(self.1);
            }
        }
        let _restore = Restore(l, prev);
        f()
    })
}

/// Live worker threads across the whole process. Tests assert this
/// never exceeds the configured pool size (the "no leaked threads"
/// debug gate).
pub fn live_worker_threads() -> usize {
    POOL.get()
        .map(|p| p.shared.live_workers.load(Ordering::SeqCst))
        .unwrap_or(0)
}

#[cfg(debug_assertions)]
fn debug_assert_no_leak() {
    if let Some(p) = POOL.get() {
        let live = p.shared.live_workers.load(Ordering::SeqCst);
        debug_assert!(
            live <= p.workers,
            "thread pool leaked workers: {live} live > {} configured",
            p.workers
        );
    }
}

#[cfg(not(debug_assertions))]
fn debug_assert_no_leak() {}

/// Should the current call run sequentially? True when the effective
/// thread cap is ≤ 1, when the pool has no workers, or when we are
/// *already* on a pool worker (nested parallelism runs inline rather
/// than queueing on a pool that may be saturated by our own parent).
fn sequential(items: usize) -> bool {
    if items <= 1 {
        return true;
    }
    if IS_WORKER.with(Cell::get) {
        return true;
    }
    if current_threads() <= 1 {
        return true;
    }
    ThreadPool::global().workers() == 0
}

/// One captured panic payload, carried from a worker to the caller.
type PanicPayload = Box<dyn Any + Send + 'static>;

struct ScopeState {
    /// Tasks submitted but not yet finished.
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<PanicPayload>>,
}

/// A fork-join scope: tasks spawned on it may borrow from the enclosing
/// stack frame, and [`scope`] does not return until all of them have
/// completed (or one has panicked, in which case the panic is re-raised
/// on the caller after the rest finish).
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    shared: Arc<Shared>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` on the pool.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        {
            let mut pending = self.state.pending.lock().expect("scope latch");
            *pending += 1;
        }
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                let mut slot = state.panic.lock().expect("scope panic slot");
                slot.get_or_insert(payload);
            }
            let mut pending = state.pending.lock().expect("scope latch");
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: `scope` blocks until `pending` reaches zero before
        // returning, so every borrow captured by `task` strictly
        // outlives the task's execution. The lifetime is only erased to
        // satisfy the queue's `'static` bound.
        let task: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(
                task,
            )
        };
        let mut q = self.shared.queue.lock().expect("pool queue");
        q.push_back(task);
        drop(q);
        self.shared.work_ready.notify_one();
    }
}

/// Runs `f` with a [`Scope`] on the global pool and blocks until every
/// spawned task has finished. The caller *helps*: while waiting it pops
/// queued jobs and runs them inline, so a scope is never slower than
/// sequential execution and nested scopes cannot deadlock.
///
/// # Panics
///
/// Re-raises the first panic raised by any spawned task (or by `f`
/// itself) on the calling thread.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let pool = ThreadPool::global();
    let state = Arc::new(ScopeState {
        pending: Mutex::new(0),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    let s = Scope {
        state: Arc::clone(&state),
        shared: Arc::clone(&pool.shared),
        _marker: std::marker::PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));

    // Help drain the queue while tasks from this scope are pending.
    // (We may also execute unrelated jobs; that is harmless and keeps
    // the caller busy instead of blocked.)
    loop {
        {
            let pending = state.pending.lock().expect("scope latch");
            if *pending == 0 {
                break;
            }
        }
        let job = {
            let mut q = pool.shared.queue.lock().expect("pool queue");
            q.pop_front()
        };
        match job {
            Some(job) => job(),
            None => {
                let pending = state.pending.lock().expect("scope latch");
                if *pending > 0 {
                    let _guard = state
                        .done
                        .wait_timeout(pending, std::time::Duration::from_millis(1))
                        .expect("scope latch");
                }
            }
        }
    }

    debug_assert_no_leak();

    if let Some(payload) = state.panic.lock().expect("scope panic slot").take() {
        resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

/// Runs the two closures, potentially in parallel, and returns both
/// results. Panics propagate to the caller; `a`'s panic wins if both
/// panic.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if sequential(2) {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let mut rb: Option<RB> = None;
    let ra = scope(|s| {
        s.spawn(|| rb = Some(b()));
        a()
    });
    (ra, rb.expect("scope completed b"))
}

/// Maps `f` over `items` with the pool, returning results **in input
/// order** regardless of which worker finished first — the deterministic
/// reduction that keeps parallel analyzer reports bit-identical to the
/// sequential ones. Falls back to a plain sequential map when the
/// effective thread cap is 1, the input is tiny, or the caller is itself
/// a pool worker.
///
/// # Panics
///
/// Re-raises the first panic from `f` on the calling thread.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if sequential(items.len()) {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // Block-partition the input: one contiguous chunk per lane, so each
    // task owns a disjoint range of the output slots.
    let threads = current_threads().min(n);
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::new();
    let mut iter = items.into_iter();
    let mut off = 0;
    while off < n {
        let take = chunk.min(n - off);
        chunks.push((off, iter.by_ref().take(take).collect()));
        off += take;
    }
    // The base pointer travels as an address so the closure stays
    // `Send`; `R: Send` makes the cross-thread writes themselves sound.
    let base = slots.as_mut_ptr() as usize;
    let f = &f;
    scope(|s| {
        for (off, chunk_items) in chunks {
            s.spawn(move || {
                // SAFETY: each task writes `slots[off .. off+len]`, the
                // ranges are disjoint by construction, and `scope` joins
                // every task before `slots` is read or dropped.
                let out = unsafe {
                    std::slice::from_raw_parts_mut(
                        (base as *mut Option<R>).add(off),
                        chunk_items.len(),
                    )
                };
                for (slot, item) in out.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("scope completed every chunk"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out = par_map(input.clone(), |x| x * 3 + 1);
        let expected: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_matches_sequential_under_every_thread_cap() {
        let input: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = input.iter().map(|x| x.wrapping_mul(0x9E37)).collect();
        for cap in [1, 2, 3, 8] {
            let got = with_thread_limit(cap, || {
                par_map(input.clone(), |x| x.wrapping_mul(0x9E37))
            });
            assert_eq!(got, expected, "cap {cap}");
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_owned());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_par_map_inside_scope_completes() {
        let out = par_map((0..16).collect::<Vec<u64>>(), |x| {
            par_map((0..8).collect::<Vec<u64>>(), move |y| x * 10 + y)
                .into_iter()
                .sum::<u64>()
        });
        let expected: Vec<u64> = (0..16)
            .map(|x| (0..8).map(|y| x * 10 + y).sum::<u64>())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panic_in_task_propagates_to_caller() {
        let caught = std::panic::catch_unwind(|| {
            par_map(vec![1, 2, 3, 4, 5, 6, 7, 8], |x| {
                if x == 5 {
                    panic!("boom {x}");
                }
                x
            })
        });
        assert!(caught.is_err());
        // The pool survives the panic: a follow-up map still answers.
        let ok = par_map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(ok, vec![2, 3, 4]);
    }

    #[test]
    fn thread_limit_restores_after_panic() {
        let before = current_threads();
        let _ = std::panic::catch_unwind(|| {
            with_thread_limit(3, || panic!("boom"));
        });
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn workers_never_exceed_configured_pool() {
        // Force pool creation, then run work and check accounting.
        let _ = par_map((0..64).collect::<Vec<u64>>(), |x| x + 1);
        if let Some(p) = POOL.get() {
            assert!(live_worker_threads() <= p.workers());
        }
    }

    #[test]
    fn sequential_cap_runs_inline() {
        let out = with_thread_limit(1, || {
            let id = std::thread::current().id();
            par_map(vec![1, 2, 3], move |x| {
                assert_eq!(std::thread::current().id(), id, "must run on caller");
                x * 2
            })
        });
        assert_eq!(out, vec![2, 4, 6]);
    }
}
