//! The explorer: a session joined with reuse libraries.
//!
//! This is the paper's headline workflow: each design decision made in
//! the session corresponds to a pruning of the design space, and the
//! reusable designs that fall outside the selected region are immediately
//! eliminated from consideration; critical information on the surviving
//! set (ranges of performance, area, …) is directly available.
//!
//! Queries run on the columnar [`CoreStore`] by default: the surviving
//! set is a bitset maintained incrementally across `decide`/`retract`
//! (see [`core_store`](crate::core_store)). The legacy per-query scan is
//! kept as a differential oracle behind `DSE_EXPLORER_ENGINE=scan`
//! (companion to `DSE_ANALYZE_ENGINE=exhaustive` on the analyzer side);
//! both engines iterate the same deduplicated roster and are
//! bit-identical at every `DSE_THREADS` setting.

use std::sync::{Arc, Mutex, MutexGuard};

use dse::analyze::solve::Viability;
use dse::eval::{EvaluationSpace, FigureOfMerit};
use dse::hierarchy::{CdoId, DesignSpace};
use dse::session::ExplorationSession;

use crate::core_record::CoreRecord;
use crate::core_store::{roster, value_viable, CoreStore, Cursor, PAR_MIN_CORES};
use crate::reuse::ReuseLibrary;

/// Which engine answers explorer queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplorerEngine {
    /// Columnar [`CoreStore`] with an incremental surviving-set cursor
    /// (the default).
    Columnar,
    /// The legacy full scan over the roster — the differential oracle.
    Scan,
}

impl ExplorerEngine {
    /// Engine selected by `DSE_EXPLORER_ENGINE` (`scan` forces the
    /// oracle; anything else, or unset, is columnar).
    pub fn from_env() -> Self {
        match std::env::var("DSE_EXPLORER_ENGINE") {
            Ok(v) if v == "scan" => ExplorerEngine::Scan,
            _ => ExplorerEngine::Columnar,
        }
    }
}

/// An exploration session transparently connected to reuse libraries.
#[derive(Debug)]
pub struct Explorer<'a> {
    /// The conceptual-design session (public: decisions are made here).
    pub session: ExplorationSession<'a>,
    libraries: Vec<&'a ReuseLibrary>,
    /// Deduplicated `(vendor, name)` roster in concatenated library
    /// order — the universe both engines iterate.
    roster: Vec<&'a CoreRecord>,
    store: Arc<CoreStore>,
    /// The incremental surviving-set cursor, re-synced to the session
    /// log at each query (decisions happen on the public `session`
    /// field, outside our sight).
    cursor: Mutex<Cursor>,
    engine: ExplorerEngine,
}

impl<'a> Explorer<'a> {
    /// Starts an explorer over one library.
    pub fn new(space: &'a DesignSpace, root: CdoId, library: &'a ReuseLibrary) -> Self {
        Explorer::with_libraries(space, root, [library])
    }

    /// Starts an explorer over several libraries (the layer can reference
    /// designs residing in different libraries, Fig. 1). Records sharing
    /// a `(vendor, name)` pair are deduplicated — passing the same
    /// library twice yields union semantics, not doubled cores.
    pub fn with_libraries(
        space: &'a DesignSpace,
        root: CdoId,
        libraries: impl IntoIterator<Item = &'a ReuseLibrary>,
    ) -> Self {
        Explorer::from_session(ExplorationSession::new(space, root), libraries)
    }

    /// Wraps an *existing* session — a server answering a
    /// `surviving_cores` query resumes the session's state and joins it
    /// to the snapshot's library without replaying any decisions or
    /// cloning the space.
    pub fn from_session(
        session: ExplorationSession<'a>,
        libraries: impl IntoIterator<Item = &'a ReuseLibrary>,
    ) -> Self {
        let libraries: Vec<&'a ReuseLibrary> = libraries.into_iter().collect();
        let roster = roster(&libraries);
        let store = Arc::new(CoreStore::build(&roster));
        Explorer::assemble(session, libraries, roster, store)
    }

    /// Like [`from_session`](Self::from_session), but reuses a
    /// pre-built store (the server builds one per snapshot at load time
    /// and shares it across every session touching that snapshot). The
    /// store must have been built over the same libraries' roster.
    pub fn from_session_with_store(
        session: ExplorationSession<'a>,
        libraries: impl IntoIterator<Item = &'a ReuseLibrary>,
        store: Arc<CoreStore>,
    ) -> Self {
        let libraries: Vec<&'a ReuseLibrary> = libraries.into_iter().collect();
        let roster = roster(&libraries);
        debug_assert_eq!(roster.len(), store.len(), "store/roster mismatch");
        Explorer::assemble(session, libraries, roster, store)
    }

    /// Like [`from_session_with_store`](Self::from_session_with_store),
    /// but also reuses a pre-built roster (see
    /// [`crate::core_store::roster_from_indices`]), skipping the
    /// per-construction `(vendor, name)` dedup — the hot path for a
    /// server answering many `surviving_cores` requests against one
    /// snapshot. The roster must be exactly what [`roster`] would
    /// return for `libraries`, over which `store` was built.
    pub fn from_session_with_store_and_roster(
        session: ExplorationSession<'a>,
        libraries: impl IntoIterator<Item = &'a ReuseLibrary>,
        roster: Vec<&'a CoreRecord>,
        store: Arc<CoreStore>,
    ) -> Self {
        let libraries: Vec<&'a ReuseLibrary> = libraries.into_iter().collect();
        debug_assert_eq!(roster.len(), store.len(), "store/roster mismatch");
        Explorer::assemble(session, libraries, roster, store)
    }

    fn assemble(
        session: ExplorationSession<'a>,
        libraries: Vec<&'a ReuseLibrary>,
        roster: Vec<&'a CoreRecord>,
        store: Arc<CoreStore>,
    ) -> Self {
        let cursor = Mutex::new(Cursor::new(&store));
        Explorer {
            session,
            libraries,
            roster,
            store,
            cursor,
            engine: ExplorerEngine::from_env(),
        }
    }

    /// The connected libraries.
    pub fn libraries(&self) -> &[&'a ReuseLibrary] {
        &self.libraries
    }

    /// The columnar store indexing the roster.
    pub fn store(&self) -> &Arc<CoreStore> {
        &self.store
    }

    /// The active query engine.
    pub fn engine(&self) -> ExplorerEngine {
        self.engine
    }

    /// Forces a query engine (differential tests pin both engines on the
    /// same explorer and compare).
    pub fn set_engine(&mut self, engine: ExplorerEngine) {
        self.engine = engine;
    }

    /// Locks the cursor and re-syncs it to the session's decision log:
    /// retract to the longest common prefix, replay the rest — so
    /// `undo`/`revise` on the public session field cost only their word
    /// deltas.
    fn synced(&self) -> MutexGuard<'_, Cursor> {
        let mut cur = self.cursor.lock().unwrap();
        cur.sync(
            &self.store,
            self.session
                .log()
                .iter()
                .map(|d| (d.property.as_str(), &d.value)),
        );
        cur
    }

    /// The scan oracle: filter the roster against the session bindings,
    /// fanning out past the parallel threshold (verdicts return in
    /// submission order, so the list is `DSE_THREADS`-independent).
    fn scan_survivors(&self) -> Vec<&'a CoreRecord> {
        let filter = self.session.bindings();
        if self.roster.len() < PAR_MIN_CORES {
            return self
                .roster
                .iter()
                .copied()
                .filter(|c| c.complies_with(filter))
                .collect();
        }
        let verdicts = foundation::par::par_map(self.roster.clone(), |c| c.complies_with(filter));
        self.roster
            .iter()
            .copied()
            .zip(verdicts)
            .filter_map(|(c, ok)| ok.then_some(c))
            .collect()
    }

    /// Cores (across all libraries) complying with every decision made so
    /// far. Compliance is lenient: a core is only filtered on properties
    /// it actually binds.
    pub fn surviving_cores(&self) -> Vec<&'a CoreRecord> {
        match self.engine {
            ExplorerEngine::Scan => self.scan_survivors(),
            ExplorerEngine::Columnar => {
                let cur = self.synced();
                self.store
                    .indices(cur.surviving())
                    .into_iter()
                    .map(|i| self.roster[i])
                    .collect()
            }
        }
    }

    /// Number of surviving cores — O(words) on the columnar engine, no
    /// materialization.
    pub fn surviving_count(&self) -> usize {
        match self.engine {
            ExplorerEngine::Scan => self.scan_survivors().len(),
            ExplorerEngine::Columnar => self.synced().surviving().count(),
        }
    }

    /// One page of the surviving cores: skips `offset` survivors,
    /// returns at most `limit`, in the same order as
    /// [`surviving_cores`](Self::surviving_cores). The server's
    /// paginated `surviving_cores` op sits on this.
    pub fn surviving_page(&self, offset: usize, limit: usize) -> Vec<&'a CoreRecord> {
        match self.engine {
            ExplorerEngine::Scan => self
                .scan_survivors()
                .into_iter()
                .skip(offset)
                .take(limit)
                .collect(),
            ExplorerEngine::Columnar => {
                let cur = self.synced();
                self.store
                    .page(cur.surviving(), offset, limit)
                    .into_iter()
                    .map(|i| self.roster[i])
                    .collect()
            }
        }
    }

    /// The evaluation space of the surviving cores.
    pub fn evaluation_space(&self) -> EvaluationSpace {
        let cores = self.surviving_cores();
        if cores.len() < PAR_MIN_CORES {
            return cores.into_iter().map(CoreRecord::eval_point).collect();
        }
        foundation::par::par_map(cores, CoreRecord::eval_point)
            .into_iter()
            .collect()
    }

    /// The `(min, max)` range of a merit over the surviving cores — the
    /// "critical information on the set of reusable designs that do comply
    /// with the decision". On the columnar engine this folds the merit
    /// column under the surviving bitset (memoized per trail depth)
    /// without materializing a core list.
    pub fn merit_range(&self, merit: &FigureOfMerit) -> Option<(f64, f64)> {
        match self.engine {
            ExplorerEngine::Scan => self.evaluation_space().range(merit),
            ExplorerEngine::Columnar => self.synced().range(&self.store, merit),
        }
    }

    /// The Pareto-optimal surviving cores under `merits`.
    pub fn pareto_cores(&self, merits: &[FigureOfMerit]) -> Vec<&'a CoreRecord> {
        let cores = self.surviving_cores();
        let space: EvaluationSpace = cores.iter().map(|c| c.eval_point()).collect();
        space
            .pareto_front(merits)
            .into_iter()
            .map(|i| cores[i])
            .collect()
    }

    /// Surviving cores whose `merit` is at most `bound` — requirement
    /// checks like the case study's "768-bit modmul in ≤ 8 µs".
    pub fn cores_meeting(&self, merit: &FigureOfMerit, bound: f64) -> Vec<&'a CoreRecord> {
        match self.engine {
            ExplorerEngine::Scan => self
                .scan_survivors()
                .into_iter()
                .filter(|c| c.merit_value(merit).is_some_and(|v| v <= bound))
                .collect(),
            ExplorerEngine::Columnar => {
                let cur = self.synced();
                self.store
                    .meeting(cur.surviving(), merit, bound)
                    .into_iter()
                    .map(|i| self.roster[i])
                    .collect()
            }
        }
    }

    /// The options of `issue` that can still survive the constraints
    /// given the decisions made so far, proved by the propagation
    /// solver ([`dse::analyze::solve`]). Advisory: deciding a
    /// non-viable option still fails with the violated constraint as
    /// before; this answers the question *without* trial-committing.
    pub fn viable_options(&self, issue: &str) -> Viability {
        self.session.lookahead().viable(issue)
    }

    /// Surviving cores additionally pruned by the propagation solver:
    /// for every open issue, cores binding an option the solver proves
    /// non-viable are eliminated — `analyze::solve` shaving the
    /// surviving-core bitsets directly, without trial-committing any
    /// decision. Cores not binding an issue are untouched (lenient
    /// compliance, as everywhere).
    pub fn solver_pruned_cores(&self) -> Vec<&'a CoreRecord> {
        let solver = self.session.lookahead();
        let open = self.session.open_issues();
        match self.engine {
            ExplorerEngine::Columnar => {
                let mut set = self.synced().surviving().clone();
                for prop in &open {
                    let viability = solver.viable(prop.name());
                    self.store.prune_non_viable(&mut set, prop.name(), &viability);
                }
                self.store
                    .indices(&set)
                    .into_iter()
                    .map(|i| self.roster[i])
                    .collect()
            }
            ExplorerEngine::Scan => {
                let verdicts: Vec<(&str, Viability)> = open
                    .iter()
                    .map(|p| (p.name(), solver.viable(p.name())))
                    .collect();
                self.scan_survivors()
                    .into_iter()
                    .filter(|c| {
                        verdicts.iter().all(|(name, viability)| {
                            c.binding(name)
                                .is_none_or(|have| value_viable(have, viability))
                        })
                    })
                    .collect()
            }
        }
    }

    /// Ranks the still-open design issues by their impact on `merit`
    /// over the surviving cores — the paper's rule that design issues
    /// "should be partially ordered ... considering the degree to which
    /// they impact key requirements".
    ///
    /// Impact of an issue = relative spread of the per-option mean merit
    /// (`(max − min) / overall mean`); an issue every surviving core
    /// answers identically has zero impact. Issues are returned most
    /// impactful first.
    pub fn issue_impact(&self, merit: &FigureOfMerit) -> Vec<(String, f64)> {
        match self.engine {
            ExplorerEngine::Scan => self.issue_impact_scan(merit),
            ExplorerEngine::Columnar => self.issue_impact_columnar(merit),
        }
    }

    fn issue_impact_columnar(&self, merit: &FigureOfMerit) -> Vec<(String, f64)> {
        let cur = self.synced();
        let surviving = cur.surviving();
        let (sum, n) = self.store.merit_sum(surviving, merit);
        if n == 0 {
            return Vec::new();
        }
        let overall_mean = sum / n as f64;
        let mut out = Vec::new();
        for prop in self.session.open_issues() {
            let Some(options) = prop.domain().enumerate() else {
                continue;
            };
            let mut means = Vec::new();
            for option in &options {
                let (sum, n) = self
                    .store
                    .option_merit_sum(surviving, prop.name(), option, merit);
                if n > 0 {
                    means.push(sum / n as f64);
                }
            }
            out.push((prop.name().to_owned(), impact_of(&means, overall_mean)));
        }
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    fn issue_impact_scan(&self, merit: &FigureOfMerit) -> Vec<(String, f64)> {
        let cores = self.scan_survivors();
        let overall_mean = {
            let vals: Vec<f64> = cores.iter().filter_map(|c| c.merit_value(merit)).collect();
            if vals.is_empty() {
                return Vec::new();
            }
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let mut out = Vec::new();
        for prop in self.session.open_issues() {
            let Some(options) = prop.domain().enumerate() else {
                continue;
            };
            let mut means = Vec::new();
            for option in &options {
                let vals: Vec<f64> = cores
                    .iter()
                    .filter(|c| {
                        c.binding(prop.name())
                            .is_some_and(|have| have.matches(option))
                    })
                    .filter_map(|c| c.merit_value(merit))
                    .collect();
                if !vals.is_empty() {
                    means.push(vals.iter().sum::<f64>() / vals.len() as f64);
                }
            }
            out.push((prop.name().to_owned(), impact_of(&means, overall_mean)));
        }
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }
}

/// Shared impact formula: relative spread of per-option means.
fn impact_of(means: &[f64], overall_mean: f64) -> f64 {
    if means.len() < 2 || overall_mean == 0.0 {
        0.0
    } else {
        let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (hi - lo) / overall_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse::prelude::*;

    fn space() -> (DesignSpace, CdoId) {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Multiplier", "");
        s.add_property(
            root,
            Property::generalized_issue("Style", Domain::options(["Hardware", "Software"]), ""),
        )
        .unwrap();
        s.specialize(root, "Style").unwrap();
        (s, root)
    }

    fn library() -> ReuseLibrary {
        let mut lib = ReuseLibrary::new("lib");
        lib.push(
            CoreRecord::new("hw-fast", "x", "")
                .bind("Style", "Hardware")
                .merit(FigureOfMerit::DelayNs, 100.0)
                .merit(FigureOfMerit::AreaUm2, 900.0),
        );
        lib.push(
            CoreRecord::new("hw-small", "x", "")
                .bind("Style", "Hardware")
                .merit(FigureOfMerit::DelayNs, 300.0)
                .merit(FigureOfMerit::AreaUm2, 200.0),
        );
        lib.push(
            CoreRecord::new("hw-bad", "x", "")
                .bind("Style", "Hardware")
                .merit(FigureOfMerit::DelayNs, 400.0)
                .merit(FigureOfMerit::AreaUm2, 1000.0),
        );
        lib.push(
            CoreRecord::new("sw", "x", "")
                .bind("Style", "Software")
                .merit(FigureOfMerit::DelayNs, 9000.0),
        );
        lib
    }

    #[test]
    fn decisions_prune_the_core_set() {
        let (s, root) = space();
        let lib = library();
        let mut exp = Explorer::new(&s, root, &lib);
        assert_eq!(exp.surviving_cores().len(), 4);
        exp.session
            .decide("Style", Value::from("Hardware"))
            .unwrap();
        let names: Vec<&str> = exp.surviving_cores().iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(!names.contains(&"sw"));
    }

    #[test]
    fn ranges_follow_the_pruning() {
        let (s, root) = space();
        let lib = library();
        let mut exp = Explorer::new(&s, root, &lib);
        let (_, hi) = exp.merit_range(&FigureOfMerit::DelayNs).unwrap();
        assert_eq!(hi, 9000.0);
        exp.session
            .decide("Style", Value::from("Hardware"))
            .unwrap();
        let (lo, hi) = exp.merit_range(&FigureOfMerit::DelayNs).unwrap();
        assert_eq!((lo, hi), (100.0, 400.0));
    }

    #[test]
    fn ranges_follow_undo_and_revise() {
        let (s, root) = space();
        let lib = library();
        let mut exp = Explorer::new(&s, root, &lib);
        exp.session
            .decide("Style", Value::from("Hardware"))
            .unwrap();
        assert_eq!(exp.surviving_count(), 3);
        exp.session.undo().unwrap();
        assert_eq!(exp.surviving_count(), 4);
        exp.session
            .decide("Style", Value::from("Software"))
            .unwrap();
        let names: Vec<&str> = exp.surviving_cores().iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["sw"]);
        exp.session.undo().unwrap();
        exp.session
            .decide("Style", Value::from("Hardware"))
            .unwrap();
        assert_eq!(exp.surviving_count(), 3);
    }

    #[test]
    fn pareto_and_bound_queries() {
        let (s, root) = space();
        let lib = library();
        let mut exp = Explorer::new(&s, root, &lib);
        exp.session
            .decide("Style", Value::from("Hardware"))
            .unwrap();
        let pareto = exp.pareto_cores(&[FigureOfMerit::DelayNs, FigureOfMerit::AreaUm2]);
        let names: Vec<&str> = pareto.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["hw-fast", "hw-small"]);
        let fast = exp.cores_meeting(&FigureOfMerit::DelayNs, 150.0);
        assert_eq!(fast.len(), 1);
        assert_eq!(fast[0].name(), "hw-fast");
    }

    #[test]
    fn paging_partitions_the_survivors() {
        let (s, root) = space();
        let lib = library();
        let exp = Explorer::new(&s, root, &lib);
        let all: Vec<&str> = exp.surviving_cores().iter().map(|c| c.name()).collect();
        let mut paged: Vec<&str> = Vec::new();
        for offset in (0..all.len()).step_by(2) {
            paged.extend(exp.surviving_page(offset, 2).iter().map(|c| c.name()));
        }
        assert_eq!(paged, all);
        assert!(exp.surviving_page(all.len(), 2).is_empty());
    }

    #[test]
    fn issue_impact_ranks_discriminating_issues_first() {
        use crate::crypto;
        use techlib::Technology;

        let layer = crypto::build_layer().unwrap();
        let lib = crypto::build_library(&Technology::g10_035(), 768);
        let mut exp = Explorer::new(&layer.space, layer.omm, &lib);
        exp.session
            .set_requirement("EOL", Value::from(768))
            .unwrap();
        exp.session
            .set_requirement("MaxLatencyUs", Value::from(8.0))
            .unwrap();
        exp.session
            .set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        exp.session
            .decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();

        let ranking = exp.issue_impact(&FigureOfMerit::DelayNs);
        let impact = |name: &str| {
            ranking
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // Every hardware core shares the layout style, so it cannot
        // discriminate; the algorithm and the slicing can.
        assert_eq!(impact("LayoutStyle"), 0.0);
        assert!(impact("Algorithm") > 0.0);
        assert!(impact("SliceWidth") > impact("LayoutStyle"));
        // The ranking is sorted descending.
        for pair in ranking.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        // And the scan oracle agrees exactly.
        let mut oracle = Explorer::from_session(exp.session.clone(), [&lib]);
        oracle.set_engine(ExplorerEngine::Scan);
        assert_eq!(ranking, oracle.issue_impact(&FigureOfMerit::DelayNs));
    }

    #[test]
    fn multiple_libraries_union() {
        let (s, root) = space();
        let lib1 = library();
        let mut lib2 = ReuseLibrary::new("second");
        lib2.push(CoreRecord::new("extra", "y", "").bind("Style", "Hardware"));
        let exp = Explorer::with_libraries(&s, root, [&lib1, &lib2]);
        assert_eq!(exp.surviving_cores().len(), 5);
        assert_eq!(exp.libraries().len(), 2);
    }

    #[test]
    fn duplicate_libraries_dedupe_to_union_semantics() {
        let (s, root) = space();
        let lib = library();
        // The same library twice is a union, not a doubling.
        let exp = Explorer::with_libraries(&s, root, [&lib, &lib]);
        assert_eq!(exp.surviving_cores().len(), 4);
        assert_eq!(exp.surviving_count(), 4);
        // An overlapping record (same vendor+name) in a second library
        // is also deduplicated; a same-named core from a different
        // vendor is distinct.
        let mut lib2 = ReuseLibrary::new("second");
        lib2.push(CoreRecord::new("hw-fast", "x", "dup").bind("Style", "Hardware"));
        lib2.push(CoreRecord::new("hw-fast", "elsewhere", "").bind("Style", "Hardware"));
        let exp = Explorer::with_libraries(&s, root, [&lib, &lib2]);
        assert_eq!(exp.surviving_cores().len(), 5);
        // First occurrence wins: the original doc string, not "dup".
        let first = exp
            .surviving_cores()
            .into_iter()
            .find(|c| c.name() == "hw-fast" && c.vendor() == "x")
            .unwrap();
        assert_eq!(first.doc(), "");
    }

    #[test]
    fn solver_pruning_shaves_non_viable_bindings() {
        use dse::constraint::{ConsistencyConstraint, Relation};
        use dse::expr::Pred;

        let mut s = DesignSpace::new("t");
        let root = s.add_root("Thing", "");
        s.add_property(
            root,
            Property::issue("Style", Domain::options(["Hardware", "Software"]), ""),
        )
        .unwrap();
        s.add_property(
            root,
            Property::issue("Target", Domain::options(["asic", "mcu"]), ""),
        )
        .unwrap();
        // Choosing the MCU target kills the hardware style.
        s.add_constraint(
            root,
            ConsistencyConstraint::new(
                "CC",
                "mcu targets rule out hardware style",
                ["Target".to_owned()],
                ["Style".to_owned()],
                Relation::InconsistentOptions(Pred::all([
                    Pred::is("Target", "mcu"),
                    Pred::is("Style", "Hardware"),
                ])),
            ),
        )
        .unwrap();
        let lib = library();
        let mut exp = Explorer::new(&s, root, &lib);
        exp.session.decide("Target", Value::from("mcu")).unwrap();
        // Plain compliance keeps every core (none binds Target)…
        assert_eq!(exp.surviving_cores().len(), 4);
        // …but the solver proves Style=Hardware dead, so pruning drops
        // the three hardware cores.
        let pruned: Vec<&str> = exp.solver_pruned_cores().iter().map(|c| c.name()).collect();
        assert_eq!(pruned, vec!["sw"]);
        // The scan fallback agrees exactly.
        let mut oracle = Explorer::from_session(exp.session.clone(), [&lib]);
        oracle.set_engine(ExplorerEngine::Scan);
        let oracle_pruned: Vec<&str> = oracle
            .solver_pruned_cores()
            .iter()
            .map(|c| c.name())
            .collect();
        assert_eq!(pruned, oracle_pruned);
    }
}
