//! Fixture tests for the static analyzer: every `DSL0xx` diagnostic code
//! gets a space that triggers it and a near-miss that stays clean, plus
//! seeded property tests over randomly generated spaces.
//!
//! (`DSL1xx` core-binding lints are exercised in `dse-library`'s
//! `lint` module tests.)

use design_space_layer::dse::analyze::{analyze, DerivationGraph};
use design_space_layer::dse::constraint::Fidelity;
use design_space_layer::dse::prelude::*;
use design_space_layer::foundation::check::{self, Gen};
use design_space_layer::foundation::json::{encode, Json};

fn codes(space: &DesignSpace) -> Vec<DiagCode> {
    analyze(space).diagnostics().iter().map(|d| d.code).collect()
}

fn quant(name: &str, indep: &[&str], target: &str) -> ConsistencyConstraint {
    let formula = indep
        .iter()
        .map(|p| Expr::prop(*p))
        .reduce(Expr::add)
        .unwrap_or(Expr::constant(0));
    ConsistencyConstraint::new(
        name,
        "",
        indep.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>(),
        [target.to_owned()],
        Relation::Quantitative {
            target: target.to_owned(),
            formula,
            fidelity: Fidelity::Exact,
        },
    )
}

fn inconsistent(name: &str, pred: Pred) -> ConsistencyConstraint {
    let refs: Vec<String> = pred.references();
    ConsistencyConstraint::new(name, "", refs, [], Relation::InconsistentOptions(pred))
}

// ---------------------------------------------------------------- DSL001

#[test]
fn dsl001_malformed_constraint_is_flagged() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("X", Domain::options(["a", "b"]), ""))
        .unwrap();
    // The relation references "Ghost", which the indep/dep sets omit.
    s.add_constraint_unchecked(
        root,
        ConsistencyConstraint::new(
            "CCbad",
            "",
            ["X".to_owned()],
            [],
            Relation::InconsistentOptions(Pred::all([Pred::is("X", "a"), Pred::is("Ghost", 1)])),
        ),
    );
    assert!(codes(&s).contains(&DiagCode::MalformedConstraint));
}

#[test]
fn dsl001_add_constraint_rejects_it_up_front() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    let err = s
        .add_constraint(
            root,
            ConsistencyConstraint::new(
                "CCbad",
                "",
                ["X".to_owned()],
                [],
                Relation::InconsistentOptions(Pred::is("Ghost", 1)),
            ),
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("CCbad") && msg.contains("Ghost"), "{msg}");
    // Nothing was stored: the space still analyzes without DSL001.
    assert!(!codes(&s).contains(&DiagCode::MalformedConstraint));
}

#[test]
fn dsl001_near_miss_fully_listed_references_are_fine() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("X", Domain::options(["a", "b"]), ""))
        .unwrap();
    s.add_property(root, Property::issue("Y", Domain::options([1, 2]), ""))
        .unwrap();
    s.add_constraint(
        root,
        inconsistent("CCok", Pred::all([Pred::is("X", "a"), Pred::is("Y", 1)])),
    )
    .unwrap();
    assert!(!codes(&s).contains(&DiagCode::MalformedConstraint));
}

// ---------------------------------------------------------------- DSL002

#[test]
fn dsl002_unresolved_reference_is_flagged() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    // Well-formed (refs listed), but "Phantom" is declared nowhere.
    s.add_constraint(root, inconsistent("CCphantom", Pred::is("Phantom", "x")))
        .unwrap();
    let r = analyze(&s);
    let hit = r
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::UnresolvedReference)
        .expect("DSL002 expected");
    assert!(hit.is_error());
    assert!(hit.message.contains("Phantom"), "{hit}");
}

#[test]
fn dsl002_near_miss_subtree_and_derived_names_resolve() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    let child = s.add_child(root, "Leaf", "");
    // "Deep" only exists further down the hierarchy; "Derived" only as a
    // quantitative target. Both are legitimate references at the root.
    s.add_property(child, Property::issue("Deep", Domain::options([1, 2]), ""))
        .unwrap();
    s.add_constraint(root, quant("CCderive", &["Deep"], "Derived"))
        .unwrap();
    s.add_constraint(
        root,
        ConsistencyConstraint::new(
            "CCuse",
            "",
            ["Derived".to_owned(), "Deep".to_owned()],
            [],
            Relation::InconsistentOptions(Pred::cmp(
                CmpOp::Gt,
                Expr::prop("Derived"),
                Expr::prop("Deep"),
            )),
        ),
    )
    .unwrap();
    assert!(!codes(&s).contains(&DiagCode::UnresolvedReference));
}

// ---------------------------------------------------------------- DSL003

#[test]
fn dsl003_derivation_cycle_is_flagged() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_constraint(root, quant("C1", &["A"], "B")).unwrap();
    s.add_constraint(root, quant("C2", &["B"], "A")).unwrap();
    let r = analyze(&s);
    let hit = r
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::DerivationCycle)
        .expect("DSL003 expected");
    assert!(hit.message.contains("→"), "{hit}");
}

#[test]
fn dsl003_near_miss_a_chain_is_fine() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_constraint(root, quant("C1", &["A"], "B")).unwrap();
    s.add_constraint(root, quant("C2", &["B"], "C")).unwrap();
    s.add_property(root, Property::issue("A", Domain::options([1, 2]), ""))
        .unwrap();
    assert!(!codes(&s).contains(&DiagCode::DerivationCycle));
}

// ---------------------------------------------------------------- DSL004

#[test]
fn dsl004_multiply_derived_target_is_flagged() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("A", Domain::options([1, 2]), ""))
        .unwrap();
    s.add_property(root, Property::issue("B", Domain::options([1, 2]), ""))
        .unwrap();
    s.add_constraint(root, quant("C1", &["A"], "T")).unwrap();
    s.add_constraint(root, quant("C2", &["B"], "T")).unwrap();
    let r = analyze(&s);
    let hit = r
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::MultiplyDerived)
        .expect("DSL004 expected");
    assert_eq!(hit.span.property.as_deref(), Some("T"));
}

#[test]
fn dsl004_near_miss_one_deriver_per_target() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("A", Domain::options([1, 2]), ""))
        .unwrap();
    s.add_constraint(root, quant("C1", &["A"], "T")).unwrap();
    s.add_constraint(root, quant("C2", &["A"], "U")).unwrap();
    assert!(!codes(&s).contains(&DiagCode::MultiplyDerived));
}

// ---------------------------------------------------------------- DSL005

#[test]
fn dsl005_contradiction_is_flagged() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("X", Domain::options(["a", "b"]), ""))
        .unwrap();
    // True for every option of X: the constraint can never be satisfied.
    s.add_constraint(
        root,
        inconsistent("CCall", Pred::any([Pred::is("X", "a"), Pred::is_not("X", "a")])),
    )
    .unwrap();
    let r = analyze(&s);
    assert!(
        r.diagnostics().iter().any(|d| d.code == DiagCode::Contradiction && d.is_error()),
        "{r}"
    );
}

#[test]
fn dsl005_near_miss_partial_elimination_is_fine() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("X", Domain::options(["a", "b"]), ""))
        .unwrap();
    s.add_property(root, Property::issue("Y", Domain::options(["p", "q"]), ""))
        .unwrap();
    // Eliminates 1 of 4 combinations; every option still has an escape.
    s.add_constraint(
        root,
        inconsistent("CCsome", Pred::all([Pred::is("X", "a"), Pred::is("Y", "p")])),
    )
    .unwrap();
    assert!(codes(&s).is_empty(), "{}", analyze(&s));
}

// ---------------------------------------------------------------- DSL006

#[test]
fn dsl006_dead_option_is_flagged() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("X", Domain::options(["a", "b", "c"]), ""))
        .unwrap();
    // X = a is always inconsistent — a dead option (but not a
    // contradiction: b and c survive).
    s.add_constraint(root, inconsistent("CCa", Pred::is("X", "a")))
        .unwrap();
    let r = analyze(&s);
    let hit = r
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::DeadOption)
        .expect("DSL006 expected");
    assert!(hit.message.contains('a'), "{hit}");
    assert!(!r.has_errors(), "{r}");
}

#[test]
fn dsl006_near_miss_option_with_an_escape_is_fine() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("X", Domain::options(["a", "b", "c"]), ""))
        .unwrap();
    s.add_property(root, Property::issue("Y", Domain::options(["p", "q"]), ""))
        .unwrap();
    // X = a dies only under Y = p; Y = q keeps it alive.
    s.add_constraint(
        root,
        inconsistent("CCap", Pred::all([Pred::is("X", "a"), Pred::is("Y", "p")])),
    )
    .unwrap();
    assert!(!codes(&s).contains(&DiagCode::DeadOption));
}

// ---------------------------------------------------------------- DSL007

#[test]
fn dsl007_shadowed_property_is_flagged() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    let child = s.add_child(root, "C", "");
    // Declare at the child first, then at the root: `add_property` only
    // checks ancestors, so this leaves the child shadowing the root.
    s.add_property(child, Property::issue("W", Domain::options([8, 16]), ""))
        .unwrap();
    s.add_property(root, Property::issue("W", Domain::options([8, 16, 32]), ""))
        .unwrap();
    let r = analyze(&s);
    let hit = r
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::ShadowedProperty)
        .expect("DSL007 expected");
    assert!(hit.span.path.ends_with(".C"), "{hit}");
}

#[test]
fn dsl007_near_miss_distinct_names_are_fine() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    let child = s.add_child(root, "C", "");
    s.add_property(root, Property::issue("W", Domain::options([8, 16]), ""))
        .unwrap();
    s.add_property(child, Property::issue("V", Domain::options([8, 16]), ""))
        .unwrap();
    assert!(!codes(&s).contains(&DiagCode::ShadowedProperty));
}

// ---------------------------------------------------------------- DSL008

#[test]
fn dsl008_child_of_eliminated_option_is_flagged() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(
        root,
        Property::generalized_issue("Style", Domain::options(["A", "B"]), ""),
    )
    .unwrap();
    s.specialize(root, "Style").unwrap();
    // Style = B is statically eliminated, so the spawned child R.B can
    // never be descended into.
    s.add_constraint(root, inconsistent("CCkill", Pred::is("Style", "B")))
        .unwrap();
    let r = analyze(&s);
    assert!(
        r.diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::UnreachableChild && d.span.path.ends_with(".B")),
        "{r}"
    );
}

#[test]
fn dsl008_structural_variant_unknown_spawning_issue() {
    // Corrupt a serialized space so a child claims to be spawned by an
    // issue nobody declares — the analyzer must catch what the builder
    // API cannot.
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(
        root,
        Property::generalized_issue("Style", Domain::options(["A", "B"]), ""),
    )
    .unwrap();
    s.specialize(root, "Style").unwrap();

    fn rename_spawning_issue(j: &mut Json) {
        match j {
            Json::Object(fields) => {
                for (k, v) in fields.iter_mut() {
                    if k == "spawned_by" {
                        if let Json::Array(parts) = v {
                            if let Some(first) = parts.first_mut() {
                                *first = Json::Str("Ghost".to_owned());
                            }
                        }
                    } else {
                        rename_spawning_issue(v);
                    }
                }
            }
            Json::Array(items) => items.iter_mut().for_each(rename_spawning_issue),
            _ => {}
        }
    }

    let mut j = Json::parse(&encode(&s)).unwrap();
    rename_spawning_issue(&mut j);
    let tampered: DesignSpace =
        design_space_layer::foundation::json::decode(&j.to_string()).unwrap();
    let r = analyze(&tampered);
    assert!(
        r.diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::UnreachableChild && d.message.contains("Ghost")),
        "{r}"
    );
}

#[test]
fn dsl008_near_miss_reachable_children_are_fine() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(
        root,
        Property::generalized_issue("Style", Domain::options(["A", "B"]), ""),
    )
    .unwrap();
    s.specialize(root, "Style").unwrap();
    assert!(codes(&s).is_empty(), "{}", analyze(&s));
}

// ---------------------------------------------------------------- DSL009

#[test]
fn dsl009_partial_dominance_yields_a_note() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("X", Domain::options(["a", "b"]), ""))
        .unwrap();
    s.add_property(root, Property::issue("Y", Domain::options(["p", "q"]), ""))
        .unwrap();
    let refs: Vec<String> = vec!["X".to_owned(), "Y".to_owned()];
    s.add_constraint(
        root,
        ConsistencyConstraint::new(
            "CCdom",
            "",
            refs,
            [],
            Relation::Dominance(Pred::all([Pred::is("X", "a"), Pred::is("Y", "p")])),
        ),
    )
    .unwrap();
    let r = analyze(&s);
    let hit = r
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::DominanceHint)
        .expect("DSL009 expected");
    assert_eq!(hit.severity, Severity::Note);
    assert!(hit.message.contains("1 of 4"), "{hit}");
}

#[test]
fn dsl009_near_miss_never_firing_dominance_is_silent() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("X", Domain::options(["a", "b"]), ""))
        .unwrap();
    s.add_constraint(
        root,
        ConsistencyConstraint::new(
            "CCdom",
            "",
            vec!["X".to_owned()],
            [],
            Relation::Dominance(Pred::is("X", "c")),
        ),
    )
    .unwrap();
    // (X = "c" is outside the domain, so the dominance never fires; the
    // literal itself is flagged as DSL011, but no dominance note appears.)
    assert!(!codes(&s).contains(&DiagCode::DominanceHint));
}

// ---------------------------------------------------------------- DSL010

#[test]
fn dsl010_partially_specialized_issue_is_flagged() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(
        root,
        Property::generalized_issue("Style", Domain::options(["A", "B", "C"]), ""),
    )
    .unwrap();
    s.specialize_option(root, "Style", Value::from("A")).unwrap();
    let r = analyze(&s);
    let hits = r
        .diagnostics()
        .iter()
        .filter(|d| d.code == DiagCode::UnspecializedOption)
        .count();
    assert_eq!(hits, 2, "{r}");
}

#[test]
fn dsl010_near_miss_fully_deferred_issue_is_fine() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(
        root,
        Property::generalized_issue("Style", Domain::options(["A", "B", "C"]), ""),
    )
    .unwrap();
    assert!(codes(&s).is_empty(), "{}", analyze(&s));
}

// ---------------------------------------------------------------- DSL011

#[test]
fn dsl011_literal_outside_domain_is_flagged() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("X", Domain::options(["a", "b"]), ""))
        .unwrap();
    s.add_constraint(root, inconsistent("CCtypo", Pred::is("X", "z")))
        .unwrap();
    let r = analyze(&s);
    let hit = r
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::LiteralOutsideDomain)
        .expect("DSL011 expected");
    assert!(hit.message.contains('z'), "{hit}");
}

#[test]
fn dsl011_near_miss_in_domain_literal_is_fine() {
    let mut s = DesignSpace::new("t");
    let root = s.add_root("R", "");
    s.add_property(root, Property::issue("X", Domain::options(["a", "b", "c"]), ""))
        .unwrap();
    s.add_constraint(root, inconsistent("CCok", Pred::is("X", "a")))
        .unwrap();
    assert!(!codes(&s).contains(&DiagCode::LiteralOutsideDomain));
}

// ------------------------------------------------- shipped-space gates

#[test]
fn shipped_spaces_are_error_free() {
    use design_space_layer::dse_library::{crypto, fir, idct};
    let spaces = [
        crypto::build_layer().unwrap().space,
        crypto::build_layer_technology_first().unwrap().space,
        idct::build_layer_generalization().unwrap().space,
        idct::build_layer_abstraction().unwrap().space,
        fir::build_layer().unwrap().space,
    ];
    for space in &spaces {
        let r = analyze(space);
        assert!(!r.has_errors(), "{}: {r}", space.name());
    }
}

#[test]
fn crypto_layer_gets_exactly_the_cc5_dominance_note() {
    use design_space_layer::dse_library::crypto;
    let layer = crypto::build_layer().unwrap();
    let r = analyze(&layer.space);
    assert_eq!(r.len(), 1, "{r}");
    let d = &r.diagnostics()[0];
    assert_eq!(d.code, DiagCode::DominanceHint);
    assert_eq!(d.span.constraint.as_deref(), Some("CC5"));
}

// ---------------------------------------------------- property checks

/// A random space: a small hierarchy, random domains, and constraints
/// that may reference undeclared names or carry stray relation refs.
fn random_space(g: &mut Gen) -> (DesignSpace, CdoId) {
    const NAMES: [&str; 6] = ["P0", "P1", "P2", "P3", "P4", "P5"];
    let mut s = DesignSpace::new("rand");
    let root = s.add_root("Root", "");
    let mut nodes = vec![root];
    for i in 0..g.usize_in(0, 4) {
        let parent = *g.choose(&nodes);
        nodes.push(s.add_child(parent, format!("N{i}"), ""));
    }
    for &name in NAMES.iter().take(g.usize_in(0, NAMES.len())) {
        let node = *g.choose(&nodes);
        let domain = match g.usize_in(0, 4) {
            0 => Domain::options(["a", "b", "c"]),
            1 => Domain::int_range(1, g.i64_in(1, 20)),
            2 => Domain::PowersOfTwo { max_exp: 3 },
            _ => Domain::options([1, 2]),
        };
        let prop = match g.usize_in(0, 3) {
            0 => Property::requirement(name, domain, None, ""),
            1 => Property::issue(name, domain, ""),
            _ => Property::description(name, domain, ""),
        };
        // Collisions along the chain are rejected by the API; ignore them.
        let _ = s.add_property(node, prop);
    }
    for i in 0..g.usize_in(0, 5) {
        let node = *g.choose(&nodes);
        let a = (*g.choose(&NAMES)).to_owned();
        let b = (*g.choose(&NAMES)).to_owned();
        let c = match g.usize_in(0, 3) {
            0 => inconsistent(
                &format!("CC{i}"),
                Pred::all([Pred::is(a, "a"), Pred::is(b, 1)]),
            ),
            1 => quant(&format!("CC{i}"), &[a.as_str()], &b),
            // Deliberately malformed: relation refs not listed.
            _ => ConsistencyConstraint::new(
                format!("CC{i}"),
                "",
                [a],
                [],
                Relation::InconsistentOptions(Pred::is(b, "a")),
            ),
        };
        s.add_constraint_unchecked(node, c);
    }
    (s, root)
}

#[test]
fn property_random_spaces_never_panic_and_analysis_is_deterministic() {
    check::run("analyze never panics", |g| {
        let (s, root) = random_space(g);
        let r1 = analyze(&s);
        let r2 = analyze(&s);
        assert_eq!(r1, r2);
        // The evaluation-order query must be total as well.
        let _ = design_space_layer::dse::analyze::evaluation_order(&s, root);
    });
}

#[test]
fn property_injected_cycles_are_always_detected() {
    check::run("injected cycle detected", |g| {
        let (mut s, node) = random_space(g);
        let x = format!("Cyc{}", g.u32_in(0, 1000));
        let y = format!("Cyc{}", g.u32_in(1000, 2000));
        s.add_constraint(node, quant("CycA", &[x.as_str()], &y)).unwrap();
        s.add_constraint(node, quant("CycB", &[y.as_str()], &x)).unwrap();
        let r = analyze(&s);
        assert!(
            r.diagnostics().iter().any(|d| d.code == DiagCode::DerivationCycle),
            "{r}"
        );
    });
}

#[test]
fn property_injected_unbound_references_are_always_detected() {
    check::run("injected unbound ref detected", |g| {
        let (mut s, node) = random_space(g);
        let ghost = format!("Unbound{}", g.u32_in(0, 1_000_000));
        s.add_constraint(node, inconsistent("CCghost", Pred::is(ghost.clone(), "x")))
            .unwrap();
        let r = analyze(&s);
        assert!(
            r.diagnostics()
                .iter()
                .any(|d| d.code == DiagCode::UnresolvedReference && d.message.contains(&ghost)),
            "{r}"
        );
    });
}

#[test]
fn cycle_with_early_sorting_downstream_sink_is_detected() {
    // Cycle X -> Y -> X, plus Y -> A where "A" sorts before "X"/"Y":
    // topo_order's leftover set contains the downstream sink A, and a
    // cycle walk naively started there dead-ends without reporting.
    let cs = [
        quant("C1", &["X"], "Y"),
        quant("C2", &["Y"], "X"),
        quant("C3", &["Y"], "A"),
    ];
    let g = DerivationGraph::from_constraints(cs.iter());
    assert!(g.topo_order().is_err(), "graph really is cyclic");
    let cycle = g
        .find_cycle()
        .expect("find_cycle must not miss the cycle when a downstream sink sorts first");
    // The reported path is a genuine cycle over X and Y only.
    assert_eq!(cycle.first(), cycle.last());
    assert!(!cycle.contains(&"A".to_owned()), "sink A is on no cycle: {cycle:?}");

    let mut s = DesignSpace::new("t");
    let root = s.add_root("Root", "");
    for c in cs {
        s.add_constraint_unchecked(root, c);
    }
    let r = analyze(&s);
    assert!(
        r.diagnostics().iter().any(|d| d.code == DiagCode::DerivationCycle),
        "analyze() reported no DerivationCycle: {r}"
    );
}

// ------------------------------------- propagation-vs-exhaustive oracle

/// A random *enumerable* space for the engine-parity oracle: every
/// domain is small and enumerable (joint ≤ 3⁵ = 243, far below the
/// exhaustive cap), constraints are well-formed pred relations with
/// in-domain literals, so both engines must reach a verdict on every
/// check.
fn random_enumerable_space(g: &mut Gen) -> DesignSpace {
    const NAMES: [&str; 5] = ["A", "B", "C", "D", "E"];
    let mut s = DesignSpace::new("oracle");
    let root = s.add_root("Root", "");
    let child = s.add_child(root, "Sub", "");
    let nodes = [root, child];
    let n_props = g.usize_in(2, NAMES.len());
    let mut declared: Vec<(String, Vec<Value>)> = Vec::new();
    for &name in NAMES.iter().take(n_props) {
        let node = *g.choose(&nodes);
        let (domain, options) = match g.usize_in(0, 3) {
            0 => {
                let opts: Vec<Value> = ["x", "y", "z"][..g.usize_in(2, 3)]
                    .iter()
                    .map(|&o| Value::from(o))
                    .collect();
                (
                    Domain::options(opts.iter().filter_map(Value::as_text)),
                    opts,
                )
            }
            1 => (
                Domain::Flag,
                vec![Value::from(true), Value::from(false)],
            ),
            _ => {
                let lo = g.i64_in(0, 3);
                let hi = lo + g.i64_in(1, 3);
                (
                    Domain::int_range(lo, hi),
                    (lo..=hi).map(Value::from).collect(),
                )
            }
        };
        s.add_property(node, Property::issue(name, domain, ""))
            .unwrap();
        declared.push((name.to_owned(), options));
    }
    let n_cons = g.usize_in(1, 6);
    for i in 0..n_cons {
        let n_terms = g.usize_in(1, 3.min(declared.len()));
        let mut terms = Vec::new();
        for t in 0..n_terms {
            // Distinct props per term keep the predicate satisfiable
            // often enough to exercise both fired and clean verdicts.
            let (name, options) = &declared[(i + t) % declared.len()];
            let lit = g.choose(options).clone();
            terms.push(if g.bool() {
                Pred::is(name.clone(), lit)
            } else {
                Pred::is_not(name.clone(), lit)
            });
        }
        let pred = if terms.len() == 1 {
            terms.pop().unwrap()
        } else if g.bool() {
            Pred::all(terms)
        } else {
            Pred::any(terms)
        };
        let node = *g.choose(&nodes);
        let relation = if g.bool() {
            Relation::InconsistentOptions(pred.clone())
        } else {
            Relation::Dominance(pred.clone())
        };
        s.add_constraint(
            node,
            ConsistencyConstraint::new(format!("CC{i}"), "", pred.references(), [], relation),
        )
        .unwrap();
    }
    s
}

/// Renders a report minus the engine-specific codes: `DSL110`
/// (propagation-only conflict chains) and `DSL111` (whose wording names
/// the engine that gave up). Everything else must match bit for bit.
fn engine_neutral(r: &Report) -> Vec<String> {
    r.diagnostics()
        .iter()
        .filter(|d| {
            d.code != DiagCode::PropagationConflict && d.code != DiagCode::DomainTooLarge
        })
        .map(|d| d.to_string())
        .collect()
}

#[test]
fn property_propagation_matches_the_exhaustive_oracle() {
    use design_space_layer::dse::analyze::{analyze_with_engine, DomainEngine};
    check::run("propagation == exhaustive on small spaces", |g| {
        let s = random_enumerable_space(g);
        let oracle = engine_neutral(&analyze_with_engine(&s, DomainEngine::Exhaustive));
        let prop = engine_neutral(&analyze_with_engine(&s, DomainEngine::Propagation));
        assert_eq!(prop, oracle, "engines disagree on:\n{}", design_space_layer::dse::doc::render_markdown(&s));
    });
}

#[test]
fn property_verdicts_are_identical_across_thread_counts() {
    use design_space_layer::dse::analyze::{analyze_with_engine, DomainEngine};
    use design_space_layer::foundation::par::with_thread_limit;
    check::run_n("analysis is thread-count invariant", 40, |g| {
        let s = random_enumerable_space(g);
        let baseline = with_thread_limit(1, || analyze_with_engine(&s, DomainEngine::Propagation));
        for threads in [2, 8] {
            let r = with_thread_limit(threads, || {
                analyze_with_engine(&s, DomainEngine::Propagation)
            });
            assert_eq!(r, baseline, "DSE_THREADS={threads} changed the report");
        }
    });
}

#[test]
fn oracle_gives_up_past_the_cap_where_propagation_proves() {
    use design_space_layer::dse::analyze::{analyze_with_engine, DomainEngine};
    use design_space_layer::dse_library::synthetic::{build_stress_layer, STRESS_SEED};
    let layer = build_stress_layer(STRESS_SEED).unwrap();
    let oracle = analyze_with_engine(&layer.space, DomainEngine::Exhaustive);
    assert!(
        oracle.diagnostics().iter().any(|d| d.code == DiagCode::DomainTooLarge),
        "{oracle}"
    );
    // The oracle cannot see the dead codec option (its applicable joint
    // includes wide constraints only on flags, but the dominated-count
    // notes are gone)...
    assert!(
        !oracle.diagnostics().iter().any(
            |d| d.code == DiagCode::DominanceHint && d.message.contains("4194304")
        ),
        "{oracle}"
    );
    // ...while propagation proves every verdict with no escape hatch.
    let prop = analyze_with_engine(&layer.space, DomainEngine::Propagation);
    assert!(!prop.diagnostics().iter().any(|d| d.code == DiagCode::DomainTooLarge), "{prop}");
    assert!(
        prop.diagnostics().iter().any(
            |d| d.code == DiagCode::DominanceHint && d.message.contains("1 of 4194304")
        ),
        "{prop}"
    );
}
