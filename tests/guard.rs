//! dse-guard under fire: a seeded chaos soak over a faulty network
//! (zero acknowledged decisions lost, recovered state byte-identical to
//! a fault-free oracle), admission control (connection, batch, and
//! session caps answered with structured `DSL309`), cooperative
//! deadlines (`DSL310`, nothing committed), TTL eviction with
//! journal-backed lazy resume, verified journal compaction, meta
//! sidecar corruption (refuse vs recover), and a doc-sync check that
//! every wire-level error code is documented.
//!
//! The chaos seed honors `DSE_CHAOS_SEED` (default 3) so the verify
//! gate can sweep seeds; everything here is deterministic in that seed.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use design_space_layer::dse::prelude::DiagCode;
use design_space_layer::dse_server::{Engine, EngineBuilder, GuardConfig, Server};
use design_space_layer::foundation::json::Json;
use design_space_layer::foundation::net::{
    self, FaultStream, NetFaultPlan, NetFaultRates, MAX_WIRE_BYTES,
};
use design_space_layer::techlib::Technology;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dse-guard-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn chaos_seed() -> u64 {
    std::env::var("DSE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn engine_with(journal: Option<&PathBuf>, guard: GuardConfig) -> Engine {
    let mut b = EngineBuilder::new(Technology::g10_035())
        .with_shipped_layers()
        .guard(guard);
    if let Some(dir) = journal {
        b = b.journal_dir(dir);
    }
    b.build().expect("engine builds")
}

fn ok(response: &str) -> Json {
    let json = Json::parse(response).expect("response is JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected ok response, got: {response}"
    );
    json
}

fn code_of(response: &str) -> Option<String> {
    Json::parse(response)
        .ok()?
        .get("code")
        .and_then(Json::as_str)
        .map(str::to_owned)
}

fn report_of(engine: &Engine, id: &str) -> String {
    let response = engine.handle_line(&format!(r#"{{"op":"report","session":"{id}"}}"#));
    ok(&response);
    response
}

/// The per-session decision route, deterministic in the session index.
fn decisions_for(i: usize) -> Vec<(String, String)> {
    let eol = [32, 64, 256, 768][i % 4];
    let latency = [4.0, 8.0, 16.0][i % 3];
    vec![
        ("EOL".to_owned(), eol.to_string()),
        ("MaxLatencyUs".to_owned(), latency.to_string()),
        ("ModuloIsOdd".to_owned(), "\"Guaranteed\"".to_owned()),
        (
            "ImplementationStyle".to_owned(),
            "\"Hardware\"".to_owned(),
        ),
        ("Algorithm".to_owned(), "\"Montgomery\"".to_owned()),
    ]
}

// ---- chaos soak ------------------------------------------------------------

/// Decorrelates the fault schedule per (session, attempt, direction).
fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        h = (h ^ p).wrapping_mul(0x100_0000_01B3);
        h ^= h >> 29;
    }
    h
}

struct ChaosConn {
    reader: BufReader<FaultStream<TcpStream>>,
    writer: FaultStream<TcpStream>,
}

impl ChaosConn {
    fn connect(addr: std::net::SocketAddr, seed: u64) -> std::io::Result<ChaosConn> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        let rates = NetFaultRates::chaos();
        Ok(ChaosConn {
            reader: BufReader::new(FaultStream::new(
                read_half,
                NetFaultPlan::new(mix(seed, &[1]), 64, rates),
            )),
            writer: FaultStream::new(stream, NetFaultPlan::new(mix(seed, &[2]), 64, rates)),
        })
    }

    /// One request/response exchange over the faulty wire. Any I/O
    /// error means "this connection is toast, reconnect".
    fn rpc(&mut self, line: &str) -> std::io::Result<Json> {
        net::write_line(&mut self.writer, line)?;
        let response = net::read_line_bounded(&mut self.reader, MAX_WIRE_BYTES)?
            .ok_or_else(|| std::io::Error::other("connection closed mid-conversation"))?;
        Ok(Json::parse(&response)
            .unwrap_or_else(|e| panic!("non-JSON response {response:?}: {e}")))
    }
}

/// Property names already committed in a session, per its own report.
fn committed(report: &Json) -> BTreeSet<String> {
    report
        .get("decisions")
        .and_then(Json::as_array)
        .map(|ds| {
            ds.iter()
                .filter_map(|d| d.get("property").and_then(Json::as_str))
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default()
}

/// Drives one session to completion over a chaotic network: on any I/O
/// fault, reconnect, re-attach with `resume`, ask the server what
/// survived, and send only what is missing — exactly-once by
/// report-diff, not by hope. Returns the set of acknowledged decisions.
fn drive_session(
    addr: std::net::SocketAddr,
    id: &str,
    i: usize,
    seed: u64,
) -> BTreeSet<String> {
    let decisions = decisions_for(i);
    let mut acked: BTreeSet<String> = BTreeSet::new();
    let mut opened = false;
    for attempt in 0..500u64 {
        let conn_seed = mix(seed, &[i as u64, attempt]);
        let Ok(mut conn) = ChaosConn::connect(addr, conn_seed) else {
            continue;
        };
        // (Re-)attach. resume:true is only valid once the session
        // exists server-side; the first open may have committed without
        // an ack, so fall back to resume on a DSL305 conflict.
        let open = format!(
            r#"{{"op":"open","session":"{id}","snapshot":"crypto","resume":{}}}"#,
            opened
        );
        let done = match conn.rpc(&open) {
            Ok(json) if json.get("ok").and_then(Json::as_bool) == Some(true) => true,
            Ok(json) if json.get("code").and_then(Json::as_str) == Some("DSL305") => {
                opened = true;
                continue;
            }
            Ok(json) => panic!("unexpected open failure for {id}: {json:?}"),
            Err(_) => false,
        };
        if !done {
            continue;
        }
        opened = true;
        // What survived so far? (The first open of a fresh session
        // trivially reports nothing.)
        let Ok(report) = conn.rpc(&format!(r#"{{"op":"report","session":"{id}"}}"#)) else {
            continue;
        };
        let have = committed(&report);
        let mut io_failed = false;
        for (name, value) in &decisions {
            if have.contains(name) {
                acked.insert(name.clone()); // journal-before-ack: committed counts
                continue;
            }
            let line = format!(
                r#"{{"op":"decide","session":"{id}","name":"{name}","value":{value}}}"#
            );
            match conn.rpc(&line) {
                Ok(json) => {
                    assert_eq!(
                        json.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "decide {name} rejected for {id}: {json:?}"
                    );
                    acked.insert(name.clone());
                }
                Err(_) => {
                    io_failed = true;
                    break;
                }
            }
        }
        if io_failed {
            continue;
        }
        // Confirm the whole route landed before declaring victory.
        if let Ok(report) = conn.rpc(&format!(r#"{{"op":"report","session":"{id}"}}"#)) {
            let have = committed(&report);
            if decisions.iter().all(|(name, _)| have.contains(name)) {
                return acked;
            }
        }
    }
    panic!("session {id} did not converge within 500 connection attempts");
}

/// The headline soak: several sessions driven over fault-injected
/// connections (seeded drops, partial transfers, stalls), then the
/// daemon is killed and rebooted. Every acknowledged decision survives,
/// and every recovered report is byte-identical to a fault-free oracle.
#[test]
fn chaos_soak_loses_no_acknowledged_decision_and_matches_oracle() {
    const SESSIONS: usize = 6;
    let seed = chaos_seed();
    let dir = temp_dir(&format!("chaos-{seed}"));
    let engine = Arc::new(engine_with(Some(&dir), GuardConfig::default()));
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let serve_thread = std::thread::spawn(move || server.run());

    let acked: Vec<(String, BTreeSet<String>)> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..SESSIONS)
            .map(|i| {
                scope.spawn(move || {
                    let id = format!("chaos{i}");
                    let acked = drive_session(addr, &id, i, seed);
                    (id, acked)
                })
            })
            .collect();
        joins.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Kill the daemon without closing a single session: a clean client
    // sends shutdown, then the drain completes.
    {
        let clean = TcpStream::connect(addr).expect("connect for shutdown");
        let mut reader = BufReader::new(clean.try_clone().unwrap());
        let mut writer = clean;
        net::write_line(&mut writer, r#"{"op":"shutdown"}"#).unwrap();
        let _ = net::read_line_bounded(&mut reader, MAX_WIRE_BYTES);
    }
    serve_thread.join().unwrap().expect("clean drain");
    drop(engine);

    let recovered = engine_with(Some(&dir), GuardConfig::default());
    let oracle = engine_with(None, GuardConfig::default());
    for (id, acked) in &acked {
        let i: usize = id.trim_start_matches("chaos").parse().unwrap();
        ok(&oracle.handle_line(&format!(
            r#"{{"op":"open","session":"{id}","snapshot":"crypto"}}"#
        )));
        for (name, value) in decisions_for(i) {
            ok(&oracle.handle_line(&format!(
                r#"{{"op":"decide","session":"{id}","name":"{name}","value":{value}}}"#
            )));
        }
        let recovered_report = report_of(&recovered, id);
        assert_eq!(
            recovered_report,
            report_of(&oracle, id),
            "session {id} diverged from the fault-free oracle"
        );
        let have = committed(&Json::parse(&recovered_report).unwrap());
        for name in acked {
            assert!(
                have.contains(name),
                "acknowledged decision {name} lost from {id}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- admission control -----------------------------------------------------

#[test]
fn session_cap_answers_dsl309_with_retry_hint() {
    let guard = GuardConfig {
        max_sessions: 2,
        ..GuardConfig::default()
    };
    let engine = engine_with(None, guard);
    ok(&engine.handle_line(r#"{"op":"open","session":"a","snapshot":"crypto"}"#));
    ok(&engine.handle_line(r#"{"op":"open","session":"b","snapshot":"crypto"}"#));
    let refused =
        Json::parse(&engine.handle_line(r#"{"op":"open","session":"c","snapshot":"crypto"}"#))
            .unwrap();
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(refused.get("code").and_then(Json::as_str), Some("DSL309"));
    assert!(
        refused.get("retry_after_ms").and_then(Json::as_i64).unwrap_or(0) > 0,
        "DSL309 must carry a retry hint: {refused:?}"
    );
    // Re-attaching to an open session is not admission.
    ok(&engine.handle_line(r#"{"op":"open","session":"a","resume":true}"#));
    // Closing one frees a slot.
    ok(&engine.handle_line(r#"{"op":"close","session":"b"}"#));
    ok(&engine.handle_line(r#"{"op":"open","session":"c","snapshot":"crypto"}"#));
    let stats = ok(&engine.handle_line(r#"{"op":"stats"}"#));
    let guard_stats = stats.get("guard").expect("stats has guard object");
    assert!(
        guard_stats.get("overloaded").and_then(Json::as_i64).unwrap_or(0) >= 1,
        "shed opens must be counted: {stats:?}"
    );
}

#[test]
fn connection_cap_and_batch_cap_shed_with_dsl309() {
    let guard = GuardConfig {
        max_connections: 1,
        max_inflight_per_conn: 2,
        ..GuardConfig::default()
    };
    let server =
        Server::start(Arc::new(engine_with(None, guard)), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let serve_thread = std::thread::spawn(move || server.run());

    let first = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(first.try_clone().unwrap());
    let mut writer = first;
    // Establish the first connection server-side.
    net::write_line(&mut writer, r#"{"op":"stats","id":1}"#).unwrap();
    let r = net::read_line_bounded(&mut reader, MAX_WIRE_BYTES).unwrap().unwrap();
    ok(&r);

    // Second connection: one DSL309 line, then close.
    let second = TcpStream::connect(addr).expect("tcp accepts before refusing");
    let mut r2 = BufReader::new(second);
    let mut refusal = String::new();
    r2.read_line(&mut refusal).unwrap();
    assert_eq!(code_of(&refusal).as_deref(), Some("DSL309"), "{refusal}");
    let mut rest = String::new();
    r2.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "refused connection must be dropped");

    // Batch shedding: pipeline 4 requests in one write (a single
    // syscall, so they arrive as one batch); cap is 2, so requests 4
    // and 5 come back DSL309 with the retry hint — still in request
    // order.
    let batch = [
        r#"{"op":"open","session":"s","snapshot":"crypto","id":2}"#,
        r#"{"op":"decide","session":"s","name":"EOL","value":768,"id":3}"#,
        r#"{"op":"decide","session":"s","name":"MaxLatencyUs","value":8.0,"id":4}"#,
        r#"{"op":"report","session":"s","id":5}"#,
    ]
    .join("\n")
        + "\n";
    writer.write_all(batch.as_bytes()).unwrap();
    let mut shed = 0;
    for expect_id in 2..=5i64 {
        let response = net::read_line_bounded(&mut reader, MAX_WIRE_BYTES)
            .unwrap()
            .expect("response");
        let json = Json::parse(&response).unwrap();
        assert_eq!(json.get("id").and_then(Json::as_i64), Some(expect_id));
        if json.get("code").and_then(Json::as_str) == Some("DSL309") {
            shed += 1;
            assert!(
                json.get("retry_after_ms").and_then(Json::as_i64).unwrap_or(0) > 0,
                "{json:?}"
            );
        } else {
            ok(&response);
        }
    }
    assert_eq!(shed, 2, "two requests past the cap must be shed");

    net::write_line(&mut writer, r#"{"op":"shutdown","id":9}"#).unwrap();
    let _ = net::read_line_bounded(&mut reader, MAX_WIRE_BYTES);
    serve_thread.join().unwrap().expect("clean drain");
}

#[test]
fn idle_connections_are_reaped_but_active_ones_live() {
    let guard = GuardConfig {
        read_timeout: Some(Duration::from_millis(150)),
        ..GuardConfig::default()
    };
    let server =
        Server::start(Arc::new(engine_with(None, guard)), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let serve_thread = std::thread::spawn(move || server.run());

    // One connection goes idle while another keeps talking: only the
    // idle one is reaped.
    let idle = TcpStream::connect(addr).expect("connect");
    let mut idle_reader = BufReader::new(idle.try_clone().unwrap());
    let live = TcpStream::connect(addr).expect("connect");
    let mut live_reader = BufReader::new(live.try_clone().unwrap());
    let mut live_writer = live;
    for id in 1..=12 {
        std::thread::sleep(Duration::from_millis(50));
        net::write_line(&mut live_writer, &format!(r#"{{"op":"stats","id":{id}}}"#)).unwrap();
        let r = net::read_line_bounded(&mut live_reader, MAX_WIRE_BYTES)
            .unwrap()
            .expect("live connection answers");
        ok(&r);
    }

    // ~600ms have passed; the idle connection is reaped: reads hit EOF
    // (or a reset).
    let mut buf = String::new();
    let reaped = match idle_reader.read_line(&mut buf) {
        Ok(0) => true,
        Ok(_) => false,
        Err(_) => true, // reset also counts as reaped
    };
    assert!(reaped, "idle connection should be dropped, got {buf:?}");

    net::write_line(&mut live_writer, r#"{"op":"shutdown","id":9}"#).unwrap();
    let _ = net::read_line_bounded(&mut live_reader, MAX_WIRE_BYTES);
    serve_thread.join().unwrap().expect("clean drain");
}

// ---- deadlines -------------------------------------------------------------

#[test]
fn deadlines_answer_dsl310_deterministically_and_commit_nothing() {
    let engine = engine_with(None, GuardConfig::default());
    ok(&engine.handle_line(r#"{"op":"open","session":"d","snapshot":"crypto"}"#));
    ok(&engine.handle_line(r#"{"op":"decide","session":"d","name":"EOL","value":768}"#));
    let before = report_of(&engine, "d");

    // deadline_ms:0 burns out at admission, before any op runs.
    for op in [
        r#"{"op":"decide","session":"d","name":"MaxLatencyUs","value":8.0,"deadline_ms":0}"#,
        r#"{"op":"eval","session":"d","deadline_ms":0}"#,
        r#"{"op":"viable","session":"d","name":"EOL","deadline_ms":0}"#,
        r#"{"op":"report","session":"d","deadline_ms":0}"#,
    ] {
        let refused = Json::parse(&engine.handle_line(op)).unwrap();
        assert_eq!(
            refused.get("code").and_then(Json::as_str),
            Some("DSL310"),
            "{refused:?}"
        );
    }
    // Nothing committed: the report is byte-identical.
    assert_eq!(report_of(&engine, "d"), before);

    // A generous deadline changes nothing about the answer.
    let unhurried =
        engine.handle_line(r#"{"op":"eval","session":"d","deadline_ms":60000}"#);
    ok(&unhurried);
    let hurried_stats = ok(&engine.handle_line(r#"{"op":"stats"}"#));
    let guard_stats = hurried_stats.get("guard").expect("guard stats");
    assert!(
        guard_stats
            .get("deadline_exceeded")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 4,
        "{hurried_stats:?}"
    );

    // Determinism: the same starved eval answers the same way twice.
    let starved = r#"{"op":"eval","session":"d","deadline_ms":0}"#;
    assert_eq!(engine.handle_line(starved), engine.handle_line(starved));

    // Bad deadline shapes are malformed, not silently ignored.
    let bad = Json::parse(
        &engine.handle_line(r#"{"op":"eval","session":"d","deadline_ms":-5}"#),
    )
    .unwrap();
    assert_eq!(bad.get("code").and_then(Json::as_str), Some("DSL301"));
}

// ---- TTL eviction + lazy resume -------------------------------------------

#[test]
fn ttl_evicts_idle_sessions_and_lazy_resume_makes_it_invisible() {
    let dir = temp_dir("ttl");
    let guard = GuardConfig {
        session_ttl_requests: Some(4),
        ..GuardConfig::default()
    };
    let engine = engine_with(Some(&dir), guard);
    ok(&engine.handle_line(r#"{"op":"open","session":"idle","snapshot":"crypto"}"#));
    ok(&engine.handle_line(r#"{"op":"decide","session":"idle","name":"EOL","value":768}"#));
    let before = report_of(&engine, "idle");

    // Advance the logical clock past the TTL with unrelated traffic,
    // then trigger the sweep (it runs at open admission).
    for _ in 0..6 {
        ok(&engine.handle_line(r#"{"op":"stats"}"#));
    }
    ok(&engine.handle_line(r#"{"op":"open","session":"other","snapshot":"crypto"}"#));
    assert_eq!(
        engine.open_sessions(),
        1,
        "the idle session should have been evicted"
    );
    let stats = ok(&engine.handle_line(r#"{"op":"stats"}"#));
    assert_eq!(
        stats
            .get("guard")
            .and_then(|g| g.get("sessions_evicted"))
            .and_then(Json::as_i64),
        Some(1)
    );

    // Eviction is invisible: the next touch lazy-resumes from the
    // journal and the report matches, byte for byte.
    assert_eq!(report_of(&engine, "idle"), before);
    assert_eq!(engine.open_sessions(), 2);
    // And the session keeps exploring.
    ok(&engine.handle_line(
        r#"{"op":"decide","session":"idle","name":"MaxLatencyUs","value":8.0}"#,
    ));
    // Closing an evicted session also works (journal + meta reaped).
    for _ in 0..6 {
        ok(&engine.handle_line(r#"{"op":"stats"}"#));
    }
    ok(&engine.handle_line(r#"{"op":"open","session":"third","snapshot":"crypto"}"#));
    ok(&engine.handle_line(r#"{"op":"close","session":"idle"}"#));
    assert!(!dir.join("idle.jsonl").exists());
    assert!(!dir.join("idle.meta").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- journal compaction ----------------------------------------------------

#[test]
fn journal_compaction_bounds_growth_and_survives_a_kill() {
    let dir = temp_dir("compact");
    let guard = GuardConfig {
        compact_after: 6,
        ..GuardConfig::default()
    };
    let engine = engine_with(Some(&dir), guard.clone());
    ok(&engine.handle_line(r#"{"op":"open","session":"churn","snapshot":"crypto"}"#));
    // Churn: decide/retract cycles bloat an append-only journal with
    // history that cancels out.
    for _ in 0..5 {
        ok(&engine.handle_line(r#"{"op":"decide","session":"churn","name":"EOL","value":768}"#));
        ok(&engine.handle_line(r#"{"op":"retract","session":"churn"}"#));
    }
    for line in [
        r#"{"op":"decide","session":"churn","name":"EOL","value":768}"#,
        r#"{"op":"decide","session":"churn","name":"MaxLatencyUs","value":8.0}"#,
        r#"{"op":"decide","session":"churn","name":"ModuloIsOdd","value":"Guaranteed"}"#,
    ] {
        ok(&engine.handle_line(line));
    }
    let before = report_of(&engine, "churn");
    let stats = ok(&engine.handle_line(r#"{"op":"stats"}"#));
    let compactions = stats
        .get("guard")
        .and_then(|g| g.get("journal_compactions"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert!(compactions >= 1, "churn should have compacted: {stats:?}");
    // 13 mutating records were journaled; the checkpoint holds only the
    // live decisions.
    let journal_lines = std::fs::read_to_string(dir.join("churn.jsonl"))
        .unwrap()
        .lines()
        .count();
    assert!(
        journal_lines <= 6,
        "compacted journal should be near-minimal, found {journal_lines} records"
    );
    // No stale temp file left behind.
    assert!(!dir.join("churn.jsonl.tmp").exists());

    // Kill and recover: the compacted journal replays to the same state.
    drop(engine);
    let second = engine_with(Some(&dir), guard);
    assert_eq!(report_of(&second, "churn"), before);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- meta sidecar corruption: refuse vs recover ---------------------------

#[test]
fn corrupt_meta_sidecars_refuse_at_boot_but_explicit_resume_recovers() {
    let dir = temp_dir("meta");
    let engine = engine_with(Some(&dir), GuardConfig::default());
    for id in ["blank", "bogus"] {
        ok(&engine.handle_line(&format!(
            r#"{{"op":"open","session":"{id}","snapshot":"crypto"}}"#
        )));
        ok(&engine.handle_line(&format!(
            r#"{{"op":"decide","session":"{id}","name":"EOL","value":768}}"#
        )));
    }
    let pristine = report_of(&engine, "blank");
    drop(engine); // kill

    // Fixture 1: the sidecar is truncated to nothing.
    std::fs::write(dir.join("blank.meta"), "").unwrap();
    // Fixture 2: the sidecar names a snapshot that does not exist.
    std::fs::write(dir.join("bogus.meta"), "no-such-snapshot\n").unwrap();

    // Boot refuses both — a boot warning each, no half-recovered state.
    let second = engine_with(Some(&dir), GuardConfig::default());
    assert_eq!(second.open_sessions(), 0);
    let stats = ok(&second.handle_line(r#"{"op":"stats"}"#));
    let warnings = stats
        .get("boot_warnings")
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(warnings.len(), 2, "{warnings:?}");

    // Recover: an explicit snapshot resumes the blank-meta session and
    // repairs the sidecar for the next boot.
    let attach = ok(&second.handle_line(
        r#"{"op":"open","session":"blank","snapshot":"crypto","resume":true}"#,
    ));
    assert_eq!(attach.get("recovered").and_then(Json::as_bool), Some(true));
    assert_eq!(report_of(&second, "blank"), pristine);
    assert_eq!(
        std::fs::read_to_string(dir.join("blank.meta")).unwrap().trim(),
        "crypto"
    );

    // Refuse: resuming the bogus-meta session *without* a snapshot
    // keeps failing with a stable code rather than guessing.
    let refused = Json::parse(
        &second.handle_line(r#"{"op":"open","session":"bogus","resume":true}"#),
    )
    .unwrap();
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    // An explicit snapshot still recovers it.
    ok(&second.handle_line(
        r#"{"op":"open","session":"bogus","snapshot":"crypto","resume":true}"#,
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- breakers in stats -----------------------------------------------------

#[test]
fn breaker_state_is_visible_in_stats_after_estimation() {
    let engine = engine_with(None, GuardConfig::default());
    ok(&engine.handle_line(r#"{"op":"open","session":"b","snapshot":"crypto"}"#));
    for (name, value) in decisions_for(3) {
        ok(&engine.handle_line(&format!(
            r#"{{"op":"decide","session":"b","name":"{name}","value":{value}}}"#
        )));
    }
    // The CC3 estimation context fires once the behavioural
    // decomposition is selected — only then do tools actually run.
    ok(&engine.handle_line(
        r#"{"op":"decide","session":"b","name":"BehavioralDecomposition","value":"select-per-operator"}"#,
    ));
    ok(&engine.handle_line(r#"{"op":"eval","session":"b"}"#));
    let stats = ok(&engine.handle_line(r#"{"op":"stats"}"#));
    let breakers = stats
        .get("breakers")
        .and_then(Json::as_array)
        .expect("stats exposes breakers");
    assert!(
        !breakers.is_empty(),
        "estimation ran, so per-tool breakers exist: {stats:?}"
    );
    for b in breakers {
        assert_eq!(b.get("phase").and_then(Json::as_str), Some("closed"));
        assert_eq!(b.get("trips").and_then(Json::as_i64), Some(0));
    }
}

// ---- doc sync --------------------------------------------------------------

/// Every wire-level `DSL3xx` code must appear in the README's server
/// error table — a new code without documentation fails here.
#[test]
fn every_wire_error_code_is_documented_in_readme() {
    let readme = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("README.md"),
    )
    .expect("README.md");
    let missing: Vec<&str> = DiagCode::ALL
        .iter()
        .map(|c| c.as_str())
        .filter(|s| s.starts_with("DSL3"))
        .filter(|s| !readme.contains(*s))
        .collect();
    assert!(
        missing.is_empty(),
        "wire error codes missing from README.md: {missing:?}"
    );
}
