#![warn(missing_docs)]
//! Technology substrate for the hardware estimation models.
//!
//! The paper's case study synthesized its multiplier cores with commercial
//! tools against the LSI 0.35 µm G10 standard-cell library. That flow is
//! proprietary; this crate provides the substitute documented in
//! `DESIGN.md`: a parameterized technology model consisting of
//!
//! * a [`CellLibrary`] of generic standard cells with areas in gate
//!   equivalents (GE) and delays in `τ` (multiples of the node's nominal
//!   gate delay),
//! * [`FabricationNode`]s (0.7 µm … 0.25 µm) that map GE → µm² and τ → ns
//!   with classical feature-size scaling (area ∝ λ², delay ∝ λ),
//! * [`LayoutStyle`]s (standard cell, gate array, full custom) applying
//!   density and speed factors, and
//! * a simple dynamic [`power`] model (the paper lists power as work in
//!   progress; we include it as the layer's extension axis).
//!
//! Absolute numbers are calibrated to land in the same ranges as the
//! paper's Table 1; what the experiments rely on is the *relative* shape
//! (orderings, growth trends), which the structural models preserve.
//!
//! # Example
//!
//! ```
//! use techlib::{CellKind, FabricationNode, LayoutStyle, Technology};
//!
//! let tech = Technology::new(FabricationNode::n0350(), LayoutStyle::StandardCell);
//! let fa_area = tech.cell_area_um2(CellKind::FullAdder);
//! let fa_delay = tech.cell_delay_ns(CellKind::FullAdder);
//! assert!(fa_area > 0.0 && fa_delay > 0.0);
//!
//! // The same cell in 0.7 µm is about 4x bigger and 2x slower.
//! let old = Technology::new(FabricationNode::n0700(), LayoutStyle::StandardCell);
//! assert!(old.cell_area_um2(CellKind::FullAdder) > 3.5 * fa_area);
//! assert!(old.cell_delay_ns(CellKind::FullAdder) > 1.8 * fa_delay);
//! ```

mod cell;
mod layout;
mod node;
pub mod power;
mod tech;

pub use cell::{CellKind, CellLibrary, CellModel};
pub use layout::LayoutStyle;
pub use node::FabricationNode;
pub use tech::Technology;
