//! Benchmarks of the design-space-layer machinery itself: layer
//! construction, library generation, pruning and Pareto queries — the
//! operations a designer's tool loop would hammer.

use criterion::{criterion_group, criterion_main, Criterion};
use dse::eval::FigureOfMerit;
use dse::value::Value;
use dse_library::{crypto, Explorer};
use techlib::Technology;

fn bench_layer_build(c: &mut Criterion) {
    c.bench_function("dse/build_crypto_layer", |b| {
        b.iter(|| crypto::build_layer().expect("layer builds"));
    });
}

fn bench_library_build(c: &mut Criterion) {
    let tech = Technology::g10_035();
    c.bench_function("dse/build_crypto_library_768", |b| {
        b.iter(|| crypto::build_library(std::hint::black_box(&tech), 768));
    });
}

fn bench_walkthrough_pruning(c: &mut Criterion) {
    let layer = crypto::build_layer().expect("layer builds");
    let library = crypto::build_library(&Technology::g10_035(), 768);
    c.bench_function("dse/session_prune_and_rank", |b| {
        b.iter(|| {
            let mut exp = Explorer::new(&layer.space, layer.omm, &library);
            exp.session
                .set_requirement("EOL", Value::from(768))
                .unwrap();
            exp.session
                .set_requirement("MaxLatencyUs", Value::from(8.0))
                .unwrap();
            exp.session
                .set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
                .unwrap();
            exp.session
                .decide("ImplementationStyle", Value::from("Hardware"))
                .unwrap();
            exp.session
                .decide("Algorithm", Value::from("Montgomery"))
                .unwrap();
            exp.session
                .decide("AdderStructure", Value::from("carry-save"))
                .unwrap();
            (
                exp.surviving_cores().len(),
                exp.pareto_cores(&[FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs])
                    .len(),
            )
        });
    });
}

fn bench_fir_library(c: &mut Criterion) {
    let tech = Technology::g10_035();
    c.bench_function("dse/build_fir_library", |b| {
        b.iter(|| dse_library::fir::build_library(std::hint::black_box(&tech)));
    });
}

criterion_group!(
    benches,
    bench_layer_build,
    bench_library_build,
    bench_walkthrough_pruning,
    bench_fir_library
);
criterion_main!(benches);
