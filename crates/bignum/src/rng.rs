//! Random generation of big integers (test vectors, RSA demo keys).

use foundation::rng::Rng;

use crate::{Limb, UBig, LIMB_BITS};

/// Draws a uniformly random value in `0..bound` using rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn uniform_below<R: Rng + ?Sized>(bound: &UBig, rng: &mut R) -> UBig {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bit_len();
    let limbs = bits.div_ceil(LIMB_BITS) as usize;
    let top_bits = bits % LIMB_BITS;
    loop {
        let mut v: Vec<Limb> = (0..limbs).map(|_| rng.gen()).collect();
        if top_bits != 0 {
            if let Some(last) = v.last_mut() {
                *last &= (1 << top_bits) - 1;
            }
        }
        let candidate = UBig::from_limbs(v);
        if candidate < *bound {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::{SeedableRng, StdRng};

    #[test]
    fn always_below_bound() {
        let mut rng = StdRng::seed_from_u64(11);
        let bound = UBig::from_hex("10000000000000001").unwrap();
        for _ in 0..200 {
            assert!(uniform_below(&bound, &mut rng) < bound);
        }
    }

    #[test]
    fn bound_one_yields_zero() {
        let mut rng = StdRng::seed_from_u64(12);
        assert!(uniform_below(&UBig::one(), &mut rng).is_zero());
    }

    #[test]
    fn covers_the_range_for_small_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        let bound = UBig::from(4u64);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = uniform_below(&bound, &mut rng).to_u64().unwrap() as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }
}
