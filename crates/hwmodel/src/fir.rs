//! FIR filter architectures: a second hardware domain for the layer.
//!
//! The paper positions the design space layer as domain-tailorable
//! ("each design environment should develop its own design space layer,
//! tailored to the application domains of interest"). This module is the
//! substrate for a DSP-domain layer: direct-form FIR filters with the
//! classic parallelism trade-off — one MAC per tap (maximum throughput,
//! maximum area) down to a single time-multiplexed MAC (minimum area,
//! one output every `taps` cycles).
//!
//! As with the modular multipliers, the model is dual: a structural
//! area/timing estimate and a functional simulation validated against
//! naive convolution.

use std::fmt;

use techlib::{power, CellKind, Technology};

use crate::adder::AdderKind;

/// Errors from constructing a [`FirArchitecture`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FirError {
    /// Tap count must be positive.
    NoTaps,
    /// Data/coefficient widths must be in 4..=32.
    InvalidWidth(u32),
    /// MAC count must be in `1..=taps` and divide the tap count evenly.
    InvalidMacCount {
        /// The offending MAC count.
        macs: u32,
        /// The architecture's tap count.
        taps: u32,
    },
}

impl fmt::Display for FirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirError::NoTaps => write!(f, "a filter needs at least one tap"),
            FirError::InvalidWidth(w) => write!(f, "width {w} outside 4..=32"),
            FirError::InvalidMacCount { macs, taps } => {
                write!(f, "{macs} MAC units cannot serve {taps} taps evenly")
            }
        }
    }
}

impl std::error::Error for FirError {}

/// A direct-form FIR architecture: tap count, sample/coefficient widths
/// and the number of physical MAC units (the parallelism lever).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FirArchitecture {
    taps: u32,
    data_width: u32,
    coeff_width: u32,
    macs: u32,
}

/// The estimation result for one FIR architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirEstimate {
    /// Silicon area in µm².
    pub area_um2: f64,
    /// Clock period in ns.
    pub clock_ns: f64,
    /// Cycles per output sample.
    pub cycles_per_sample: u32,
    /// Sustainable sample rate in Msps.
    pub throughput_msps: f64,
    /// Time per output sample in ns.
    pub sample_time_ns: f64,
    /// Average dynamic power in mW.
    pub power_mw: f64,
}

impl FirArchitecture {
    /// Builds and validates an architecture.
    ///
    /// # Errors
    ///
    /// See [`FirError`].
    pub fn new(taps: u32, data_width: u32, coeff_width: u32, macs: u32) -> Result<Self, FirError> {
        if taps == 0 {
            return Err(FirError::NoTaps);
        }
        for w in [data_width, coeff_width] {
            if !(4..=32).contains(&w) {
                return Err(FirError::InvalidWidth(w));
            }
        }
        if macs == 0 || macs > taps || !taps.is_multiple_of(macs) {
            return Err(FirError::InvalidMacCount { macs, taps });
        }
        Ok(FirArchitecture {
            taps,
            data_width,
            coeff_width,
            macs,
        })
    }

    /// Fully parallel: one MAC per tap.
    ///
    /// # Errors
    ///
    /// See [`FirError`].
    pub fn parallel(taps: u32, data_width: u32, coeff_width: u32) -> Result<Self, FirError> {
        FirArchitecture::new(taps, data_width, coeff_width, taps)
    }

    /// Fully serial: one time-multiplexed MAC.
    ///
    /// # Errors
    ///
    /// See [`FirError`].
    pub fn serial(taps: u32, data_width: u32, coeff_width: u32) -> Result<Self, FirError> {
        FirArchitecture::new(taps, data_width, coeff_width, 1)
    }

    /// Tap count.
    pub fn taps(&self) -> u32 {
        self.taps
    }

    /// Sample width in bits.
    pub fn data_width(&self) -> u32 {
        self.data_width
    }

    /// Coefficient width in bits.
    pub fn coeff_width(&self) -> u32 {
        self.coeff_width
    }

    /// Physical MAC units.
    pub fn macs(&self) -> u32 {
        self.macs
    }

    /// Cycles per output sample: `taps / macs`.
    pub fn cycles_per_sample(&self) -> u32 {
        self.taps / self.macs
    }

    /// Output word width: full-precision accumulation.
    pub fn output_width(&self) -> u32 {
        self.data_width + self.coeff_width + 32 - self.taps.leading_zeros()
    }

    /// Structural area/timing/power estimate under `tech`.
    pub fn estimate(&self, tech: &Technology) -> FirEstimate {
        let area_ge = self.area_ge(tech);
        let clock_ns = self.clock_ns(tech);
        let cycles = self.cycles_per_sample();
        let sample_time_ns = clock_ns * cycles as f64;
        FirEstimate {
            area_um2: tech.ge_to_um2(area_ge) * 1.4, // same wiring overhead as the multipliers
            clock_ns,
            cycles_per_sample: cycles,
            throughput_msps: 1000.0 / sample_time_ns,
            sample_time_ns,
            power_mw: power::dynamic_power_mw(tech, area_ge, 1000.0 / clock_ns, 0.25),
        }
    }

    /// Gate-equivalent budget: MAC array multipliers, the accumulation
    /// structure, the tap delay line and the coefficient store.
    fn area_ge(&self, tech: &Technology) -> f64 {
        let and = tech.cell_model(CellKind::And2).area_ge;
        let fa = tech.cell_model(CellKind::FullAdder).area_ge;
        let dff = tech.cell_model(CellKind::Dff).area_ge;
        let (wd, wc) = (self.data_width as f64, self.coeff_width as f64);
        let wout = self.output_width() as f64;

        // One Wd×Wc array multiplier: partial products + CSA reduction +
        // final CPA.
        let multiplier = wd * wc * and
            + (wc - 1.0) * (wd + wc) * fa
            + AdderKind::CarryLookAhead.area_ge(self.data_width + self.coeff_width, tech);
        // Accumulator adder + result register per MAC.
        let accumulator = AdderKind::CarryLookAhead.area_ge(self.output_width(), tech) + wout * dff;
        let mac = multiplier + accumulator;

        // Tap delay line (x history) and coefficient store (ROM ≈ ¼ DFF
        // per bit); serial structures add operand muxing per MAC input.
        let delay_line = self.taps as f64 * wd * dff;
        let coeff_store = self.taps as f64 * wc * 0.25;
        let muxing = if self.macs < self.taps {
            self.macs as f64
                * (wd + wc)
                * tech.cell_model(CellKind::Mux2).area_ge
                * (self.cycles_per_sample() as f64).log2().max(1.0)
        } else {
            // Parallel: an adder tree combines the tap products.
            (self.taps - 1) as f64 * AdderKind::CarrySave.area_ge(self.output_width(), tech) / 2.0
        };
        let control = 120.0 + 4.0 * self.macs as f64;

        self.macs as f64 * mac + delay_line + coeff_store + muxing + control
    }

    /// Clock period: the MAC critical path (multiplier + accumulation);
    /// parallel structures add the adder-tree depth.
    fn clock_ns(&self, tech: &Technology) -> f64 {
        let and = tech.cell_model(CellKind::And2).delay_tau;
        let fa = tech.cell_model(CellKind::FullAdder).delay_tau;
        let mult_tau = and + (self.coeff_width.min(self.data_width) - 1) as f64 * fa * 0.5;
        let acc_tau = AdderKind::CarryLookAhead.delay_tau(self.output_width(), tech);
        let tree_tau = if self.macs == self.taps && self.taps > 1 {
            (32 - self.taps.leading_zeros()) as f64 * fa
        } else {
            0.0
        };
        tech.tau_to_ns(mult_tau + acc_tau + tree_tau)
    }

    /// Functional simulation: filters `input` with `coeffs` through the
    /// architecture's MAC schedule, returning the outputs and the cycle
    /// count consumed. Inputs/coefficients must fit their declared signed
    /// widths.
    ///
    /// # Errors
    ///
    /// Returns [`FirError::InvalidWidth`] if a value exceeds its width.
    pub fn simulate(&self, input: &[i64], coeffs: &[i64]) -> Result<(Vec<i64>, u64), FirError> {
        let check = |vals: &[i64], width: u32| -> Result<(), FirError> {
            let bound = 1i64 << (width - 1);
            if vals.iter().any(|&v| v < -bound || v >= bound) {
                return Err(FirError::InvalidWidth(width));
            }
            Ok(())
        };
        check(input, self.data_width)?;
        check(coeffs, self.coeff_width)?;

        let taps = self.taps as usize;
        let mut delay_line = vec![0i64; taps];
        let mut out = Vec::with_capacity(input.len());
        let mut cycles = 0u64;
        for &x in input {
            delay_line.rotate_right(1);
            delay_line[0] = x;
            // MAC schedule: `macs` products per cycle, accumulated exactly
            // (the structures differ in schedule, not in arithmetic).
            let mut acc = 0i64;
            for chunk in (0..taps).collect::<Vec<_>>().chunks(self.macs as usize) {
                for &k in chunk {
                    acc += delay_line[k] * coeffs.get(k).copied().unwrap_or(0);
                }
                cycles += 1;
            }
            out.push(acc);
        }
        Ok((out, cycles))
    }
}

impl fmt::Display for FirArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FIR {} taps, {}x{} bits, {} MACs",
            self.taps, self.data_width, self.coeff_width, self.macs
        )
    }
}

/// Reference convolution for validation.
pub fn reference_fir(input: &[i64], coeffs: &[i64]) -> Vec<i64> {
    input
        .iter()
        .enumerate()
        .map(|(n, _)| {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| if n >= k { c * input[n - k] } else { 0 })
                .sum()
        })
        .collect()
}

foundation::impl_json_struct!(FirArchitecture { taps, data_width, coeff_width, macs });
foundation::impl_json_struct!(FirEstimate {
    area_um2,
    clock_ns,
    cycles_per_sample,
    throughput_msps,
    sample_time_ns,
    power_mw,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::g10_035()
    }

    #[test]
    fn validation_rules() {
        assert_eq!(
            FirArchitecture::new(0, 12, 12, 1).unwrap_err(),
            FirError::NoTaps
        );
        assert_eq!(
            FirArchitecture::new(16, 2, 12, 1).unwrap_err(),
            FirError::InvalidWidth(2)
        );
        assert!(matches!(
            FirArchitecture::new(16, 12, 12, 5).unwrap_err(),
            FirError::InvalidMacCount { .. }
        ));
        assert!(FirArchitecture::new(16, 12, 12, 4).is_ok());
    }

    #[test]
    fn parallel_trades_area_for_throughput() {
        let t = tech();
        let parallel = FirArchitecture::parallel(32, 12, 12).unwrap().estimate(&t);
        let serial = FirArchitecture::serial(32, 12, 12).unwrap().estimate(&t);
        assert!(parallel.area_um2 > 5.0 * serial.area_um2);
        assert!(parallel.throughput_msps > 10.0 * serial.throughput_msps);
        assert_eq!(parallel.cycles_per_sample, 1);
        assert_eq!(serial.cycles_per_sample, 32);
    }

    #[test]
    fn semi_parallel_sits_between() {
        let t = tech();
        let par = FirArchitecture::parallel(32, 12, 12).unwrap().estimate(&t);
        let semi = FirArchitecture::new(32, 12, 12, 4).unwrap().estimate(&t);
        let ser = FirArchitecture::serial(32, 12, 12).unwrap().estimate(&t);
        assert!(ser.area_um2 < semi.area_um2 && semi.area_um2 < par.area_um2);
        assert!(
            ser.throughput_msps < semi.throughput_msps
                && semi.throughput_msps < par.throughput_msps
        );
    }

    #[test]
    fn simulation_matches_reference_convolution() {
        let input: Vec<i64> = (0..40).map(|i| ((i * 37) % 101) - 50).collect();
        let coeffs: Vec<i64> = vec![3, -1, 4, 1, -5, 9, -2, 6];
        let expect = reference_fir(&input, &coeffs);
        for macs in [1u32, 2, 4, 8] {
            let arch = FirArchitecture::new(8, 8, 8, macs).unwrap();
            let (got, cycles) = arch.simulate(&input, &coeffs).unwrap();
            assert_eq!(got, expect, "macs = {macs}");
            assert_eq!(cycles, input.len() as u64 * arch.cycles_per_sample() as u64);
        }
    }

    #[test]
    fn simulation_rejects_overwide_values() {
        let arch = FirArchitecture::serial(4, 8, 8).unwrap();
        assert_eq!(
            arch.simulate(&[200], &[1, 1, 1, 1]).unwrap_err(),
            FirError::InvalidWidth(8)
        );
        assert_eq!(
            arch.simulate(&[1], &[-300, 1, 1, 1]).unwrap_err(),
            FirError::InvalidWidth(8)
        );
    }

    #[test]
    fn throughput_magnitudes_are_plausible() {
        // A fully parallel 12-bit 32-tap filter in 0.35 µm should sustain
        // tens to a couple hundred Msps.
        let e = FirArchitecture::parallel(32, 12, 12)
            .unwrap()
            .estimate(&tech());
        assert!(
            e.throughput_msps > 30.0 && e.throughput_msps < 400.0,
            "{}",
            e.throughput_msps
        );
        assert!(e.power_mw > 0.0);
    }

    #[test]
    fn any_mac_schedule_is_exact() {
        foundation::check::run("any_mac_schedule_is_exact", |g| {
            let taps_exp = g.u32_in(0, 4);
            let macs_exp = g.u32_in(0, 4);
            let seed = g.u64();
            let taps = 1u32 << taps_exp;
            let macs = 1u32 << macs_exp.min(taps_exp);
            let arch = FirArchitecture::new(taps, 10, 10, macs).unwrap();
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as i64 % 512) - 256
            };
            let input: Vec<i64> = (0..20).map(|_| next()).collect();
            let coeffs: Vec<i64> = (0..taps).map(|_| next()).collect();
            let (got, _) = arch.simulate(&input, &coeffs).unwrap();
            assert_eq!(got, reference_fir(&input, &coeffs));
        });
    }

    #[test]
    fn display_and_accessors() {
        let a = FirArchitecture::new(16, 12, 10, 4).unwrap();
        assert_eq!(a.to_string(), "FIR 16 taps, 12x10 bits, 4 MACs");
        assert_eq!(a.taps(), 16);
        assert_eq!(a.data_width(), 12);
        assert_eq!(a.coeff_width(), 10);
        assert_eq!(a.macs(), 4);
        assert_eq!(a.output_width(), 12 + 10 + 5);
    }
}
