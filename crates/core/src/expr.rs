//! Expressions and predicates over property bindings.
//!
//! Consistency constraints contain relations such as
//! `Latency = 2·EOL/Radix + 1` (CC2) or
//! `Algorithm = Montgomery ∧ EOL ≥ 32 ∧ Adder ≠ CSA` (CC4). Rather than a
//! string DSL, relations are built programmatically as small expression
//! trees — type-checked at evaluation and rendered to readable formulas
//! for the layer's self-documentation.

use std::collections::BTreeMap;
use std::fmt;


use crate::intern::Symbol;
use crate::value::Value;

/// Property bindings: the decided/entered values visible to a relation.
///
/// Keys are interned [`Symbol`]s ordered by name, so iteration (and any
/// serialized form) is identical to the historical `BTreeMap<String, _>`
/// representation — but inserts and clones never allocate for the key,
/// and lookups by `&str` go straight to the tree without touching the
/// intern table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bindings {
    map: BTreeMap<Symbol, Value>,
}

impl Bindings {
    /// An empty set of bindings.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Binds `key` to `value`, returning the previous value if any.
    pub fn insert(&mut self, key: impl Into<Symbol>, value: Value) -> Option<Value> {
        self.map.insert(key.into(), value)
    }

    /// The bound value, if any. Lock-free: never interns.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.map.get(key)
    }

    /// Whether `key` is bound.
    pub fn contains_key(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Unbinds `key`, returning its value if it was bound.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.map.remove(key)
    }

    /// The number of bound properties.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> {
        self.map.iter().map(|(k, v)| (*k, v))
    }

    /// Iterates the bound names in order.
    pub fn keys(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.map.keys().copied()
    }
}

impl FromIterator<(Symbol, Value)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (Symbol, Value)>>(iter: I) -> Bindings {
        Bindings {
            map: iter.into_iter().collect(),
        }
    }
}

impl FromIterator<(String, Value)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Bindings {
        Bindings {
            map: iter.into_iter().map(|(k, v)| (Symbol::from(k), v)).collect(),
        }
    }
}

/// Errors from evaluating an expression or predicate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExprError {
    /// A referenced property has no bound value.
    Unbound(String),
    /// An operand had the wrong type.
    TypeMismatch {
        /// What the operation required.
        expected: &'static str,
        /// The type actually found.
        found: String,
    },
    /// Division by zero.
    DivisionByZero,
    /// An operation produced (or an operand already was) NaN or ±∞ —
    /// caught at the operation instead of silently propagating through
    /// bindings and constraint checks.
    NonFinite {
        /// The operation or operand that produced the value.
        context: String,
    },
}

impl ExprError {
    fn non_finite(context: impl Into<String>) -> ExprError {
        ExprError::NonFinite {
            context: context.into(),
        }
    }
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Unbound(p) => write!(f, "property {p:?} is not bound"),
            ExprError::TypeMismatch { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ExprError::DivisionByZero => write!(f, "division by zero"),
            ExprError::NonFinite { context } => {
                write!(f, "non-finite value (NaN or ±∞) from {context}")
            }
        }
    }
}

impl std::error::Error for ExprError {}

/// An arithmetic expression over property values.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Expr {
    /// A literal.
    Const(Value),
    /// A property reference by name.
    Prop(String),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient.
    Div(Box<Expr>, Box<Expr>),
    /// Power (`base ^ exponent`).
    Pow(Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // builder methods, deliberately named like the operators they build
impl Expr {
    /// A literal.
    pub fn constant(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// A property reference.
    pub fn prop(name: impl Into<String>) -> Expr {
        Expr::Prop(name.into())
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// `self ^ rhs`.
    pub fn pow(self, rhs: Expr) -> Expr {
        Expr::Pow(Box::new(self), Box::new(rhs))
    }

    /// Evaluates to a numeric value under `bindings`.
    ///
    /// Arithmetic is checked: division by zero and any NaN/±∞ result
    /// (overflow, `0^-1`, a non-finite bound value) surface as structured
    /// errors rather than flowing onward into bindings and constraint
    /// checks.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound properties, non-numeric operands,
    /// division by zero or non-finite results.
    pub fn eval(&self, bindings: &Bindings) -> Result<f64, ExprError> {
        let finite = |v: f64, what: &dyn fmt::Display| {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(ExprError::non_finite(what.to_string()))
            }
        };
        match self {
            Expr::Const(v) => {
                let x = v.as_f64().ok_or(ExprError::TypeMismatch {
                    expected: "number",
                    found: v.type_name().to_owned(),
                })?;
                finite(x, &format_args!("literal {v}"))
            }
            Expr::Prop(name) => {
                let v = bindings
                    .get(name)
                    .ok_or_else(|| ExprError::Unbound(name.clone()))?;
                let x = v.as_f64().ok_or(ExprError::TypeMismatch {
                    expected: "number",
                    found: v.type_name().to_owned(),
                })?;
                finite(x, &format_args!("property {name}"))
            }
            Expr::Add(a, b) => finite(a.eval(bindings)? + b.eval(bindings)?, self),
            Expr::Sub(a, b) => finite(a.eval(bindings)? - b.eval(bindings)?, self),
            Expr::Mul(a, b) => finite(a.eval(bindings)? * b.eval(bindings)?, self),
            Expr::Div(a, b) => {
                let d = b.eval(bindings)?;
                if d == 0.0 {
                    return Err(ExprError::DivisionByZero);
                }
                finite(a.eval(bindings)? / d, self)
            }
            Expr::Pow(a, b) => finite(a.eval(bindings)?.powf(b.eval(bindings)?), self),
        }
    }

    /// All property names referenced by the expression.
    pub fn references(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_refs(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Prop(p) => out.push(p.clone()),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Pow(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
        }
    }

    /// Whether the expression references property `name` — an
    /// allocation-free alternative to `references().contains(...)` for
    /// hot per-decision paths.
    pub fn mentions(&self, name: &str) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Prop(p) => p == name,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Pow(a, b) => a.mentions(name) || b.mentions(name),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Prop(p) => write!(f, "{p}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} × {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Pow(a, b) => write!(f, "({a} ^ {b})"),
        }
    }
}

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over property values.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Pred {
    /// Numeric comparison of two expressions.
    Cmp(CmpOp, Expr, Expr),
    /// Symbolic equality: property equals a literal option value
    /// (works for text/flag options, unlike the numeric `Cmp`).
    Is(String, Value),
    /// Symbolic inequality.
    IsNot(String, Value),
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `prop = value` (symbolic).
    pub fn is(prop: impl Into<String>, value: impl Into<Value>) -> Pred {
        Pred::Is(prop.into(), value.into())
    }

    /// `prop ≠ value` (symbolic).
    pub fn is_not(prop: impl Into<String>, value: impl Into<Value>) -> Pred {
        Pred::IsNot(prop.into(), value.into())
    }

    /// Numeric comparison helper.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Pred {
        Pred::Cmp(op, lhs, rhs)
    }

    /// Conjunction helper.
    pub fn all<I: IntoIterator<Item = Pred>>(preds: I) -> Pred {
        Pred::And(preds.into_iter().collect())
    }

    /// Disjunction helper.
    pub fn any<I: IntoIterator<Item = Pred>>(preds: I) -> Pred {
        Pred::Or(preds.into_iter().collect())
    }

    /// Evaluates under `bindings`.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound properties or type mismatches.
    pub fn eval(&self, bindings: &Bindings) -> Result<bool, ExprError> {
        match self {
            Pred::Cmp(op, a, b) => {
                let (x, y) = (a.eval(bindings)?, b.eval(bindings)?);
                Ok(match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                })
            }
            Pred::Is(p, v) => {
                let bound = bindings
                    .get(p)
                    .ok_or_else(|| ExprError::Unbound(p.clone()))?;
                Ok(bound.matches(v))
            }
            Pred::IsNot(p, v) => {
                let bound = bindings
                    .get(p)
                    .ok_or_else(|| ExprError::Unbound(p.clone()))?;
                Ok(!bound.matches(v))
            }
            Pred::And(ps) => {
                for p in ps {
                    if !p.eval(bindings)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Pred::Or(ps) => {
                for p in ps {
                    if p.eval(bindings)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Pred::Not(p) => Ok(!p.eval(bindings)?),
        }
    }

    /// Like [`eval`](Self::eval), but treats unbound properties as "not yet
    /// applicable" and returns `None` instead of an error.
    pub fn eval_if_ready(&self, bindings: &Bindings) -> Option<bool> {
        match self.eval(bindings) {
            Ok(b) => Some(b),
            Err(ExprError::Unbound(_)) => None,
            Err(_) => None,
        }
    }

    /// All property names referenced by the predicate.
    pub fn references(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_refs(&self, out: &mut Vec<String>) {
        match self {
            Pred::Cmp(_, a, b) => {
                out.extend(a.references());
                out.extend(b.references());
            }
            Pred::Is(p, _) | Pred::IsNot(p, _) => out.push(p.clone()),
            Pred::And(ps) | Pred::Or(ps) => {
                for p in ps {
                    p.collect_refs(out);
                }
            }
            Pred::Not(p) => p.collect_refs(out),
        }
    }

    /// Whether the predicate references property `name` — an
    /// allocation-free alternative to `references().contains(...)` for
    /// hot per-decision paths.
    pub fn mentions(&self, name: &str) -> bool {
        match self {
            Pred::Cmp(_, a, b) => a.mentions(name) || b.mentions(name),
            Pred::Is(p, _) | Pred::IsNot(p, _) => p == name,
            Pred::And(ps) | Pred::Or(ps) => ps.iter().any(|p| p.mentions(name)),
            Pred::Not(p) => p.mentions(name),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Pred::Is(p, v) => write!(f, "{p} = {v}"),
            Pred::IsNot(p, v) => write!(f, "{p} ≠ {v}"),
            Pred::And(ps) => join(f, ps, " ∧ "),
            Pred::Or(ps) => join(f, ps, " ∨ "),
            Pred::Not(p) => write!(f, "¬({p})"),
        }
    }
}

fn join(f: &mut fmt::Formatter<'_>, ps: &[Pred], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        write!(f, "{p}")?;
    }
    write!(f, ")")
}

foundation::impl_json_enum!(Expr {
    Const(v),
    Prop(name),
    Add(lhs, rhs),
    Sub(lhs, rhs),
    Mul(lhs, rhs),
    Div(lhs, rhs),
    Pow(lhs, rhs),
});
foundation::impl_json_enum!(CmpOp { Eq, Ne, Lt, Le, Gt, Ge });
foundation::impl_json_enum!(Pred {
    Cmp(op, lhs, rhs),
    Is(prop, value),
    IsNot(prop, value),
    And(preds),
    Or(preds),
    Not(inner),
});

#[cfg(test)]
mod tests {
    use super::*;

    fn bindings(pairs: &[(&str, Value)]) -> Bindings {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn cc2_formula_evaluates() {
        // L = 2·EOL/R + 1 with EOL=768, R=2 → 769.
        let formula = Expr::constant(2)
            .mul(Expr::prop("EOL"))
            .div(Expr::prop("Radix"))
            .add(Expr::constant(1));
        let b = bindings(&[("EOL", Value::Int(768)), ("Radix", Value::Int(2))]);
        assert_eq!(formula.eval(&b).unwrap(), 769.0);
        assert_eq!(
            formula.references(),
            vec!["EOL".to_owned(), "Radix".to_owned()]
        );
    }

    #[test]
    fn pow_evaluates_and_displays() {
        // table size = 2^k - 2
        let e = Expr::constant(2)
            .pow(Expr::prop("WindowBits"))
            .sub(Expr::constant(2));
        let b = bindings(&[("WindowBits", Value::Int(4))]);
        assert_eq!(e.eval(&b).unwrap(), 14.0);
        assert_eq!(e.to_string(), "((2 ^ WindowBits) - 2)");
        assert_eq!(e.references(), vec!["WindowBits".to_owned()]);
    }

    #[test]
    fn unbound_reference_errors() {
        let e = Expr::prop("missing");
        assert_eq!(
            e.eval(&Bindings::new()).unwrap_err(),
            ExprError::Unbound("missing".to_owned())
        );
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::constant(1).div(Expr::constant(0));
        assert_eq!(
            e.eval(&Bindings::new()).unwrap_err(),
            ExprError::DivisionByZero
        );
    }

    #[test]
    fn non_finite_results_are_structured_errors() {
        // Overflow: (1e308 * 10) → +∞.
        let e = Expr::constant(1e308).mul(Expr::constant(10));
        assert!(matches!(
            e.eval(&Bindings::new()).unwrap_err(),
            ExprError::NonFinite { .. }
        ));
        // 0 ^ -1 → +∞ through powf, not through Div's zero check.
        let e = Expr::constant(0).pow(Expr::constant(-1));
        assert!(matches!(
            e.eval(&Bindings::new()).unwrap_err(),
            ExprError::NonFinite { .. }
        ));
        // A NaN binding is caught at the property read.
        let e = Expr::prop("X").add(Expr::constant(1));
        let b = bindings(&[("X", Value::Real(f64::NAN))]);
        let err = e.eval(&b).unwrap_err();
        assert!(
            matches!(&err, ExprError::NonFinite { context } if context.contains("X")),
            "{err}"
        );
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn type_mismatch_on_text() {
        let e = Expr::prop("Algorithm").add(Expr::constant(1));
        let b = bindings(&[("Algorithm", Value::from("Montgomery"))]);
        assert!(matches!(
            e.eval(&b).unwrap_err(),
            ExprError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn cc1_style_inconsistency_predicate() {
        // Inconsistent: ModuloIsOdd = notGuaranteed ∧ Algorithm = Montgomery.
        let p = Pred::all([
            Pred::is("ModuloIsOdd", "notGuaranteed"),
            Pred::is("Algorithm", "Montgomery"),
        ]);
        let bad = bindings(&[
            ("ModuloIsOdd", Value::from("notGuaranteed")),
            ("Algorithm", Value::from("Montgomery")),
        ]);
        let good = bindings(&[
            ("ModuloIsOdd", Value::from("Guaranteed")),
            ("Algorithm", Value::from("Montgomery")),
        ]);
        assert!(p.eval(&bad).unwrap());
        assert!(!p.eval(&good).unwrap());
    }

    #[test]
    fn eval_if_ready_waits_for_bindings() {
        let p = Pred::is("Algorithm", "Montgomery");
        assert_eq!(p.eval_if_ready(&Bindings::new()), None);
        let b = bindings(&[("Algorithm", Value::from("Brickell"))]);
        assert_eq!(p.eval_if_ready(&b), Some(false));
    }

    #[test]
    fn cc4_style_mixed_predicate() {
        // Algorithm = Montgomery ∧ EOL ≥ 32 ∧ Adder ≠ CSA ⇒ inconsistent.
        let p = Pred::all([
            Pred::is("Algorithm", "Montgomery"),
            Pred::cmp(CmpOp::Ge, Expr::prop("EOL"), Expr::constant(32)),
            Pred::is_not("Adder", "carry-save"),
        ]);
        let hit = bindings(&[
            ("Algorithm", Value::from("Montgomery")),
            ("EOL", Value::Int(768)),
            ("Adder", Value::from("carry-look-ahead")),
        ]);
        let miss = bindings(&[
            ("Algorithm", Value::from("Montgomery")),
            ("EOL", Value::Int(16)),
            ("Adder", Value::from("carry-look-ahead")),
        ]);
        assert!(p.eval(&hit).unwrap());
        assert!(!p.eval(&miss).unwrap());
    }

    #[test]
    fn not_or_combinators() {
        let p = Pred::Not(Box::new(Pred::any([Pred::is("x", 1), Pred::is("x", 2)])));
        let b = bindings(&[("x", Value::Int(3))]);
        assert!(p.eval(&b).unwrap());
    }

    #[test]
    fn display_renders_formulas() {
        let formula = Expr::constant(2)
            .mul(Expr::prop("EOL"))
            .div(Expr::prop("Radix"))
            .add(Expr::constant(1));
        assert_eq!(formula.to_string(), "(((2 × EOL) / Radix) + 1)");
        let p = Pred::all([Pred::is("A", "x"), Pred::is_not("B", "y")]);
        assert_eq!(p.to_string(), "(A = x ∧ B ≠ y)");
    }

    #[test]
    fn pred_references_collects_everything() {
        let p = Pred::all([
            Pred::is("Algorithm", "Montgomery"),
            Pred::cmp(CmpOp::Ge, Expr::prop("EOL"), Expr::prop("SliceWidth")),
        ]);
        assert_eq!(
            p.references(),
            vec![
                "Algorithm".to_owned(),
                "EOL".to_owned(),
                "SliceWidth".to_owned()
            ]
        );
    }
}
