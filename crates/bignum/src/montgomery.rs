//! Montgomery modular multiplication (reference implementations).
//!
//! The paper's Fig. 10 gives the digit-serial Montgomery algorithm used by
//! the hardware multiplier cores; [`mont_mul_digit_serial`] mirrors that
//! loop exactly (radix `2ᵏ`, one quotient digit per iteration) and is the
//! golden model for the `hwmodel` datapath simulator. [`MontgomeryContext`]
//! provides the full-width REDC route used for fast validation and for the
//! modular-exponentiation coprocessor reference.

use std::fmt;

use crate::{mod_inverse, UBig};

/// Errors from constructing Montgomery machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MontgomeryError {
    /// Montgomery's algorithm requires an odd modulus (paper CC1: the
    /// `Modulo is Odd` requirement must be `Guaranteed`).
    EvenModulus,
    /// The modulus must be at least 3.
    ModulusTooSmall,
}

impl fmt::Display for MontgomeryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MontgomeryError::EvenModulus => {
                write!(f, "montgomery multiplication requires an odd modulus")
            }
            MontgomeryError::ModulusTooSmall => write!(f, "modulus must be at least 3"),
        }
    }
}

impl std::error::Error for MontgomeryError {}

/// Precomputed state for Montgomery arithmetic modulo an odd `m`.
///
/// # Examples
///
/// ```
/// use bignum::{MontgomeryContext, UBig};
///
/// let m = UBig::from(101u64);
/// let ctx = MontgomeryContext::new(&m)?;
/// let a = UBig::from(77u64);
/// let b = UBig::from(55u64);
/// assert_eq!(ctx.mod_mul(&a, &b), a.mod_mul(&b, &m));
/// # Ok::<(), bignum::MontgomeryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MontgomeryContext {
    m: UBig,
    /// Number of bits in R (R = 2^r_bits > m).
    r_bits: u32,
    /// R² mod m, for conversion into the Montgomery domain.
    r2: UBig,
    /// -m⁻¹ mod R (full width).
    m_prime: UBig,
}

impl MontgomeryContext {
    /// Builds a context for the odd modulus `m`.
    ///
    /// # Errors
    ///
    /// Returns [`MontgomeryError::EvenModulus`] if `m` is even and
    /// [`MontgomeryError::ModulusTooSmall`] if `m < 3`.
    pub fn new(m: &UBig) -> Result<Self, MontgomeryError> {
        if *m <= UBig::one() || *m == UBig::from(2u64) {
            return Err(MontgomeryError::ModulusTooSmall);
        }
        if m.is_even() {
            return Err(MontgomeryError::EvenModulus);
        }
        let r_bits = m.bit_len();
        let r = UBig::power_of_two(r_bits);
        let m_inv = mod_inverse(m, &r).expect("odd modulus is invertible mod 2^k");
        let m_prime = r.checked_sub(&m_inv).expect("inverse < r");
        let r2 = r.mod_mul(&r, m);
        Ok(MontgomeryContext {
            m: m.clone(),
            r_bits,
            r2,
            m_prime,
        })
    }

    /// The modulus.
    pub fn modulus(&self) -> &UBig {
        &self.m
    }

    /// Number of bits in the Montgomery radix `R = 2^r_bits`.
    pub fn r_bits(&self) -> u32 {
        self.r_bits
    }

    /// Montgomery reduction: computes `t·R⁻¹ mod m` for `t < m·R`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `t >= m·R`.
    pub fn redc(&self, t: &UBig) -> UBig {
        debug_assert!(t < &(&self.m * &UBig::power_of_two(self.r_bits)));
        // u = (t + (t·m' mod R)·m) / R
        let tm = (t * &self.m_prime).low_bits(self.r_bits);
        let u = (t + &(&tm * &self.m)).shr(self.r_bits);
        match u.checked_sub(&self.m) {
            Some(reduced) => reduced,
            None => u,
        }
    }

    /// Converts into the Montgomery domain: `a·R mod m`.
    pub fn to_mont(&self, a: &UBig) -> UBig {
        self.redc(&(&a.rem(&self.m) * &self.r2))
    }

    /// Converts out of the Montgomery domain: `ā·R⁻¹ mod m`.
    pub fn from_mont(&self, a_bar: &UBig) -> UBig {
        self.redc(a_bar)
    }

    /// Montgomery product of two values already in the Montgomery domain.
    pub fn mont_mul(&self, a_bar: &UBig, b_bar: &UBig) -> UBig {
        self.redc(&(a_bar * b_bar))
    }

    /// Plain modular multiplication `a·b mod m` via the Montgomery route
    /// (`REDC(REDC(a·b)·R²)`).
    pub fn mod_mul(&self, a: &UBig, b: &UBig) -> UBig {
        let ab_rinv = self.redc(&(&a.rem(&self.m) * &b.rem(&self.m)));
        self.redc(&(&ab_rinv * &self.r2))
    }

    /// Modular exponentiation `base^exp mod m` performed entirely in the
    /// Montgomery domain (the coprocessor's inner loop).
    pub fn mod_pow(&self, base: &UBig, exp: &UBig) -> UBig {
        let one_bar = self.to_mont(&UBig::one());
        let base_bar = self.to_mont(base);
        let mut acc = one_bar;
        for i in (0..exp.bit_len()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_bar);
            }
        }
        self.from_mont(&acc)
    }
}

/// Digit-serial Montgomery multiplication in radix `2ᵏ` — the paper's
/// Fig. 10 loop.
///
/// Computes `A·B·2^(-k·digits) mod m` by processing one base-`2ᵏ` digit of
/// `a` per iteration:
///
/// ```text
/// R := 0
/// for i in 0..digits:
///     R := R + aᵢ·B
///     qᵢ := (R·(-M⁻¹)) mod 2ᵏ        (quotient digit)
///     R := (R + qᵢ·M) / 2ᵏ           (exact division)
/// ```
///
/// The caller chooses `digits`; a full multiplication needs
/// `digits ≥ ceil(bit_len(a) / k)`. The result is fully reduced below `m`.
///
/// # Errors
///
/// Returns an error if `m` is even or smaller than 3.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 32`, or if `a` or `b` is not below `m`.
pub fn mont_mul_digit_serial(
    a: &UBig,
    b: &UBig,
    m: &UBig,
    k: u32,
    digits: u32,
) -> Result<UBig, MontgomeryError> {
    assert!((1..=32).contains(&k), "digit width must be in 1..=32");
    if *m <= UBig::one() || *m == UBig::from(2u64) {
        return Err(MontgomeryError::ModulusTooSmall);
    }
    if m.is_even() {
        return Err(MontgomeryError::EvenModulus);
    }
    assert!(a < m && b < m, "operands must be reduced below the modulus");

    let r = 1u64 << k;
    let m0 = m.bits(0, k);
    let m0_inv = mod_inverse(&UBig::from(m0), &UBig::from(r))
        .expect("odd modulus digit is invertible mod 2^k")
        .to_u64()
        .expect("inverse fits in a digit");
    // -M⁻¹ mod 2ᵏ, the paper's (r - M₀)⁻¹ factor.
    let m_prime = (r - m0_inv) % r;

    let mut acc = UBig::zero();
    for i in 0..digits {
        let a_i = a.digit(i, k);
        acc = &acc + &(b * &UBig::from(a_i));
        let q = (acc.bits(0, k).wrapping_mul(m_prime)) & (r - 1);
        acc = (&acc + &(m * &UBig::from(q))).shr(k);
    }
    // Invariant: acc < B + M < 2M, so a single conditional subtract reduces.
    while acc >= *m {
        acc = acc.checked_sub(m).expect("acc >= m");
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_below;
    use foundation::rng::{SeedableRng, StdRng};

    fn odd_modulus_512() -> UBig {
        let mut m = UBig::power_of_two(512);
        m = &m + &UBig::from(0x2b5u64); // make it odd and irregular
        m.set_bit(0, true);
        m
    }

    #[test]
    fn context_rejects_bad_moduli() {
        assert_eq!(
            MontgomeryContext::new(&UBig::from(4u64)).unwrap_err(),
            MontgomeryError::EvenModulus
        );
        assert_eq!(
            MontgomeryContext::new(&UBig::one()).unwrap_err(),
            MontgomeryError::ModulusTooSmall
        );
        assert_eq!(
            MontgomeryContext::new(&UBig::zero()).unwrap_err(),
            MontgomeryError::ModulusTooSmall
        );
        assert_eq!(
            MontgomeryContext::new(&UBig::from(2u64)).unwrap_err(),
            MontgomeryError::ModulusTooSmall
        );
    }

    #[test]
    fn domain_roundtrip() {
        let m = odd_modulus_512();
        let ctx = MontgomeryContext::new(&m).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let a = uniform_below(&m, &mut rng);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a);
        }
    }

    #[test]
    fn mont_matches_naive_random() {
        let m = odd_modulus_512();
        let ctx = MontgomeryContext::new(&m).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let a = uniform_below(&m, &mut rng);
            let b = uniform_below(&m, &mut rng);
            assert_eq!(ctx.mod_mul(&a, &b), a.mod_mul(&b, &m));
        }
    }

    #[test]
    fn mont_mod_pow_matches_binary() {
        let m = UBig::from(1000003u64); // prime, odd
        let ctx = MontgomeryContext::new(&m).unwrap();
        let base = UBig::from(123456u64);
        let exp = UBig::from(789u64);
        assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow(&exp, &m));
        assert_eq!(ctx.mod_pow(&base, &UBig::zero()), UBig::one());
    }

    #[test]
    fn digit_serial_matches_redc_radix2() {
        // A·B·2^{-d} mod m computed two ways.
        let m = UBig::from(0xF123_4567_89AB_CDEFu64 | 1);
        let a = UBig::from(0x1234_5678_9ABCu64);
        let b = UBig::from(0xFEDC_BA98u64);
        let d = a.bit_len().max(1);
        let ds = mont_mul_digit_serial(&a, &b, &m, 1, d).unwrap();
        // Reference: a·b·inv(2^d) mod m.
        let inv = mod_inverse(&UBig::power_of_two(d), &m).unwrap();
        let expect = a.mod_mul(&b, &m).mod_mul(&inv, &m);
        assert_eq!(ds, expect);
    }

    #[test]
    fn digit_serial_all_radices_agree_with_reference() {
        let m = odd_modulus_512();
        let mut rng = StdRng::seed_from_u64(3);
        for k in [1u32, 2, 3, 4, 8, 16, 32] {
            let a = uniform_below(&m, &mut rng);
            let b = uniform_below(&m, &mut rng);
            let digits = m.bit_len().div_ceil(k) + 1;
            let got = mont_mul_digit_serial(&a, &b, &m, k, digits).unwrap();
            let inv = mod_inverse(&UBig::power_of_two(k * digits), &m).unwrap();
            let expect = a.mod_mul(&b, &m).mod_mul(&inv, &m);
            assert_eq!(got, expect, "radix 2^{k}");
        }
    }

    #[test]
    fn digit_serial_rejects_even_modulus() {
        let err =
            mont_mul_digit_serial(&UBig::one(), &UBig::one(), &UBig::from(8u64), 1, 4).unwrap_err();
        assert_eq!(err, MontgomeryError::EvenModulus);
    }

    #[test]
    fn result_is_fully_reduced() {
        let m = UBig::from(97u64);
        for a in 0..97u64 {
            let got = mont_mul_digit_serial(
                &UBig::from(a),
                &UBig::from(96u64),
                &m,
                2,
                4, // 8 bits > 7-bit modulus
            )
            .unwrap();
            assert!(got < m);
        }
    }
}
