//! Generic standard-cell models.

use std::collections::BTreeMap;
use std::fmt;


/// The cell kinds the hardware models are built from.
///
/// The set mirrors what a minimal ASIC standard-cell library offers plus
/// the two arithmetic macro cells (half/full adder) that adder structures
/// are counted in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer.
    Mux2,
    /// 4:1 multiplexer.
    Mux4,
    /// Half adder (sum + carry).
    HalfAdder,
    /// Full adder (3-input sum + carry).
    FullAdder,
    /// D flip-flop (one register bit).
    Dff,
}

impl CellKind {
    /// All cell kinds, for iteration.
    pub const ALL: [CellKind; 14] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Mux4,
        CellKind::HalfAdder,
        CellKind::FullAdder,
        CellKind::Dff,
    ];
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nand3 => "NAND3",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Mux4 => "MUX4",
            CellKind::HalfAdder => "HA",
            CellKind::FullAdder => "FA",
            CellKind::Dff => "DFF",
        };
        f.write_str(s)
    }
}

/// Area and timing model of one cell, in technology-independent units.
///
/// * `area_ge` — area in gate equivalents (1 GE = one NAND2).
/// * `delay_tau` — worst-case propagation delay in τ (multiples of the
///   node's nominal gate delay).
/// * `carry_delay_tau` — for the adder macro cells, the (faster)
///   input-to-carry path; equal to `delay_tau` for everything else.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellModel {
    /// Area in gate equivalents.
    pub area_ge: f64,
    /// Worst-case propagation delay in τ units.
    pub delay_tau: f64,
    /// Input-to-carry delay in τ units (adder cells); equals `delay_tau`
    /// for non-adder cells.
    pub carry_delay_tau: f64,
}

impl CellModel {
    fn simple(area_ge: f64, delay_tau: f64) -> Self {
        CellModel {
            area_ge,
            delay_tau,
            carry_delay_tau: delay_tau,
        }
    }
}

/// A collection of cell models, keyed by [`CellKind`].
///
/// [`CellLibrary::generic`] provides the default library used throughout
/// the workspace; custom libraries can be built for what-if exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    cells: BTreeMap<CellKind, CellModel>,
}

impl CellLibrary {
    /// The generic library with textbook relative areas and delays.
    pub fn generic() -> Self {
        let mut cells = BTreeMap::new();
        cells.insert(CellKind::Inv, CellModel::simple(0.5, 0.5));
        cells.insert(CellKind::Buf, CellModel::simple(0.75, 0.8));
        cells.insert(CellKind::Nand2, CellModel::simple(1.0, 1.0));
        cells.insert(CellKind::Nand3, CellModel::simple(1.5, 1.3));
        cells.insert(CellKind::Nor2, CellModel::simple(1.0, 1.1));
        cells.insert(CellKind::And2, CellModel::simple(1.25, 1.4));
        cells.insert(CellKind::Or2, CellModel::simple(1.25, 1.5));
        cells.insert(CellKind::Xor2, CellModel::simple(2.5, 1.7));
        cells.insert(CellKind::Xnor2, CellModel::simple(2.5, 1.7));
        cells.insert(CellKind::Mux2, CellModel::simple(2.0, 1.4));
        cells.insert(CellKind::Mux4, CellModel::simple(4.5, 2.1));
        cells.insert(
            CellKind::HalfAdder,
            CellModel {
                area_ge: 3.5,
                delay_tau: 1.7, // sum (XOR) path
                carry_delay_tau: 1.4,
            },
        );
        cells.insert(
            CellKind::FullAdder,
            CellModel {
                area_ge: 7.5,
                delay_tau: 3.4, // sum path: two XOR stages
                carry_delay_tau: 2.0,
            },
        );
        cells.insert(CellKind::Dff, CellModel::simple(6.0, 1.8));
        CellLibrary { cells }
    }

    /// Looks up a cell model.
    ///
    /// # Panics
    ///
    /// Panics if the library has no model for `kind` — every library
    /// constructed through this crate's API is total over [`CellKind`].
    pub fn model(&self, kind: CellKind) -> CellModel {
        *self
            .cells
            .get(&kind)
            .unwrap_or_else(|| panic!("cell library is missing a model for {kind}"))
    }

    /// Replaces the model for one cell kind (what-if exploration).
    pub fn set_model(&mut self, kind: CellKind, model: CellModel) {
        self.cells.insert(kind, model);
    }

    /// Iterates over all `(kind, model)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellKind, CellModel)> + '_ {
        self.cells.iter().map(|(&k, &m)| (k, m))
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::generic()
    }
}

foundation::impl_json_enum!(CellKind {
    Inv,
    Buf,
    Nand2,
    Nand3,
    Nor2,
    And2,
    Or2,
    Xor2,
    Xnor2,
    Mux2,
    Mux4,
    HalfAdder,
    FullAdder,
    Dff,
});
foundation::impl_json_struct!(CellModel { area_ge, delay_tau, carry_delay_tau });
foundation::impl_json_struct!(CellLibrary { cells });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_library_is_total() {
        let lib = CellLibrary::generic();
        for kind in CellKind::ALL {
            let m = lib.model(kind);
            assert!(m.area_ge > 0.0, "{kind} area");
            assert!(m.delay_tau > 0.0, "{kind} delay");
            assert!(m.carry_delay_tau > 0.0, "{kind} carry delay");
        }
    }

    #[test]
    fn nand2_is_the_unit_gate() {
        let lib = CellLibrary::generic();
        let n = lib.model(CellKind::Nand2);
        assert_eq!(n.area_ge, 1.0);
        assert_eq!(n.delay_tau, 1.0);
    }

    #[test]
    fn full_adder_carry_is_faster_than_sum() {
        // The CSA timing advantage rests on this.
        let fa = CellLibrary::generic().model(CellKind::FullAdder);
        assert!(fa.carry_delay_tau < fa.delay_tau);
    }

    #[test]
    fn xor_is_bigger_and_slower_than_nand() {
        let lib = CellLibrary::generic();
        assert!(lib.model(CellKind::Xor2).area_ge > lib.model(CellKind::Nand2).area_ge);
        assert!(lib.model(CellKind::Xor2).delay_tau > lib.model(CellKind::Nand2).delay_tau);
    }

    #[test]
    fn set_model_overrides() {
        let mut lib = CellLibrary::generic();
        lib.set_model(CellKind::Dff, CellModel::simple(9.0, 2.2));
        assert_eq!(lib.model(CellKind::Dff).area_ge, 9.0);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(CellKind::FullAdder.to_string(), "FA");
        assert_eq!(CellKind::Nand2.to_string(), "NAND2");
    }
}
