//! Property-based tests of the exploration machinery's invariants:
//! pruning is monotone, Pareto fronts are sound, sessions undo cleanly,
//! and the hardware estimator behaves monotonically along its axes.

use design_space_layer::dse::eval::{EvalPoint, EvaluationSpace, FigureOfMerit};
use design_space_layer::dse::prelude::*;
use design_space_layer::dse_library::{CoreRecord, Explorer, ReuseLibrary};
use design_space_layer::hwmodel::{AdderKind, Algorithm, DigitMultiplierKind, ModMulArchitecture};
use design_space_layer::techlib::Technology;
use foundation::check::{self, Gen};

/// A small two-issue layer for generated-library tests.
fn two_issue_space() -> (DesignSpace, CdoId) {
    let mut s = DesignSpace::new("prop");
    let root = s.add_root("Block", "");
    s.add_property(
        root,
        Property::generalized_issue("Style", Domain::options(["A", "B"]), ""),
    )
    .unwrap();
    s.specialize(root, "Style").unwrap();
    s.add_property(
        root,
        Property::issue("Width", Domain::options([8, 16, 32]), ""),
    )
    .unwrap();
    (s, root)
}

fn arb_core(g: &mut Gen, idx: usize) -> CoreRecord {
    CoreRecord::new(format!("core{idx}"), "gen", "")
        .bind("Style", *g.choose(&["A", "B"]))
        .bind("Width", *g.choose(&[8i64, 16, 32]))
        .merit(FigureOfMerit::AreaUm2, g.f64_in(1.0, 1000.0))
        .merit(FigureOfMerit::DelayNs, g.f64_in(1.0, 1000.0))
}

fn arb_library(g: &mut Gen) -> ReuseLibrary {
    let n = g.usize_in(1, 30);
    let mut lib = ReuseLibrary::new("generated");
    lib.extend((0..n).map(|i| arb_core(g, i)));
    lib
}

#[test]
fn pruning_is_monotone() {
    check::run("pruning_is_monotone", |g| {
        let lib = arb_library(g);
        let style = *g.choose(&["A", "B"]);
        let width = *g.choose(&[8i64, 16, 32]);
        let (space, root) = two_issue_space();
        let mut exp = Explorer::new(&space, root, &lib);
        let n0 = exp.surviving_cores().len();
        exp.session.decide("Style", Value::from(style)).unwrap();
        let n1 = exp.surviving_cores().len();
        exp.session.decide("Width", Value::from(width)).unwrap();
        let n2 = exp.surviving_cores().len();
        assert!(n1 <= n0);
        assert!(n2 <= n1);
        // Every survivor really complies.
        for c in exp.surviving_cores() {
            assert!(c.binding("Style") == Some(&Value::from(style)));
            assert!(c.binding("Width") == Some(&Value::from(width)));
        }
    });
}

#[test]
fn pareto_front_is_sound_and_complete() {
    check::run("pareto_front_is_sound_and_complete", |g| {
        let lib = arb_library(g);
        let merits = [FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs];
        let space: EvaluationSpace = lib.cores().iter().map(|c| c.eval_point()).collect();
        let front = space.pareto_front(&merits);
        assert!(!front.is_empty());
        // No front member dominates another.
        for &i in &front {
            for &j in &front {
                if i != j {
                    assert!(!space.points()[i].dominates(&space.points()[j], &merits));
                }
            }
        }
        // Every non-member is dominated by some member.
        for i in 0..space.len() {
            if !front.contains(&i) {
                assert!(
                    front
                        .iter()
                        .any(|&f| space.points()[f].dominates(&space.points()[i], &merits)),
                    "point {i} neither on the front nor dominated"
                );
            }
        }
    });
}

#[test]
fn ranges_cover_every_survivor() {
    check::run("ranges_cover_every_survivor", |g| {
        let lib = arb_library(g);
        let (space, root) = two_issue_space();
        let exp = Explorer::new(&space, root, &lib);
        let (lo, hi) = exp.merit_range(&FigureOfMerit::AreaUm2).unwrap();
        for c in exp.surviving_cores() {
            let a = c.merit_value(&FigureOfMerit::AreaUm2).unwrap();
            assert!(a >= lo && a <= hi);
        }
    });
}

#[test]
fn session_undo_restores_everything() {
    check::run("session_undo_restores_everything", |g| {
        let first = (g.usize_in(0, 2), g.usize_in(0, 3));
        let (space, root) = two_issue_space();
        let mut ses = ExplorationSession::new(&space, root);
        // Apply the first decision pair, snapshot, apply/undo the rest.
        ses.decide("Style", Value::from(["A", "B"][first.0])).unwrap();
        let snapshot_bindings = ses.bindings().clone();
        let snapshot_focus = ses.focus();
        if ses.decided("Width").is_none() {
            ses.decide("Width", Value::from([8i64, 16, 32][first.1]))
                .unwrap();
            ses.undo().unwrap();
        }
        assert_eq!(ses.bindings(), &snapshot_bindings);
        assert_eq!(ses.focus(), snapshot_focus);
    });
}

#[test]
fn estimator_is_monotone_in_operand_length() {
    check::run("estimator_is_monotone_in_operand_length", |g| {
        let exp_small = g.u32_in(1, 4);
        let extra = g.u32_in(1, 4);
        let tech = Technology::g10_035();
        let arch = ModMulArchitecture::new(
            Algorithm::Montgomery,
            2,
            8,
            AdderKind::CarrySave,
            DigitMultiplierKind::AndRow,
        )
        .unwrap();
        let eol_small = 8 * (1 << exp_small);
        let eol_big = eol_small * (1 << extra);
        let small = arch.estimate(eol_small, &tech);
        let big = arch.estimate(eol_big, &tech);
        assert!(big.area_um2 > small.area_um2);
        assert!(big.latency_ns > small.latency_ns);
        assert!(big.cycles > small.cycles);
    });
}

#[test]
fn clustering_partitions_all_points() {
    check::run("clustering_partitions_all_points", |g| {
        let lib = arb_library(g);
        let t = g.f64_in(0.05, 0.9);
        let merits = [FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs];
        let space: EvaluationSpace = lib.cores().iter().map(|c| c.eval_point()).collect();
        let clusters = space.cluster(&merits, t);
        let mut seen: Vec<usize> = clusters.into_iter().flatten().collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..space.len()).collect();
        assert_eq!(seen, expect, "clusters must partition the index set");
    });
}

mod session_invariants {
    use super::*;
    use design_space_layer::dse::constraint::ConstraintOutcome;
    use design_space_layer::dse::constraint::{ConsistencyConstraint, Relation};

    /// A space whose constraints interact: deciding in random orders must
    /// never leave the session in a state that violates any constraint.
    fn constrained_space() -> (DesignSpace, CdoId) {
        let mut s = DesignSpace::new("inv");
        let root = s.add_root("Block", "");
        s.add_property(
            root,
            Property::requirement("N", Domain::int_range(1, 100), None, ""),
        )
        .unwrap();
        s.add_property(root, Property::issue("A", Domain::options(["x", "y"]), ""))
            .unwrap();
        s.add_property(root, Property::issue("B", Domain::options(["p", "q"]), ""))
            .unwrap();
        s.add_constraint(
            root,
            ConsistencyConstraint::new(
                "CCa",
                "x with q is inconsistent when N >= 50",
                ["N".to_owned(), "A".to_owned()],
                ["B".to_owned()],
                Relation::InconsistentOptions(Pred::all([
                    Pred::cmp(CmpOp::Ge, Expr::prop("N"), Expr::constant(50)),
                    Pred::is("A", "x"),
                    Pred::is("B", "q"),
                ])),
            ),
        ).unwrap();
        (s, root)
    }

    #[test]
    fn accepted_decisions_always_satisfy_all_constraints() {
        check::run("accepted_decisions_always_satisfy_all_constraints", |g| {
            let n = g.i64_in(1, 100);
            let a = g.usize_in(0, 2);
            let b = g.usize_in(0, 2);
            let (s, root) = constrained_space();
            let mut ses = ExplorationSession::new(&s, root);
            ses.set_requirement("N", Value::Int(n)).unwrap();
            let _ = ses.decide("A", Value::from(["x", "y"][a]));
            let _ = ses.decide("B", Value::from(["p", "q"][b]));
            // Regardless of which decisions were accepted or rejected, the
            // surviving binding set violates nothing.
            for (name, outcome) in ses.diagnostics() {
                assert!(
                    !matches!(outcome, ConstraintOutcome::Violated { .. }),
                    "{name} violated with bindings {:?}",
                    ses.bindings()
                );
            }
            // And the ordering rule held: B decided implies A decided first.
            if ses.decided("B").is_some() {
                assert!(ses.decided("A").is_some() || ses.decided("N").is_some());
            }
        });
    }
}

#[test]
fn dot_renderer_handles_the_full_crypto_layer() {
    use design_space_layer::dse_library::crypto;
    let layer = crypto::build_layer().unwrap();
    let dot = design_space_layer::dse::doc::render_dot(&layer.space);
    assert!(dot.starts_with("digraph"));
    // One node line per CDO plus one edge per non-root node (edge lines
    // may also carry labels, so exclude them explicitly).
    let nodes = dot
        .lines()
        .filter(|l| l.contains("[label=") && !l.contains("->"))
        .count();
    assert_eq!(nodes, layer.space.len());
    let edges = dot.lines().filter(|l| l.contains("->")).count();
    assert_eq!(edges, layer.space.len() - 1); // single root, tree edges
    assert!(dot.contains("ImplementationStyle = Hardware"));
}

#[test]
fn dominance_is_a_strict_partial_order_sample() {
    // Spot-check antisymmetry and irreflexivity on a fixed set.
    let merits = [FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs];
    let points = [
        EvalPoint::new("a")
            .with(FigureOfMerit::AreaUm2, 1.0)
            .with(FigureOfMerit::DelayNs, 9.0),
        EvalPoint::new("b")
            .with(FigureOfMerit::AreaUm2, 9.0)
            .with(FigureOfMerit::DelayNs, 1.0),
        EvalPoint::new("c")
            .with(FigureOfMerit::AreaUm2, 9.0)
            .with(FigureOfMerit::DelayNs, 9.0),
    ];
    for p in &points {
        assert!(!p.dominates(p, &merits), "irreflexive");
    }
    for p in &points {
        for q in &points {
            assert!(
                !(p.dominates(q, &merits) && q.dominates(p, &merits)),
                "antisymmetric"
            );
        }
    }
    assert!(points[0].dominates(&points[2], &merits));
    assert!(points[1].dominates(&points[2], &merits));
}
