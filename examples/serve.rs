//! The exploration daemon: shipped layers as shared snapshots, served
//! over newline-delimited JSON on TCP.
//!
//! ```text
//! cargo run --example serve -- [--addr HOST:PORT] [--journal-dir DIR] \
//!                              [--space FILE.json]... \
//!                              [--max-connections N] [--max-sessions N] \
//!                              [--session-ttl REQUESTS] [--compact-after N] \
//!                              [--read-timeout SECS]
//! ```
//!
//! * `--addr` defaults to `127.0.0.1:0` (an ephemeral port); the bound
//!   address is printed as `listening on HOST:PORT` — scripts parse
//!   that line.
//! * `--journal-dir` enables per-session decision journals and boot
//!   recovery: kill the daemon, start it again on the same directory,
//!   and every session is open again.
//! * `--space` adds a snapshot from a JSON `DesignSpace` file (may be
//!   repeated) next to the shipped crypto/idct/fir layers.
//! * The guard flags tune overload protection (defaults in
//!   `GuardConfig`): connection/session caps answered with `DSL309`,
//!   idle-session TTL eviction in units of requests, journal
//!   compaction threshold, and the idle-connection read timeout
//!   (`--read-timeout 0` disables reaping).
//!
//! Drive it with `cargo run --example dse_client`, a `--pretty` wrapper
//! around the wire protocol, or anything that can write JSON lines to a
//! socket. A `{"op":"shutdown"}` request drains the daemon: no new
//! sessions, in-flight requests answered, then a clean exit.

use std::sync::Arc;

use design_space_layer::dse_server::{EngineBuilder, GuardConfig, Server};
use design_space_layer::techlib::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = "127.0.0.1:0".to_owned();
    let mut journal_dir: Option<String> = None;
    let mut spaces: Vec<String> = Vec::new();
    let mut guard = GuardConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--journal-dir" => journal_dir = Some(value("--journal-dir")?),
            "--space" => spaces.push(value("--space")?),
            "--max-connections" => {
                guard.max_connections = value("--max-connections")?.parse()?;
            }
            "--max-sessions" => guard.max_sessions = value("--max-sessions")?.parse()?,
            "--session-ttl" => {
                guard.session_ttl_requests = Some(value("--session-ttl")?.parse()?);
            }
            "--compact-after" => guard.compact_after = value("--compact-after")?.parse()?,
            "--read-timeout" => {
                let secs: u64 = value("--read-timeout")?.parse()?;
                guard.read_timeout =
                    (secs > 0).then(|| std::time::Duration::from_secs(secs));
            }
            "--help" | "-h" => {
                println!(
                    "usage: serve [--addr HOST:PORT] [--journal-dir DIR] [--space FILE.json]... \
                     [--max-connections N] [--max-sessions N] [--session-ttl REQUESTS] \
                     [--compact-after N] [--read-timeout SECS]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }

    let mut builder = EngineBuilder::new(Technology::g10_035())
        .with_shipped_layers()
        .guard(guard);
    for space in &spaces {
        builder = builder.with_space_file(space);
    }
    if let Some(dir) = &journal_dir {
        builder = builder.journal_dir(dir);
    }
    let engine = Arc::new(builder.build()?);

    eprintln!(
        "snapshots: {} | sessions recovered: {}",
        engine.snapshot_names().join(", "),
        engine.open_sessions(),
    );
    let server = Server::start(engine, addr.as_str())?;
    // The parseable line scripts wait for (stdout, flushed by newline).
    println!("listening on {}", server.local_addr());
    server.run()?;
    eprintln!("drained, bye");
    Ok(())
}
