//! Euclidean division by Knuth's Algorithm D (TAOCP vol. 2, 4.3.1).

use crate::{DoubleLimb, Limb, UBig, LIMB_BITS};

/// Computes `(a / b, a % b)`.
///
/// # Panics
///
/// Panics if `b` is zero.
pub fn div_rem(a: &UBig, b: &UBig) -> (UBig, UBig) {
    assert!(!b.is_zero(), "division by zero");
    if a < b {
        return (UBig::zero(), a.clone());
    }
    if b.limb_len() == 1 {
        return div_rem_by_limb(a, b.limbs()[0]);
    }
    div_rem_knuth(a, b)
}

/// Fast path: divisor fits in one limb.
fn div_rem_by_limb(a: &UBig, d: Limb) -> (UBig, UBig) {
    let mut q = vec![0 as Limb; a.limb_len()];
    let mut rem: DoubleLimb = 0;
    for (i, &limb) in a.limbs().iter().enumerate().rev() {
        let cur = (rem << LIMB_BITS) | limb as DoubleLimb;
        q[i] = (cur / d as DoubleLimb) as Limb;
        rem = cur % d as DoubleLimb;
    }
    (UBig::from_limbs(q), UBig::from(rem as u64))
}

/// Algorithm D for multi-limb divisors.
fn div_rem_knuth(a: &UBig, b: &UBig) -> (UBig, UBig) {
    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = b.limbs().last().expect("non-zero divisor").leading_zeros();
    let u = a.shl(shift);
    let v = b.shl(shift);
    let n = v.limb_len();
    let m = u.limb_len() - n;

    let mut un: Vec<Limb> = u.limbs().to_vec();
    un.push(0); // u has m+n+1 limbs during the loop
    let vn = v.limbs();
    let v_top = vn[n - 1] as DoubleLimb;
    let v_next = vn[n - 2] as DoubleLimb;

    let mut q = vec![0 as Limb; m + 1];

    // D2..D7: main loop over quotient limbs, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate q̂ from the top two limbs of the current remainder.
        let num = ((un[j + n] as DoubleLimb) << LIMB_BITS) | un[j + n - 1] as DoubleLimb;
        let mut qhat = num / v_top;
        let mut rhat = num % v_top;
        while qhat >> LIMB_BITS != 0
            || qhat * v_next > ((rhat << LIMB_BITS) | un[j + n - 2] as DoubleLimb)
        {
            qhat -= 1;
            rhat += v_top;
            if rhat >> LIMB_BITS != 0 {
                break;
            }
        }

        // D4: multiply-and-subtract qhat·v from u[j..j+n+1].
        let mut borrow: i64 = 0;
        let mut carry: DoubleLimb = 0;
        for i in 0..n {
            let p = qhat * vn[i] as DoubleLimb + carry;
            carry = p >> LIMB_BITS;
            let t = un[i + j] as i64 - (p as Limb) as i64 - borrow;
            un[i + j] = t as Limb;
            borrow = i64::from(t < 0);
        }
        let t = un[j + n] as i64 - carry as i64 - borrow;
        un[j + n] = t as Limb;

        if t < 0 {
            // D6: estimate was one too large — add v back once.
            qhat -= 1;
            let mut c: DoubleLimb = 0;
            for i in 0..n {
                let s = un[i + j] as DoubleLimb + vn[i] as DoubleLimb + c;
                un[i + j] = s as Limb;
                c = s >> LIMB_BITS;
            }
            un[j + n] = (un[j + n] as DoubleLimb).wrapping_add(c) as Limb;
        }
        q[j] = qhat as Limb;
    }

    // D8: denormalize the remainder.
    un.truncate(n);
    let rem = UBig::from_limbs(un).shr(shift);
    (UBig::from_limbs(q), rem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divide_by_one_limb() {
        let a = UBig::from_hex("123456789abcdef0123456789abcdef").unwrap();
        let (q, r) = div_rem(&a, &UBig::from(97u64));
        assert_eq!(&(&q * &UBig::from(97u64)) + &r, a);
        assert!(r < UBig::from(97u64));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let a = UBig::from(7u64);
        let b = UBig::power_of_two(100);
        let (q, r) = div_rem(&a, &b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn exact_division() {
        let b = UBig::from_hex("fedcba9876543210fedcba98").unwrap();
        let q_expect = UBig::from_hex("1234567890abcdef").unwrap();
        let a = &b * &q_expect;
        let (q, r) = div_rem(&a, &b);
        assert_eq!(q, q_expect);
        assert!(r.is_zero());
    }

    #[test]
    fn knuth_add_back_case() {
        // A classic add-back trigger: dividend crafted so q̂ overshoots.
        // u = 0x7fff_ffff_8000_0000_0000_0000, v = 0x8000_0000_0000_0001 (32-bit limbs).
        let u = UBig::from_limbs(vec![0, 0, 0x8000_0000, 0x7fff_ffff]);
        let v = UBig::from_limbs(vec![1, 0x8000_0000]);
        let (q, r) = div_rem(&u, &v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = div_rem(&UBig::one(), &UBig::zero());
    }

    #[test]
    fn large_random_style_reconstruction() {
        // Deterministic pseudo-random pattern large enough to exercise
        // multi-limb paths with varying divisor sizes.
        let mut x = UBig::one();
        for i in 1..40u32 {
            x = &(&x * &UBig::from(0x9E3779B9u64)) + &UBig::from(i as u64);
        }
        for dlen in [1u32, 2, 3, 5, 8, 13] {
            let d = x.low_bits(dlen * 31) + UBig::one();
            let (q, r) = div_rem(&x, &d);
            assert_eq!(&(&q * &d) + &r, x, "dlen = {dlen}");
            assert!(r < d);
        }
    }
}
