//! The Section-5 walkthrough as a reusable API: from the requirement
//! values to a selected, functionally verified core.

use bignum::{random_prime, uniform_below, UBig};
use dse::error::DseError;
use dse::estimate::EstimatorRegistry;
use dse::eval::FigureOfMerit;
use dse::robust::{Figure, Provenance, Supervisor};
use dse::value::Value;
use dse_library::{crypto, CoreRecord, Explorer, ReuseLibrary};
use hwmodel::{AdderKind, Algorithm, DigitMultiplierKind, ModMulArchitecture};
use foundation::rng::{SeedableRng, StdRng};
use techlib::Technology;

use crate::engine::HardwareEngine;
use crate::exponentiator::ModExp;
use crate::spec::KocSpec;

/// One recorded exploration step.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkthroughStep {
    /// What was decided/entered.
    pub action: String,
    /// Cores surviving after the step.
    pub surviving: usize,
    /// Delay range (ns) over the survivors.
    pub delay_range_ns: Option<(f64, f64)>,
    /// Area range (µm²) over the survivors.
    pub area_range_um2: Option<(f64, f64)>,
}

/// The full walkthrough outcome.
#[derive(Debug, Clone)]
pub struct WalkthroughReport {
    /// The pruning trace.
    pub steps: Vec<WalkthroughStep>,
    /// Cores meeting the latency requirement after all decisions.
    pub candidates: Vec<CoreRecord>,
    /// The selected core (min area among the candidates), if any.
    pub selected: Option<CoreRecord>,
    /// Whether the selected core was functionally verified against the
    /// `bignum` reference through a simulated exponentiation.
    pub functionally_verified: bool,
    /// Projected modular-exponentiation time for the selection, µs.
    pub modexp_projection_us: Option<f64>,
    /// Provenance-tagged figures from the session's derivations and
    /// supervised estimator runs (CC2's `LatencyCycles`, CC3's
    /// `MaxCombDelayNs`), property name first.
    pub estimates: Vec<(String, Figure)>,
    /// The worst provenance over `estimates` — the report's overall
    /// degradation level ([`Provenance::Exact`] when nothing degraded).
    pub degradation: Provenance,
}

/// Reconstructs the datapath architecture a hardware core record
/// describes (from its design-option bindings).
pub fn architecture_from_core(core: &CoreRecord) -> Option<ModMulArchitecture> {
    let algorithm = match core.binding("Algorithm")?.as_text()? {
        "Montgomery" => Algorithm::Montgomery,
        "Brickell" => Algorithm::Brickell,
        _ => return None,
    };
    let radix = core.binding("Radix")?.as_i64()? as u64;
    let slice_width = core.binding("SliceWidth")?.as_i64()? as u32;
    let adder = match core.binding("AdderStructure")?.as_text()? {
        "ripple-carry" => AdderKind::RippleCarry,
        "carry-look-ahead" => AdderKind::CarryLookAhead,
        "carry-save" => AdderKind::CarrySave,
        _ => return None,
    };
    let multiplier = match core.binding("MultiplierStructure")?.as_text()? {
        "and-row" => DigitMultiplierKind::AndRow,
        "array" => DigitMultiplierKind::Array,
        "mux-table" => DigitMultiplierKind::MuxTable,
        _ => return None,
    };
    ModMulArchitecture::new(algorithm, radix, slice_width, adder, multiplier).ok()
}

/// Runs the Section-5 exploration for `spec` under `tech`.
///
/// The decision sequence mirrors the paper: enter Req1–Req5; software is
/// rejected (CC6 / the Fig. 6 ranges); commit to hardware; commit to the
/// algorithm CC1 admits (Montgomery when the modulus is guaranteed odd,
/// Brickell otherwise); let CC4 force carry-save accumulation; then select
/// the smallest surviving core that meets the latency bound and verify it
/// functionally.
///
/// # Errors
///
/// Propagates layer errors; a spec no core can meet yields an empty
/// candidate list rather than an error.
pub fn run(spec: &KocSpec, tech: &Technology) -> Result<WalkthroughReport, DseError> {
    run_supervised(spec, tech, dse_library::estimators::full_registry(tech.clone()))
}

/// Like [`run`], but estimation tools come from the caller's `registry`
/// (wrapped in a [`Supervisor`]), so a harness can substitute faulty,
/// partial, or instrumented tools. An empty registry still succeeds: the
/// supervisor degrades to each derived property's declared range and tags
/// the figure [`Provenance::Fallback`].
///
/// # Errors
///
/// Propagates layer errors.
pub fn run_supervised(
    spec: &KocSpec,
    tech: &Technology,
    registry: EstimatorRegistry,
) -> Result<WalkthroughReport, DseError> {
    let layer = crypto::build_layer()?;
    // Statically verify the layer before exploring it: a space the
    // analyzer rejects would misbehave mid-session (dead options,
    // derivation cycles), so fail fast with the rendered error list.
    let report = dse::analyze::analyze(&layer.space);
    if report.has_errors() {
        let detail: Vec<String> = report.errors().map(|d| d.to_string()).collect();
        return Err(DseError::SpaceRejected {
            space: layer.space.name().to_owned(),
            detail: detail.join("; "),
        });
    }
    let library = crypto::build_library(tech, spec.eol);
    let supervisor = Supervisor::new(registry);
    run_with_library_supervised(spec, tech, &layer, &library, &supervisor)
}

/// Like [`run`], against a caller-provided layer and library.
///
/// Runs without estimation tools: the supervised-estimation step still
/// executes, but every figure degrades to its declared-range fallback.
///
/// # Errors
///
/// Propagates layer errors.
pub fn run_with_library(
    spec: &KocSpec,
    tech: &Technology,
    layer: &crypto::CryptoLayer,
    library: &ReuseLibrary,
) -> Result<WalkthroughReport, DseError> {
    let supervisor = Supervisor::new(EstimatorRegistry::new());
    run_with_library_supervised(spec, tech, layer, library, &supervisor)
}

/// The full walkthrough against caller-provided layer, library, and
/// supervisor — the most general entry point; the others delegate here.
///
/// # Errors
///
/// Propagates layer errors.
pub fn run_with_library_supervised(
    spec: &KocSpec,
    tech: &Technology,
    layer: &crypto::CryptoLayer,
    library: &ReuseLibrary,
    supervisor: &Supervisor,
) -> Result<WalkthroughReport, DseError> {
    let mut exp = Explorer::new(&layer.space, layer.omm, library);
    let mut steps = Vec::new();
    let mut record = |exp: &Explorer<'_>, action: String| {
        // One pruning pass per step: the columnar store folds both merit
        // ranges straight off the surviving bitset (no evaluation-space
        // materialization), with the two folds fanned out on the
        // foundation pool; the count is a popcount of the same bitset.
        let (delay_range_ns, area_range_um2) = foundation::par::join(
            || exp.merit_range(&FigureOfMerit::DelayNs),
            || exp.merit_range(&FigureOfMerit::AreaUm2),
        );
        steps.push(WalkthroughStep {
            action,
            surviving: exp.surviving_count(),
            delay_range_ns,
            area_range_um2,
        });
    };

    record(&exp, "start".to_owned());
    exp.session
        .set_requirement("EOL", Value::from(spec.eol as i64))?;
    exp.session
        .set_requirement("OperandCoding", Value::from(spec.operand_coding.as_str()))?;
    exp.session
        .set_requirement("ResultCoding", Value::from(spec.result_coding.as_str()))?;
    let odd = if spec.modulo_odd_guaranteed {
        "Guaranteed"
    } else {
        "notGuaranteed"
    };
    exp.session
        .set_requirement("ModuloIsOdd", Value::from(odd))?;
    exp.session
        .set_requirement("MaxLatencyUs", Value::from(spec.max_latency_us))?;
    record(&exp, "requirements entered (Req1–Req5)".to_owned());

    // DI1: the software family is rejected when the spec is tight; the
    // session surfaces that as a CC violation.
    let software_rejected = exp
        .session
        .decide("ImplementationStyle", Value::from("Software"))
        .is_err();
    if software_rejected {
        record(&exp, "software family rejected (CC6)".to_owned());
    }
    exp.session
        .decide("ImplementationStyle", Value::from("Hardware"))?;
    record(&exp, "ImplementationStyle = Hardware".to_owned());

    let algorithm = if spec.modulo_odd_guaranteed {
        "Montgomery"
    } else {
        "Brickell"
    };
    exp.session.decide("Algorithm", Value::from(algorithm))?;
    record(&exp, format!("Algorithm = {algorithm}"));

    if algorithm == "Montgomery" && spec.eol >= 32 {
        // CC4 leaves only carry-save accumulation.
        exp.session
            .decide("AdderStructure", Value::from("carry-save"))?;
        record(
            &exp,
            "AdderStructure = carry-save (forced by CC4)".to_owned(),
        );
    }

    exp.session
        .decide("LayoutStyle", Value::from(tech.layout().to_string()))?;
    exp.session
        .decide("FabricationTechnology", Value::from(tech.node().name()))?;
    record(&exp, format!("technology committed ({tech})"));

    // DI7: commit the behavioural decomposition so CC3's estimator
    // context becomes ready, then run the tools under supervision and
    // absorb what the quantitative relations already derived. Figures
    // carry provenance: `Estimated` when a tool answered, `Fallback`
    // when the supervisor had to fall back to the declared range.
    exp.session
        .decide("BehavioralDecomposition", Value::from("use-default"))?;
    let mut estimates = exp.session.absorb_derived();
    estimates.extend(exp.session.run_estimators(supervisor));
    let degradation = estimates
        .iter()
        .map(|(_, f)| f.provenance)
        .max()
        .unwrap_or(Provenance::Exact);
    record(
        &exp,
        format!(
            "supervised estimation ({} figure(s), worst provenance: {})",
            estimates.len(),
            degradation.label()
        ),
    );

    // Requirement check over the survivors.
    let candidates: Vec<CoreRecord> = exp
        .cores_meeting(&FigureOfMerit::TimeUs, spec.max_latency_us)
        .into_iter()
        .cloned()
        .collect();
    let selected = candidates
        .iter()
        .min_by(|a, b| {
            let ka = a.merit_value(&FigureOfMerit::AreaUm2).unwrap_or(f64::MAX);
            let kb = b.merit_value(&FigureOfMerit::AreaUm2).unwrap_or(f64::MAX);
            ka.total_cmp(&kb)
        })
        .cloned();

    // Functional verification of the selection on a scaled-down modulus
    // (full-width simulation is exact but slow; the datapath logic is
    // identical at any width multiple of the slice).
    let mut functionally_verified = false;
    let mut modexp_projection_us = None;
    if let Some(core) = &selected {
        if let Some(arch) = architecture_from_core(core) {
            let clock = core
                .merit_value(&FigureOfMerit::ClockNs)
                .unwrap_or_else(|| arch.estimate(spec.eol, tech).clock_ns);
            let mut rng = StdRng::seed_from_u64(0x5EC5);
            let m = random_prime(2 * arch.slice_width().min(32), &mut rng);
            let base = uniform_below(&m, &mut rng);
            let e = uniform_below(&UBig::power_of_two(24), &mut rng);
            let mut coproc = ModExp::new(HardwareEngine::new(arch, clock));
            if let Ok(got) = coproc.mod_pow(&base, &e, &m) {
                functionally_verified = got == base.mod_pow(&e, &m);
            }
            let latency_us = core.merit_value(&FigureOfMerit::TimeUs).unwrap_or(f64::MAX);
            modexp_projection_us = Some(spec.modexp_time_us(latency_us));
        }
    }

    Ok(WalkthroughReport {
        steps,
        candidates,
        selected,
        functionally_verified,
        modexp_projection_us,
        estimates,
        degradation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_selects_a_csa_montgomery_core() {
        let report = run(&KocSpec::paper(), &Technology::g10_035()).unwrap();
        assert!(!report.candidates.is_empty(), "spec is satisfiable");
        let core = report.selected.expect("a core is selected");
        assert_eq!(core.binding("Algorithm"), Some(&Value::from("Montgomery")));
        assert_eq!(
            core.binding("AdderStructure"),
            Some(&Value::from("carry-save"))
        );
        assert!(
            report.functionally_verified,
            "selection must simulate correctly"
        );
        assert!(report.modexp_projection_us.unwrap() > 0.0);
        // Pruning is monotone: each step leaves at most as many cores.
        for w in report.steps.windows(2) {
            assert!(w[1].surviving <= w[0].surviving, "{w:?}");
        }
    }

    #[test]
    fn even_modulus_spec_falls_back_to_brickell() {
        let spec = KocSpec {
            modulo_odd_guaranteed: false,
            max_latency_us: 20.0,
            ..KocSpec::paper()
        };
        let report = run(&spec, &Technology::g10_035()).unwrap();
        let core = report.selected.expect("brickell candidates exist");
        assert_eq!(core.binding("Algorithm"), Some(&Value::from("Brickell")));
        assert!(report.functionally_verified);
    }

    #[test]
    fn impossible_spec_yields_no_candidates() {
        let spec = KocSpec {
            max_latency_us: 0.0001,
            ..KocSpec::paper()
        };
        let report = run(&spec, &Technology::g10_035()).unwrap();
        assert!(report.candidates.is_empty());
        assert!(report.selected.is_none());
        assert!(!report.functionally_verified);
    }

    #[test]
    fn supervised_estimates_carry_provenance() {
        let report = run(&KocSpec::paper(), &Technology::g10_035()).unwrap();
        let (_, delay) = report
            .estimates
            .iter()
            .find(|(n, _)| n == "MaxCombDelayNs")
            .expect("CC3 produced a delay figure");
        assert_eq!(delay.provenance, Provenance::Estimated);
        assert!(delay.value.unwrap() > 0.0);
        assert_eq!(delay.source, "BehaviorDelayEstimator");
        // The tool answered, so nothing in the report degraded further.
        assert!(report.degradation <= Provenance::Estimated);
    }

    #[test]
    fn missing_tools_degrade_to_declared_range_not_failure() {
        let tech = Technology::g10_035();
        let spec = KocSpec::paper();
        let layer = crypto::build_layer().unwrap();
        let library = crypto::build_library(&tech, spec.eol);
        // `run_with_library` supervises an *empty* registry: the unknown
        // tool must degrade to the declared range, never fail the run.
        let report = run_with_library(&spec, &tech, &layer, &library).unwrap();
        let (_, delay) = report
            .estimates
            .iter()
            .find(|(n, _)| n == "MaxCombDelayNs")
            .expect("the fallback still yields a figure");
        assert_eq!(delay.provenance, Provenance::Fallback);
        assert!(delay.source.contains("declared-range"));
        assert_eq!(report.degradation, Provenance::Fallback);
        assert!(report.selected.is_some(), "the exploration itself is unharmed");
    }

    #[test]
    fn architecture_roundtrips_through_core_records() {
        let lib = crypto::build_library(&Technology::g10_035(), 768);
        let core = lib.find("#2_64").unwrap();
        let arch = architecture_from_core(core).unwrap();
        assert_eq!(arch.algorithm(), Algorithm::Montgomery);
        assert_eq!(arch.radix(), 2);
        assert_eq!(arch.slice_width(), 64);
        assert_eq!(arch.adder(), AdderKind::CarrySave);
        // Software cores do not describe a datapath.
        let sw = lib.find("CIHS ASM").unwrap();
        assert!(architecture_from_core(sw).is_none());
    }
}
