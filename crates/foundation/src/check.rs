//! A small seeded property-testing harness — the workspace's replacement
//! for `proptest`.
//!
//! Each test runs a fixed number of generated cases (default 256), each
//! from a seed derived deterministically from the test name and case
//! index, so failures reproduce across runs and machines. On failure the
//! harness prints the case's seed; re-run the single failing case with
//! `DSE_CHECK_SEED=<seed>`. `DSE_CHECK_CASES=<n>` overrides the case
//! count globally.
//!
//! ```
//! use foundation::check;
//!
//! check::run("addition commutes", |g| {
//!     let (a, b) = (g.u32() as u64, g.u32() as u64);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, Rng, SeedableRng, StdRng};

/// The default number of cases per property.
pub const DEFAULT_CASES: u32 = 256;

/// A source of generated test inputs for one case.
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// A generator seeded for one case.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying PRNG, for draws the helpers don't cover.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// A uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.gen()
    }

    /// A uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// A uniform `i64`.
    pub fn i64(&mut self) -> i64 {
        self.rng.gen()
    }

    /// A uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.rng.gen()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.gen()
    }

    /// A uniform `usize` in `[lo, hi)` (half-open, like proptest's `lo..hi`).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.gen_range(lo..hi)
    }

    /// A uniform `i64` in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..hi)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// A vector of uniform `u32` limbs with length in `[0, max_len)`.
    pub fn vec_u32(&mut self, max_len: usize) -> Vec<u32> {
        let len = self.usize_in(0, max_len);
        (0..len).map(|_| self.u32()).collect()
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "choose from empty slice");
        &options[self.usize_in(0, options.len())]
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| {
        v.strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).ok())
            .unwrap_or_else(|| v.parse().ok())
    })
}

/// The configured case count (`DSE_CHECK_CASES` or [`DEFAULT_CASES`]).
pub fn cases() -> u32 {
    env_u64("DSE_CHECK_CASES").map_or(DEFAULT_CASES, |n| n.max(1) as u32)
}

/// Runs `property` over [`cases`] generated inputs.
///
/// The property signals failure by panicking (plain `assert!` works); the
/// harness reports the failing case's replay seed and re-raises.
pub fn run<F: FnMut(&mut Gen)>(name: &str, property: F) {
    run_n(name, cases(), property);
}

/// [`run`] with an explicit case count (still overridable via
/// `DSE_CHECK_CASES`).
pub fn run_n<F: FnMut(&mut Gen)>(name: &str, n: u32, mut property: F) {
    let n = env_u64("DSE_CHECK_CASES").map_or(n, |v| v.max(1) as u32);
    if let Some(seed) = env_u64("DSE_CHECK_SEED") {
        eprintln!("[check] {name}: replaying single case with seed {seed:#x}");
        property(&mut Gen::new(seed));
        return;
    }
    // Per-test base seed: deterministic in the test name, so adding cases
    // to one property never reshuffles another's inputs.
    let mut h = 0xD5Eu64;
    for b in name.bytes() {
        h = splitmix64(&mut h) ^ u64::from(b);
    }
    for case in 0..n {
        let mut state = h ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seed = splitmix64(&mut state);
        let mut g = Gen::new(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut g))) {
            eprintln!(
                "[check] property {name:?} failed on case {case}/{n} \
                 (seed {seed:#x}); replay with DSE_CHECK_SEED={seed:#x}"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_a_true_property() {
        run_n("and commutes", 64, |g| {
            let (a, b) = (g.bool(), g.bool());
            assert_eq!(a && b, b && a);
        });
    }

    #[test]
    fn reports_seed_and_repanics_on_failure() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_n("always fails", 8, |_| panic!("expected failure"));
        }));
        assert!(outcome.is_err());
    }

    #[test]
    fn generated_inputs_are_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            run_n("determinism probe", 16, |g| seen.push(g.u64()));
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn helpers_respect_bounds() {
        run_n("bounds", 128, |g| {
            assert!(g.usize_in(3, 9) < 9);
            assert!(g.i64_in(-4, 4) < 4);
            let v = g.vec_u32(6);
            assert!(v.len() < 6);
            assert!(["a", "b"].contains(g.choose(&["a", "b"])));
        });
    }
}
