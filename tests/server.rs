//! The exploration daemon under load and under fire: parallel sessions
//! against a single-threaded oracle, a thousand concurrently open
//! journaled sessions, kill-and-recover with torn and corrupt journals,
//! a seeded malformed-request fuzz, and a real TCP conversation with
//! graceful drain.

use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use design_space_layer::dse_server::{Engine, EngineBuilder, Server};
use design_space_layer::foundation::json::Json;
use design_space_layer::foundation::net;
use design_space_layer::foundation::rng::{Rng, SeedableRng, StdRng};
use design_space_layer::techlib::Technology;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dse-server-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(journal: Option<&PathBuf>) -> Engine {
    let mut b = EngineBuilder::new(Technology::g10_035()).with_shipped_layers();
    if let Some(dir) = journal {
        b = b.journal_dir(dir);
    }
    b.build().expect("engine builds")
}

fn ok(response: &str) -> Json {
    let json = Json::parse(response).expect("response is JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected ok response, got: {response}"
    );
    json
}

/// The per-session conversation, deterministic in the session index:
/// every session explores the same shared crypto snapshot but takes a
/// different route through it.
fn script(id: &str, i: usize) -> Vec<String> {
    let eol = [32, 64, 256, 768][i % 4];
    let latency = [4.0, 8.0, 16.0][i % 3];
    let mut lines = vec![
        format!(r#"{{"op":"open","session":"{id}","snapshot":"crypto"}}"#),
        format!(r#"{{"op":"decide","session":"{id}","name":"EOL","value":{eol}}}"#),
        format!(r#"{{"op":"decide","session":"{id}","name":"MaxLatencyUs","value":{latency}}}"#),
        format!(r#"{{"op":"decide","session":"{id}","name":"ModuloIsOdd","value":"Guaranteed"}}"#),
        format!(r#"{{"op":"decide","session":"{id}","name":"ImplementationStyle","value":"Hardware"}}"#),
    ];
    lines.push(format!(
        r#"{{"op":"decide","session":"{id}","name":"Algorithm","value":"Montgomery"}}"#
    ));
    if i.is_multiple_of(3) {
        // Decide, retract (journals the undo), decide again.
        lines.push(format!(r#"{{"op":"retract","session":"{id}"}}"#));
        lines.push(format!(
            r#"{{"op":"decide","session":"{id}","name":"Algorithm","value":"Montgomery"}}"#
        ));
    }
    if i.is_multiple_of(2) {
        lines.push(format!(r#"{{"op":"eval","session":"{id}"}}"#));
    }
    lines.push(format!(
        r#"{{"op":"surviving_cores","session":"{id}","limit":4}}"#
    ));
    lines
}

fn report_of(engine: &Engine, id: &str) -> String {
    let response = engine.handle_line(&format!(r#"{{"op":"report","session":"{id}"}}"#));
    ok(&response);
    response
}

#[test]
fn parallel_sessions_are_bit_identical_to_sequential_oracle() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 8;
    let dir = temp_dir("oracle");
    let shared = engine(Some(&dir));

    // Drive all sessions from N threads, interleaving ops round-robin so
    // the engine sees concurrent cross-session traffic mid-session.
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = &shared;
            scope.spawn(move || {
                let ids: Vec<(String, usize)> = (0..PER_THREAD)
                    .map(|k| (format!("p{t}-{k}"), t * PER_THREAD + k))
                    .collect();
                let scripts: Vec<Vec<String>> =
                    ids.iter().map(|(id, i)| script(id, *i)).collect();
                let rounds = scripts.iter().map(Vec::len).max().unwrap_or(0);
                for round in 0..rounds {
                    for script in &scripts {
                        if let Some(line) = script.get(round) {
                            ok(&shared.handle_line(line));
                        }
                    }
                }
            });
        }
    });

    // The oracle: a fresh engine, no journal, every script run
    // sequentially. Reports must match byte for byte.
    let oracle = engine(None);
    for t in 0..THREADS {
        for k in 0..PER_THREAD {
            let (id, i) = (format!("p{t}-{k}"), t * PER_THREAD + k);
            for line in script(&id, i) {
                ok(&oracle.handle_line(&line));
            }
            assert_eq!(
                report_of(&shared, &id),
                report_of(&oracle, &id),
                "session {id} diverged from the sequential oracle"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn thousand_journaled_sessions_survive_a_kill() {
    const SESSIONS: usize = 1000;
    let dir = temp_dir("thousand");
    let first = engine(Some(&dir));

    // Open them all with interleaved traffic: handle_batch fans the
    // distinct sessions out across the worker pool.
    let mut lines = Vec::new();
    for i in 0..SESSIONS {
        lines.extend(script(&format!("k{i:04}"), i));
    }
    for response in first.handle_batch(&lines) {
        ok(&response);
    }
    assert_eq!(first.open_sessions(), SESSIONS);

    // Remember a sample of reports, then kill the daemon (drop without
    // closing a single session).
    let sample: Vec<(String, String)> = (0..SESSIONS)
        .step_by(97)
        .map(|i| {
            let id = format!("k{i:04}");
            let report = report_of(&first, &id);
            (id, report)
        })
        .collect();
    drop(first);

    // Next boot recovers every session from its journal.
    let second = engine(Some(&dir));
    assert_eq!(second.open_sessions(), SESSIONS);
    let stats = ok(&second.handle_line(r#"{"op":"stats"}"#));
    assert_eq!(
        stats.get("sessions_recovered").and_then(Json::as_i64),
        Some(SESSIONS as i64)
    );
    assert_eq!(
        stats
            .get("boot_warnings")
            .and_then(|w| w.as_array())
            .map(<[Json]>::len),
        Some(0)
    );
    for (id, before) in &sample {
        assert_eq!(&report_of(&second, id), before, "session {id} changed across the kill");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_recovery_tolerates_torn_tails_and_rejects_corruption() {
    let dir = temp_dir("torn");
    let first = engine(Some(&dir));
    for id in ["good", "torn", "corrupt"] {
        for line in script(id, 1) {
            ok(&first.handle_line(&line));
        }
    }
    let pristine_good = report_of(&first, "good");
    let pristine_torn = report_of(&first, "torn");
    drop(first); // kill: no close, journals stay

    // A crash mid-append tears the final record of one journal...
    let torn_path = dir.join("torn.jsonl");
    let mut text = std::fs::read_to_string(&torn_path).unwrap();
    text.push_str(r#"{"Decide":{"name":"AdderSt"#); // no newline, half a record
    std::fs::write(&torn_path, &text).unwrap();
    // ...and bit-rot corrupts the *body* of another.
    let corrupt_path = dir.join("corrupt.jsonl");
    let body = std::fs::read_to_string(&corrupt_path).unwrap();
    let corrupted: Vec<&str> = body.lines().collect();
    let mut rewritten: Vec<String> = corrupted.iter().map(|l| (*l).to_owned()).collect();
    rewritten[1] = "{\"Decide\":garbage}".to_owned();
    std::fs::write(&corrupt_path, rewritten.join("\n") + "\n").unwrap();

    let second = engine(Some(&dir));
    // good and torn come back; corrupt is refused with a boot warning.
    assert_eq!(second.open_sessions(), 2);
    assert_eq!(report_of(&second, "good"), pristine_good);
    assert_eq!(report_of(&second, "torn"), pristine_torn);
    let stats = ok(&second.handle_line(r#"{"op":"stats"}"#));
    let warnings = stats.get("boot_warnings").and_then(|w| w.as_array()).unwrap();
    assert_eq!(warnings.len(), 1);
    assert!(warnings[0].as_str().unwrap().contains("corrupt"));

    // Attaching to the torn session surfaces the DSL201 diagnostic once,
    // and the session keeps exploring.
    let attach = ok(&second.handle_line(r#"{"op":"open","session":"torn","resume":true}"#));
    assert_eq!(attach.get("recovered").and_then(Json::as_bool), Some(true));
    let notes = attach.get("diagnostics").and_then(|d| d.as_array()).unwrap();
    assert!(
        notes.iter().any(|n| n.as_str().unwrap().contains("DSL201")),
        "torn tail should surface DSL201, got {notes:?}"
    );
    ok(&second.handle_line(
        r#"{"op":"decide","session":"torn","name":"AdderStructure","value":"carry-save"}"#,
    ));

    // The corrupt session errors with a stable journal-fault code.
    let refused = Json::parse(
        &second.handle_line(r#"{"op":"open","session":"corrupt","resume":true}"#),
    )
    .unwrap();
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(refused.get("code").and_then(Json::as_str), Some("DSL307"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_malformed_request_fuzz_never_panics_the_daemon() {
    let shared = engine(None);
    ok(&shared.handle_line(r#"{"op":"open","session":"fuzz","snapshot":"crypto"}"#));

    let mut rng = StdRng::seed_from_u64(0xD5E_5E17);
    let fragments = [
        "{", "}", "[", "]", ":", ",", "\"op\"", "\"open\"", "\"decide\"", "\"session\"",
        "\"fuzz\"", "\"snapshot\"", "\"crypto\"", "\"name\"", "\"EOL\"", "\"value\"", "768",
        "8.0", "true", "null", "\\", "\u{1}", "é", "\"id\"",
    ];
    for round in 0..2000 {
        let line = match round % 4 {
            // Pure grammar soup.
            0 => {
                let n = (rng.next_u64() % 12) as usize + 1;
                (0..n)
                    .map(|_| fragments[(rng.next_u64() as usize) % fragments.len()])
                    .collect::<String>()
            }
            // Valid JSON, hostile shapes.
            1 => {
                let shapes = [
                    r#"{"op":null}"#,
                    r#"{"op":42}"#,
                    r#"{"op":"decide"}"#,
                    r#"{"op":"decide","session":"fuzz","name":"EOL","value":[1,2]}"#,
                    r#"{"op":"decide","session":"fuzz","name":"EOL","value":{"Nope":1}}"#,
                    r#"{"op":"open","session":"../../etc/passwd","snapshot":"crypto"}"#,
                    r#"{"op":"open","session":".hidden","snapshot":"crypto"}"#,
                    r#"{"op":"surviving_cores","session":"fuzz","limit":-3}"#,
                    r#"{"op":"retract","session":"fuzz","name":"NeverDecided"}"#,
                    r#"{"op":"eval","session":"ghost"}"#,
                    r#"{"op":"open","session":"fuzz","snapshot":"crypto"}"#,
                    r#"{"op":"close","session":"ghost"}"#,
                ];
                shapes[(rng.next_u64() as usize) % shapes.len()].to_owned()
            }
            // Truncated valid requests.
            2 => {
                let full = r#"{"op":"decide","session":"fuzz","name":"EOL","value":768}"#;
                let cut = (rng.next_u64() as usize) % full.len();
                full[..cut].to_owned()
            }
            // Byte soup (kept UTF-8 by construction).
            _ => {
                let n = (rng.next_u64() % 40) as usize;
                (0..n)
                    .map(|_| char::from((rng.next_u64() % 94 + 32) as u8))
                    .collect()
            }
        };
        let response = shared.handle_line(&line);
        let json = Json::parse(&response)
            .unwrap_or_else(|e| panic!("non-JSON response {response:?} to {line:?}: {e}"));
        assert!(
            json.get("ok").and_then(Json::as_bool).is_some(),
            "response missing ok field: {response}"
        );
    }
    // The daemon is still alive and the fuzz session still works.
    ok(&shared.handle_line(r#"{"op":"decide","session":"fuzz","name":"EOL","value":768}"#));
    ok(&shared.handle_line(r#"{"op":"report","session":"fuzz"}"#));

    // Draining refuses new sessions with the stable DSL308 code but
    // still answers everything else.
    shared.begin_drain();
    let refused = Json::parse(
        &shared.handle_line(r#"{"op":"open","session":"late","snapshot":"crypto"}"#),
    )
    .unwrap();
    assert_eq!(refused.get("code").and_then(Json::as_str), Some("DSL308"));
    ok(&shared.handle_line(r#"{"op":"report","session":"fuzz"}"#));
}

#[test]
fn tcp_conversation_pipelines_and_drains_gracefully() {
    let server = Server::start(Arc::new(engine(None)), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let serve_thread = std::thread::spawn(move || server.run());

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Pipeline the whole conversation in one write: responses must come
    // back in request order, matched by id.
    let lines: Vec<String> = (1..=6)
        .map(|id| match id {
            1 => r#"{"op":"open","session":"t","snapshot":"crypto","id":1}"#.to_owned(),
            2 => r#"{"op":"decide","session":"t","name":"EOL","value":768,"id":2}"#.to_owned(),
            3 => r#"{"op":"open","snapshot":"fir","id":3}"#.to_owned(),
            4 => r#"{"op":"report","session":"t","id":4}"#.to_owned(),
            5 => r#"{"op":"close","session":"t","id":5}"#.to_owned(),
            6 => r#"{"op":"shutdown","id":6}"#.to_owned(),
            _ => unreachable!(),
        })
        .collect();
    net::write_line(&mut writer, &lines.join("\n")).unwrap();
    for expect_id in 1..=6i64 {
        let response = net::read_line_bounded(&mut reader, net::MAX_WIRE_BYTES)
            .expect("read")
            .expect("response before EOF");
        let json = ok(&response);
        assert_eq!(json.get("id").and_then(Json::as_i64), Some(expect_id));
    }
    // Drain: the daemon stops accepting and run() returns cleanly.
    serve_thread.join().unwrap().expect("clean drain");
}

/// The `viable` op: a propagation-solver lookahead over a session's
/// remaining freedom. The solver stays in lock-step with
/// decide/retract, and existing op responses are unchanged by its
/// presence.
#[test]
fn viable_op_tracks_decides_and_retracts() {
    let engine = engine(None);
    ok(&engine.handle_line(r#"{"op":"open","session":"v","snapshot":"crypto"}"#));

    let viable = |name: &str| {
        let response =
            engine.handle_line(&format!(r#"{{"op":"viable","session":"v","name":"{name}"}}"#));
        let json = ok(&response);
        json.get("viable").cloned().expect("viable field")
    };
    let options_of = |v: &Json| -> Vec<String> {
        v.get("options")
            .and_then(Json::as_array)
            .expect("options array")
            .iter()
            .map(|o| o.as_str().unwrap().to_owned())
            .collect()
    };

    // Fresh session: both implementation styles are still on the table.
    let v = viable("ImplementationStyle");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("values"));
    let opts = options_of(&v);
    assert!(opts.contains(&"Hardware".to_owned()), "{opts:?}");
    assert!(opts.contains(&"Software".to_owned()), "{opts:?}");

    // Decide through the solver's lock-step path (the slot exists now).
    for line in [
        r#"{"op":"decide","session":"v","name":"EOL","value":768}"#,
        r#"{"op":"decide","session":"v","name":"MaxLatencyUs","value":8.0}"#,
        r#"{"op":"decide","session":"v","name":"ModuloIsOdd","value":"Guaranteed"}"#,
    ] {
        ok(&engine.handle_line(line));
    }
    let v = viable("ImplementationStyle");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("values"));

    // A retract keeps the solver synchronized rather than rebuilding.
    ok(&engine.handle_line(r#"{"op":"retract","session":"v"}"#));
    let v = viable("ModuloIsOdd");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("values"));

    // Unknown properties are open (the solver refuses to guess), and
    // unknown sessions still fail with the stable code.
    let v = viable("NoSuchProperty");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("open"));
    let bad = Json::parse(
        &engine.handle_line(r#"{"op":"viable","session":"ghost","name":"EOL"}"#),
    )
    .unwrap();
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(bad.get("code").and_then(Json::as_str), Some("DSL304"));
}

/// Pagination at the wire-cap boundary: a library whose full survivor
/// listing would blow past the 1 MiB `foundation::net` line cap must
/// come back clipped (`truncated`) yet frameable, and paging with
/// `offset` must reassemble the exact full listing.
#[test]
fn surviving_cores_pages_never_exceed_the_line_cap() {
    use design_space_layer::dse::prelude::*;
    use design_space_layer::dse_library::{CoreRecord, ReuseLibrary};

    // ~2 900 cores × ~600-byte names ≈ 1.7 MiB of names: over the cap.
    let mut space = DesignSpace::new("cap-boundary");
    let root = space.add_root("CapBoundary", "");
    space
        .add_property(
            root,
            Property::issue("Flavor", Domain::options(["a", "b"]), ""),
        )
        .unwrap();
    let mut library = ReuseLibrary::new("fat-names");
    let filler = "x".repeat(580);
    for i in 0..2_900 {
        library.push(
            CoreRecord::new(format!("core-{i:05}-{filler}"), "t", "")
                .bind("Flavor", if i % 2 == 0 { "a" } else { "b" }),
        );
    }
    let engine = EngineBuilder::new(Technology::g10_035())
        .with_snapshot("cap", space, root, library)
        .build()
        .expect("engine builds");
    ok(&engine.handle_line(r#"{"op":"open","session":"cap","snapshot":"cap"}"#));

    // Ask for everything in one page: the reply must clip at the byte
    // budget, stay under the line cap, and say so.
    let line = engine
        .handle_line(r#"{"op":"surviving_cores","session":"cap","limit":1000000}"#);
    assert!(
        line.len() < 1024 * 1024,
        "oversized response: {} bytes",
        line.len()
    );
    let full = ok(&line);
    assert_eq!(full.get("count").and_then(Json::as_i64), Some(2_900));
    assert_eq!(full.get("truncated").and_then(Json::as_bool), Some(true));
    let returned = full.get("returned").and_then(Json::as_i64).unwrap();
    assert!(returned > 0 && returned < 2_900, "returned {returned}");

    // Page through with offset/limit and reassemble the full listing.
    let mut collected: Vec<String> = Vec::new();
    let mut offset = 0usize;
    loop {
        let line = engine.handle_line(&format!(
            r#"{{"op":"surviving_cores","session":"cap","limit":500,"offset":{offset}}}"#
        ));
        assert!(line.len() < 1024 * 1024);
        let page = ok(&line);
        assert_eq!(page.get("count").and_then(Json::as_i64), Some(2_900));
        assert_eq!(page.get("offset").and_then(Json::as_i64), Some(offset as i64));
        let names: Vec<String> = page
            .get("cores")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|n| n.as_str().unwrap().to_owned())
            .collect();
        if names.is_empty() {
            break;
        }
        offset += names.len();
        collected.extend(names);
    }
    assert_eq!(collected.len(), 2_900);
    assert!(collected.windows(2).all(|w| w[0] < w[1]), "stable order");

    // A decision halves the set; pagination tracks the pruned total.
    ok(&engine.handle_line(r#"{"op":"decide","session":"cap","name":"Flavor","value":"a"}"#));
    let pruned = ok(&engine.handle_line(
        r#"{"op":"surviving_cores","session":"cap","limit":10,"offset":1445}"#,
    ));
    assert_eq!(pruned.get("count").and_then(Json::as_i64), Some(1_450));
    assert_eq!(pruned.get("returned").and_then(Json::as_i64), Some(5));
}
