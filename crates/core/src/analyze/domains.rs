//! Domain (abstract-interval) checks — DSL005 / DSL006 / DSL008 / DSL009.
//!
//! These passes enumerate the finitely enumerable domains a predicate
//! touches and evaluate the predicate over every combination. A
//! constraint that fires on *every* combination is a contradiction; a
//! design-issue option for which *no* combination survives is dead; a
//! spawned child CDO whose inherited option bindings leave no surviving
//! combination is unreachable.
//!
//! Soundness: a constraint is only analyzed when every property it
//! references is either fixed by the region's inherited bindings or has
//! an enumerable domain (`Enumeration`, `Flag`, `PowersOfTwo`, or an
//! integer range no wider than [`MAX_INT_RANGE_SPAN`]), and the joint
//! combination count stays below [`MAX_COMBINATIONS`]. Anything else is
//! skipped, never guessed at — so these checks produce no false errors
//! on spaces with open-ended requirement domains.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::constraint::Relation;
use crate::diag::{DiagCode, Diagnostic, Span};
use crate::expr::{Bindings, Pred};
use crate::hierarchy::{CdoId, DesignSpace};
use crate::property::PropertyKind;
use crate::value::{Domain, Value};

/// Combination-count cap for exhaustive predicate enumeration.
pub(crate) const MAX_COMBINATIONS: usize = 4096;

/// Widest integer range the analyzer will enumerate.
pub(crate) const MAX_INT_RANGE_SPAN: i64 = 64;

/// Smallest joint combination count worth memoizing. Below this the
/// enumeration is cheaper than building the memo key, so the sequential
/// path stays fast; above it, sibling subtrees whose *relevant* region
/// bindings coincide share one verdict instead of re-enumerating.
const MEMO_MIN_COMBINATIONS: usize = 16;

/// Cross-CDO memo for the exhaustive elimination sweeps, shared by the
/// per-CDO parallel fan-out (interior mutability, `Sync`).
///
/// The key is exact, not a hash: the rendered predicates, the
/// enumeration axes, and the fixed bindings *projected onto the names
/// the predicates reference*. Projection is what makes the memo fire
/// across subtrees — a deeper CDO whose extra inherited options are
/// irrelevant to the constraint set reuses the ancestor's verdict
/// ("skip unchanged subtrees"). Entries are only consulted for joint
/// enumerations of at least [`MEMO_MIN_COMBINATIONS`] combinations.
pub(crate) struct ElimMemo {
    verdicts: Mutex<HashMap<String, (usize, usize)>>,
}

impl ElimMemo {
    pub(crate) fn new() -> ElimMemo {
        ElimMemo {
            verdicts: Mutex::new(HashMap::new()),
        }
    }

    /// `(firing, total)` over the joint enumeration, memoized when the
    /// combination count clears the threshold.
    fn count_firing(
        &self,
        preds: &[(&str, &Pred)],
        axes: &[(String, Vec<Value>)],
        fixed: &Bindings,
    ) -> (usize, usize) {
        let combos = Combos::total(axes).unwrap_or(0);
        if combos < MEMO_MIN_COMBINATIONS {
            return count_firing_direct(preds, axes, fixed);
        }
        let key = memo_key(preds, axes, fixed);
        if let Some(&v) = self.verdicts.lock().unwrap().get(&key) {
            return v;
        }
        let v = count_firing_direct(preds, axes, fixed);
        self.verdicts.lock().unwrap().insert(key, v);
        v
    }

    /// Whether any combination survives every predicate. Short-circuits
    /// below the memo threshold; shares `(firing, total)` entries with
    /// the contradiction counter above it.
    fn survives(
        &self,
        preds: &[(&str, &Pred)],
        axes: &[(String, Vec<Value>)],
        fixed: &Bindings,
    ) -> bool {
        if axes.is_empty() {
            // The region fixes every reference: a single combination,
            // evaluated in place without cloning the bindings.
            return !eliminated(preds, fixed);
        }
        if Combos::total(axes).unwrap_or(0) < MEMO_MIN_COMBINATIONS {
            return Combos::new(axes, fixed).any(|b| !eliminated(preds, &b));
        }
        let (firing, total) = self.count_firing(preds, axes, fixed);
        firing < total
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.verdicts.lock().unwrap().len()
    }
}

/// Counts combinations on which any predicate in the set fires.
fn count_firing_direct(
    preds: &[(&str, &Pred)],
    axes: &[(String, Vec<Value>)],
    fixed: &Bindings,
) -> (usize, usize) {
    if axes.is_empty() {
        return (usize::from(eliminated(preds, fixed)), 1);
    }
    let mut firing = 0usize;
    let mut total = 0usize;
    for b in Combos::new(axes, fixed) {
        total += 1;
        if eliminated(preds, &b) {
            firing += 1;
        }
    }
    (firing, total)
}

/// The exact memo key: predicates (rendered), axes, and the projection
/// of `fixed` onto the predicate reference sets.
fn memo_key(preds: &[(&str, &Pred)], axes: &[(String, Vec<Value>)], fixed: &Bindings) -> String {
    let mut key = String::new();
    for (_, p) in preds {
        let _ = write!(key, "{p}\u{1}");
    }
    key.push('\u{2}');
    for (name, values) in axes {
        let _ = write!(key, "{name}=");
        for v in values {
            let _ = write!(key, "{v},");
        }
        key.push('\u{1}');
    }
    key.push('\u{2}');
    // Only the referenced fixed bindings can influence the verdict.
    let mut relevant: Vec<String> = preds.iter().flat_map(|(_, p)| p.references()).collect();
    relevant.sort_unstable();
    relevant.dedup();
    for name in relevant {
        if let Some(v) = fixed.get(&name) {
            let _ = write!(key, "{name}={v}\u{1}");
        }
    }
    key
}

/// The finitely enumerable values of a domain, from the analyzer's point
/// of view (adds small integer ranges to `Domain::enumerate`).
fn enumerable(domain: &Domain) -> Option<Vec<Value>> {
    if let Some(vs) = domain.enumerate() {
        return Some(vs);
    }
    if let Domain::IntRange { min, max } = domain {
        let span = max.checked_sub(*min)?;
        if (0..=MAX_INT_RANGE_SPAN).contains(&span) {
            return Some((*min..=*max).map(Value::Int).collect());
        }
    }
    None
}

/// An odometer over `axes`, yielding each joint assignment merged over
/// `fixed`.
struct Combos<'a> {
    axes: &'a [(String, Vec<Value>)],
    idx: Vec<usize>,
    fixed: &'a Bindings,
    done: bool,
}

impl<'a> Combos<'a> {
    fn new(axes: &'a [(String, Vec<Value>)], fixed: &'a Bindings) -> Combos<'a> {
        Combos {
            axes,
            idx: vec![0; axes.len()],
            fixed,
            done: false,
        }
    }

    fn total(axes: &[(String, Vec<Value>)]) -> Option<usize> {
        axes.iter()
            .try_fold(1usize, |acc, (_, vs)| acc.checked_mul(vs.len()))
    }
}

impl Iterator for Combos<'_> {
    type Item = Bindings;

    fn next(&mut self) -> Option<Bindings> {
        if self.done {
            return None;
        }
        let mut b = self.fixed.clone();
        for (i, (name, vs)) in self.axes.iter().enumerate() {
            b.insert(name.clone(), vs[self.idx[i]].clone());
        }
        // Advance the odometer.
        self.done = true;
        for (i, (_, vs)) in self.axes.iter().enumerate() {
            self.idx[i] += 1;
            if self.idx[i] < vs.len() {
                self.done = false;
                break;
            }
            self.idx[i] = 0;
        }
        Some(b)
    }
}

/// Builds the enumeration axes for `refs` as seen from `anchor`, minus
/// the names already fixed. Returns `None` when any unfixed reference has
/// an unknown or non-enumerable domain, or the joint count exceeds the
/// cap — the caller must skip the check.
fn axes_for(
    space: &DesignSpace,
    anchor: CdoId,
    refs: impl IntoIterator<Item = String>,
    fixed: &Bindings,
) -> Option<Vec<(String, Vec<Value>)>> {
    let mut axes: Vec<(String, Vec<Value>)> = Vec::new();
    for r in refs {
        if fixed.contains_key(&r) || axes.iter().any(|(n, _)| *n == r) {
            continue;
        }
        let domain = super::domain_at(space, anchor, &r)?;
        axes.push((r, enumerable(domain)?));
    }
    if Combos::total(&axes)? > MAX_COMBINATIONS {
        return None;
    }
    Some(axes)
}

/// The region bindings at `id`: every `(issue, option)` accumulated along
/// the spawned-by chain.
fn region_bindings(space: &DesignSpace, id: CdoId) -> Bindings {
    space.inherited_bindings(id).into_iter().collect()
}

/// Whether any constraint in `preds` fires (eliminates) under `b`.
fn eliminated(preds: &[(&str, &Pred)], b: &Bindings) -> bool {
    preds.iter().any(|(_, p)| p.eval(b) == Ok(true))
}

// ---------------------------------------------------------------------
// DSL005 (contradiction) and DSL009 (dominance pre-pass hint).
// ---------------------------------------------------------------------

pub(crate) fn contradictions_node(
    space: &DesignSpace,
    id: CdoId,
    memo: &ElimMemo,
    out: &mut Vec<Diagnostic>,
) {
    let node = space.node(id);
    if node.own_constraints().is_empty() {
        return;
    }
    let fixed = region_bindings(space, id);
    for c in node.own_constraints() {
        let Some(pred) = super::constraint_pred(c) else {
            continue;
        };
        let Some(axes) = axes_for(space, id, pred.references(), &fixed) else {
            continue;
        };
        let (firing, total) = memo.count_firing(&[(c.name(), pred)], &axes, &fixed);
        if total == 0 {
            continue;
        }
        let span = Span::at(space.path_string(id)).constraint(c.name());
        if firing == total {
            out.push(Diagnostic::new(
                DiagCode::Contradiction,
                span,
                format!(
                    "every one of the {total} combinations of its enumerable options violates this constraint"
                ),
            ));
        } else if firing > 0 && matches!(c.relation(), Relation::Dominance(_)) {
            out.push(Diagnostic::new(
                DiagCode::DominanceHint,
                span,
                format!(
                    "{firing} of {total} option combinations are statically dominated and can be pre-eliminated"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// DSL006: dead design-issue options.
// ---------------------------------------------------------------------

pub(crate) fn dead_options_node(
    space: &DesignSpace,
    id: CdoId,
    memo: &ElimMemo,
    out: &mut Vec<Diagnostic>,
) {
    let node = space.node(id);
    if !node.own_properties().iter().any(|p| {
        matches!(
            p.kind(),
            PropertyKind::DesignIssue | PropertyKind::GeneralizedIssue
        )
    }) {
        return;
    }
    let fixed = region_bindings(space, id);
    for prop in node.own_properties() {
        if !matches!(
            prop.kind(),
            PropertyKind::DesignIssue | PropertyKind::GeneralizedIssue
        ) {
            continue;
        }
        let Some(options) = enumerable(prop.domain()) else {
            continue;
        };
        // Constraints that can eliminate combinations involving this
        // issue: every pred-relation constraint effective at `id`
        // that references the issue and whose other references are
        // all enumerable or fixed.
        let effective = space.effective_constraints(id);
        // One `references()` walk per predicate, reused for both the
        // applicability filter and the joint axis set.
        let with_refs: Vec<(&str, &Pred, Vec<String>)> = effective
            .iter()
            .filter_map(|(_, c)| super::constraint_pred(c).map(|p| (c.name(), p, p.references())))
            .filter(|(_, _, refs)| refs.iter().any(|r| r == prop.name()))
            .collect();
        if with_refs.is_empty() {
            continue;
        }
        let applicable: Vec<(&str, &Pred)> = with_refs.iter().map(|&(n, p, _)| (n, p)).collect();
        let joint_refs: Vec<String> = with_refs
            .iter()
            .flat_map(|(_, _, refs)| refs.iter())
            .filter(|r| *r != prop.name())
            .cloned()
            .collect();
        let Some(axes) = axes_for(space, id, joint_refs, &fixed) else {
            continue;
        };
        for option in &options {
            let mut fixed_opt = fixed.clone();
            fixed_opt.insert(prop.name().to_owned(), option.clone());
            if !memo.survives(&applicable, &axes, &fixed_opt) {
                let names: Vec<&str> = applicable.iter().map(|(n, _)| *n).collect();
                out.push(Diagnostic::new(
                    DiagCode::DeadOption,
                    Span::at(space.path_string(id)).property(prop.name()),
                    format!(
                        "option {option} of {:?} is dead: every combination is eliminated (constraints {})",
                        prop.name(),
                        names.join(", ")
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// DSL008: unreachable spawned children (option statically eliminated).
// ---------------------------------------------------------------------

pub(crate) fn unreachable_node(
    space: &DesignSpace,
    id: CdoId,
    memo: &ElimMemo,
    out: &mut Vec<Diagnostic>,
) {
    let node = space.node(id);
    let Some((issue, option)) = node.spawned_by() else {
        return;
    };
    let fixed = region_bindings(space, id);
    let effective = space.effective_constraints(id);
    // Retain every pred constraint whose references the region can
    // enumerate; constraints touching open domains are dropped
    // (fewer eliminations can only under-report unreachability). One
    // `references()` walk per predicate, reused for the axis set.
    let with_refs: Vec<(&str, &Pred, Vec<String>)> = effective
        .iter()
        .filter_map(|(_, c)| super::constraint_pred(c).map(|p| (c.name(), p, p.references())))
        .filter(|(_, _, refs)| {
            refs.iter().all(|r| {
                fixed.contains_key(r)
                    || super::domain_at(space, id, r)
                        .map(|d| enumerable(d).is_some())
                        .unwrap_or(false)
            })
        })
        .collect();
    if with_refs.is_empty() {
        return;
    }
    let preds: Vec<(&str, &Pred)> = with_refs.iter().map(|&(n, p, _)| (n, p)).collect();
    let joint_refs: Vec<String> = with_refs
        .iter()
        .flat_map(|(_, _, refs)| refs.iter())
        .cloned()
        .collect();
    let Some(axes) = axes_for(space, id, joint_refs, &fixed) else {
        return;
    };
    if !memo.survives(&preds, &axes, &fixed) {
        let names: Vec<&str> = preds.iter().map(|(n, _)| *n).collect();
        out.push(Diagnostic::new(
            DiagCode::UnreachableChild,
            Span::at(space.path_string(id)).property(issue),
            format!(
                "unreachable: spawning option {issue} = {option} is statically eliminated (constraints {})",
                names.join(", ")
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::constraint::ConsistencyConstraint;
    use crate::property::Property;

    fn issue_space() -> (DesignSpace, CdoId) {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        s.add_property(
            root,
            Property::issue("Mode", Domain::options(["x", "y"]), ""),
        )
        .unwrap();
        (s, root)
    }

    fn cc(name: &str, pred: Pred) -> ConsistencyConstraint {
        let refs = pred.references();
        ConsistencyConstraint::new(name, "", refs, [], Relation::InconsistentOptions(pred))
    }

    #[test]
    fn contradiction_when_every_combination_fires() {
        let (mut s, root) = issue_space();
        s.add_constraint(
            root,
            cc(
                "CCdead",
                Pred::any([Pred::is("Style", "A"), Pred::is_not("Style", "A")]),
            ),
        )
        .unwrap();
        let r = analyze(&s);
        assert!(r
            .errors()
            .any(|d| d.code == DiagCode::Contradiction && d.span.constraint.as_deref() == Some("CCdead")));
    }

    #[test]
    fn near_miss_partial_elimination_is_not_a_contradiction() {
        let (mut s, root) = issue_space();
        s.add_constraint(root, cc("CCok", Pred::is("Style", "A")))
            .unwrap();
        let r = analyze(&s);
        assert!(!r.diagnostics().iter().any(|d| d.code == DiagCode::Contradiction));
    }

    #[test]
    fn dead_option_when_all_combinations_eliminate_it() {
        let (mut s, root) = issue_space();
        // Style = B is inconsistent with both Mode options → B is dead.
        s.add_constraint(
            root,
            cc(
                "CCb",
                Pred::all([Pred::is("Style", "B"), Pred::any([
                    Pred::is("Mode", "x"),
                    Pred::is("Mode", "y"),
                ])]),
            ),
        )
        .unwrap();
        let r = analyze(&s);
        let dead: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::DeadOption)
            .collect();
        assert_eq!(dead.len(), 1, "{r}");
        assert!(dead[0].message.contains("option B"));
    }

    #[test]
    fn near_miss_option_with_an_escape_is_alive() {
        let (mut s, root) = issue_space();
        // Style = B only clashes with Mode = x; Mode = y rescues it.
        s.add_constraint(
            root,
            cc("CCb", Pred::all([Pred::is("Style", "B"), Pred::is("Mode", "x")])),
        )
        .unwrap();
        let r = analyze(&s);
        assert!(!r.diagnostics().iter().any(|d| d.code == DiagCode::DeadOption), "{r}");
    }

    #[test]
    fn unreachable_child_of_an_eliminated_option() {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::generalized_issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        s.specialize(root, "Style").unwrap();
        s.add_constraint(root, cc("CCkill", Pred::is("Style", "B"))).unwrap();
        let r = analyze(&s);
        let hit: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::UnreachableChild)
            .collect();
        assert_eq!(hit.len(), 1, "{r}");
        assert!(hit[0].span.path.ends_with(".B"));
    }

    #[test]
    fn open_domains_are_skipped_not_guessed() {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::requirement("EOL", Domain::int_range(8, 4096), None, ""),
        )
        .unwrap();
        s.add_property(
            root,
            Property::issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        // References a 4089-value range: the analyzer must skip, not err.
        s.add_constraint(
            root,
            cc(
                "CCwide",
                Pred::all([
                    Pred::is("Style", "A"),
                    Pred::cmp(
                        crate::expr::CmpOp::Ge,
                        crate::expr::Expr::prop("EOL"),
                        crate::expr::Expr::constant(0),
                    ),
                ]),
            ),
        )
        .unwrap();
        let r = analyze(&s);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn small_int_ranges_are_enumerated() {
        assert_eq!(
            enumerable(&Domain::int_range(1, 3)),
            Some(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(enumerable(&Domain::int_range(0, MAX_INT_RANGE_SPAN + 1)), None);
        assert_eq!(enumerable(&Domain::real_up_to(5.0)), None);
        assert_eq!(enumerable(&Domain::int_range(i64::MIN, i64::MAX)), None);
    }

    #[test]
    fn elimination_memo_shares_verdicts_across_regions() {
        // The predicate references only "A"/"B"/"C", so regions whose
        // fixed bindings differ only in irrelevant names must project to
        // the same key and share one memoized verdict.
        let pred = Pred::all([
            Pred::is("A", "a0"),
            Pred::is("B", "b0"),
            Pred::is("C", "c0"),
        ]);
        let preds = [("CC", &pred)];
        let axes: Vec<(String, Vec<Value>)> = ["A", "B"]
            .iter()
            .map(|n| {
                let vs = (0..4)
                    .map(|i| Value::from(format!("{}{i}", n.to_lowercase())))
                    .collect();
                (n.to_string(), vs)
            })
            .collect();
        let memo = ElimMemo::new();
        let mut region1 = Bindings::new();
        region1.insert("C", Value::from("c0"));
        region1.insert("Irrelevant", Value::Int(1));
        let mut region2 = Bindings::new();
        region2.insert("C", Value::from("c0"));
        region2.insert("Irrelevant", Value::Int(2));
        assert_eq!(memo.count_firing(&preds, &axes, &region1), (1, 16));
        assert_eq!(memo.count_firing(&preds, &axes, &region2), (1, 16));
        assert_eq!(memo.len(), 1, "projected keys must coincide");
        assert!(memo.survives(&preds, &axes, &region1));
        // A *relevant* fixed binding changes the verdict and the key.
        let mut region3 = Bindings::new();
        region3.insert("C", Value::from("c1"));
        assert_eq!(memo.count_firing(&preds, &axes, &region3), (0, 16));
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn combination_cap_bounds_the_search() {
        let axes: Vec<(String, Vec<Value>)> = (0..4)
            .map(|i| {
                (
                    format!("p{i}"),
                    (0..9).map(Value::Int).collect::<Vec<_>>(),
                )
            })
            .collect();
        assert_eq!(Combos::total(&axes), Some(6561));
        let fixed = Bindings::new();
        assert_eq!(Combos::new(&axes, &fixed).count(), 6561);
    }
}
