//! Figs. 8/11: the requirement and design-issue listings of the OMM,
//! OMM-H and OMM-HM classes of design objects.

use dse_library::crypto;

use crate::fmt;

/// Renders the per-CDO property listings.
pub fn render() -> String {
    let layer = crypto::build_layer().expect("layer builds");
    let mut out = String::new();
    for (title, cdo) in [
        ("Fig. 8 — Operator-Modular-Multiplier (OMM)", layer.omm),
        ("Fig. 11 — OMM-Hardware (OMM-H)", layer.omm_hw),
        ("Fig. 11 — OMM-Hardware-Montgomery (OMM-HM)", layer.omm_hm),
    ] {
        out.push_str(&format!("{title}\n\n"));
        let rows: Vec<Vec<String>> = layer
            .space
            .node(cdo)
            .own_properties()
            .iter()
            .map(|p| {
                vec![
                    p.name().to_owned(),
                    p.kind().to_string(),
                    p.domain().to_string(),
                    p.default().map(|d| d.to_string()).unwrap_or_default(),
                    p.doc().to_owned(),
                ]
            })
            .collect();
        out.push_str(&fmt::table(
            &["property", "kind", "SetOfValues", "default", "doc"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listings_contain_the_papers_properties() {
        let s = render();
        for name in [
            "EOL",
            "OperandCoding",
            "ResultCoding",
            "ModuloIsOdd",
            "MaxLatencyUs",
            "ImplementationStyle",
            "LayoutStyle",
            "FabricationTechnology",
            "Radix",
            "NumberOfSlices",
            "BehavioralDecomposition",
            "Algorithm",
            "AdderStructure",
        ] {
            assert!(s.contains(name), "{name}");
        }
        assert!(s.contains("generalized design issue"));
        assert!(s.contains("{Guaranteed, notGuaranteed}"));
    }
}
