//! End-to-end estimation flow (CC3): a session reaches the point where an
//! estimation context fires, the registry runs the tool, and the produced
//! metric is consistent with the detailed structural models.

use design_space_layer::dse::estimate::EstimatorRegistry;
use design_space_layer::dse::prelude::*;
use design_space_layer::dse_library::crypto;
use design_space_layer::dse_library::estimators::{BehaviorDelayEstimator, SoftwareTimeEstimator};
use design_space_layer::hwmodel::behavior::montgomery_iteration;
use design_space_layer::techlib::Technology;

fn registry() -> EstimatorRegistry {
    let mut reg = EstimatorRegistry::new();
    reg.register(Box::new(BehaviorDelayEstimator::new(Technology::g10_035())));
    reg.register(Box::new(SoftwareTimeEstimator));
    reg
}

#[test]
fn cc3_context_fires_and_runs_through_the_registry() {
    let layer = crypto::build_layer().unwrap();
    let mut ses = ExplorationSession::new(&layer.space, layer.omm);
    ses.set_requirement("EOL", Value::from(768)).unwrap();
    ses.set_requirement("MaxLatencyUs", Value::from(8.0))
        .unwrap();
    ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
        .unwrap();
    ses.decide("ImplementationStyle", Value::from("Hardware"))
        .unwrap();
    ses.decide("Algorithm", Value::from("Montgomery")).unwrap();

    // CC3 is not ready until the behavioural decomposition is selected.
    assert!(ses.ready_estimators().is_empty());
    ses.decide(
        "BehavioralDecomposition",
        Value::from("select-per-operator"),
    )
    .unwrap();
    let ready = ses.ready_estimators();
    assert_eq!(ready.len(), 1);
    let (tool, output) = &ready[0];
    assert_eq!(tool, "BehaviorDelayEstimator");
    assert_eq!(output, "MaxCombDelayNs");

    let value = registry().run(tool, ses.bindings()).unwrap();
    assert!(value > 0.0);

    // The estimate equals the structural behavioural model directly.
    let direct = montgomery_iteration(768, 1).max_combinational_delay_ns(&Technology::g10_035());
    assert!((value - direct).abs() < 1e-9);
}

#[test]
fn estimator_ranking_matches_the_librarys_measured_ordering() {
    // CC3's purpose: rank algorithmic alternatives *before* detailed data
    // exists. The ranking must agree with what the detailed models later
    // measure (Fig. 9's Montgomery-over-Brickell verdict).
    let reg = registry();
    let mut bindings = dse::expr::Bindings::new();
    bindings.insert("EOL".to_owned(), Value::from(768));
    bindings.insert("Algorithm".to_owned(), Value::from("Montgomery"));
    let mont = reg.run("BehaviorDelayEstimator", &bindings).unwrap();
    bindings.insert("Algorithm".to_owned(), Value::from("Brickell"));
    let brick = reg.run("BehaviorDelayEstimator", &bindings).unwrap();
    assert!(
        mont < brick,
        "estimator: montgomery {mont} < brickell {brick}"
    );
}

#[test]
fn software_estimator_agrees_with_library_merits() {
    let lib = crypto::build_library(&Technology::g10_035(), 768);
    let reg = registry();
    for (variant, lang) in [("CIOS", "C"), ("CIHS", "ASM"), ("FIPS", "C")] {
        let core = lib.find(&format!("{variant} {lang}")).unwrap();
        let recorded = core
            .merit_value(&FigureOfMerit::TimeUs)
            .expect("software cores record TimeUs");
        let mut b = dse::expr::Bindings::new();
        b.insert("EOL".to_owned(), Value::from(768));
        b.insert("Variant".to_owned(), Value::from(variant));
        b.insert("Language".to_owned(), Value::from(lang));
        let estimated = reg.run("SoftwareTimeEstimator", &b).unwrap();
        assert!(
            (estimated - recorded).abs() < 1e-9,
            "{variant} {lang}: {estimated} vs {recorded}"
        );
    }
}
