//! Area / timing / power estimation for [`ModMulArchitecture`]s.
//!
//! The model is structural: it counts the registers, adder rows, digit
//! multipliers and control logic a digit-serial modular multiplier is made
//! of, prices them with the [`techlib`] cell models, and takes the
//! critical path through the iteration logic as the clock period. The
//! absolute figures are calibrated to land in the ranges of the paper's
//! Table 1; the experiments rely on the orderings and trends, which follow
//! from the structure itself.

use techlib::{power, CellKind, Technology};

use crate::adder::AdderKind;
use crate::design::{Algorithm, ArchitectureError, ModMulArchitecture};
/// Interconnect/routing overhead applied on top of raw cell area.
const WIRING_FACTOR: f64 = 1.4;
/// Global controller cost in gate equivalents.
const CONTROL_GE: f64 = 150.0;
/// Per-slice control overhead in gate equivalents.
const CONTROL_PER_SLICE_GE: f64 = 12.0;
/// Extra accumulator guard bits beyond the slice width.
const GUARD_BITS: u32 = 4;
/// Clock penalty per slice for broadcasting the digit/quotient (τ).
const BROADCAST_TAU_PER_SLICE: f64 = 0.04;
/// Average switching activity assumed by the power estimate.
const ACTIVITY: f64 = 0.25;

/// The estimation result for one architecture at one operand length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwEstimate {
    /// Total silicon area in µm² (cells × wiring overhead).
    pub area_um2: f64,
    /// Total logic in gate equivalents (before wiring overhead).
    pub area_ge: f64,
    /// Clock period in ns.
    pub clock_ns: f64,
    /// Latency of one modular multiplication in cycles.
    pub cycles: u64,
    /// Latency of one modular multiplication in ns.
    pub latency_ns: f64,
    /// Average dynamic power in mW at the estimated clock rate.
    pub power_mw: f64,
}

impl HwEstimate {
    /// Clock frequency in MHz.
    pub fn clock_mhz(&self) -> f64 {
        1000.0 / self.clock_ns
    }

    /// Energy per modular multiplication in nJ.
    pub fn energy_per_op_nj(&self) -> f64 {
        power::energy_per_op_nj(self.power_mw, self.cycles, self.clock_mhz())
    }
}

/// Where the silicon goes: the estimate's gate-equivalent budget broken
/// down by function — the transparency the layer's "self-documented"
/// claim demands of its estimation tools.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Operand/accumulator registers (incl. the redundant carry register
    /// of carry-save designs), GE.
    pub registers_ge: f64,
    /// Accumulation adder rows (CSA rows, CPA, comparator/select), GE.
    pub adders_ge: f64,
    /// Digit-multiplier structures, GE.
    pub multipliers_ge: f64,
    /// Quotient-digit logic (Montgomery only), GE.
    pub quotient_ge: f64,
    /// Control FSM and per-slice control, GE.
    pub control_ge: f64,
    /// Inter-slice boundary registers, GE.
    pub boundary_ge: f64,
}

impl AreaBreakdown {
    /// Total logic in gate equivalents.
    pub fn total_ge(&self) -> f64 {
        self.registers_ge
            + self.adders_ge
            + self.multipliers_ge
            + self.quotient_ge
            + self.control_ge
            + self.boundary_ge
    }
}

/// Computes the per-function area budget of `arch` for `eol`-bit operands.
///
/// # Errors
///
/// Returns an error if `eol` is not a positive multiple of the slice width.
pub fn breakdown(
    arch: &ModMulArchitecture,
    eol: u32,
    tech: &Technology,
) -> Result<AreaBreakdown, ArchitectureError> {
    let slices = arch.num_slices(eol)?;
    Ok(breakdown_for_slices(arch, slices, tech))
}

fn breakdown_for_slices(
    arch: &ModMulArchitecture,
    slices: u32,
    tech: &Technology,
) -> AreaBreakdown {
    let per = slice_breakdown(arch, tech);
    let dff = tech.cell_model(CellKind::Dff).area_ge;
    let n = slices as f64;
    AreaBreakdown {
        registers_ge: per.registers_ge * n,
        adders_ge: per.adders_ge * n,
        multipliers_ge: per.multipliers_ge * n,
        quotient_ge: per.quotient_ge * n,
        control_ge: CONTROL_GE + CONTROL_PER_SLICE_GE * n,
        boundary_ge: (slices.saturating_sub(1)) as f64 * 6.0 * dff,
    }
}

/// Estimates `arch` for `eol`-bit operands under `tech`.
///
/// # Errors
///
/// Returns an error if `eol` is not a positive multiple of the slice width.
pub fn estimate(
    arch: &ModMulArchitecture,
    eol: u32,
    tech: &Technology,
) -> Result<HwEstimate, ArchitectureError> {
    let slices = arch.num_slices(eol)?;
    let cycles = arch.cycles(eol)?;
    let area_ge = breakdown_for_slices(arch, slices, tech).total_ge();
    let clock_ns = clock_ns(arch, slices, tech);
    let latency_ns = cycles as f64 * clock_ns;
    let area_um2 = tech.ge_to_um2(area_ge) * WIRING_FACTOR;
    let power_mw = power::dynamic_power_mw(tech, area_ge, 1000.0 / clock_ns, ACTIVITY);
    Ok(HwEstimate {
        area_um2,
        area_ge,
        clock_ns,
        cycles,
        latency_ns,
        power_mw,
    })
}

/// Gate-equivalent budget of one slice, by function.
fn slice_breakdown(arch: &ModMulArchitecture, tech: &Technology) -> AreaBreakdown {
    let w = arch.slice_width();
    let k = arch.digit_bits();
    let dff = tech.cell_model(CellKind::Dff).area_ge;
    let xor = tech.cell_model(CellKind::Xor2).area_ge;
    let mux2 = tech.cell_model(CellKind::Mux2).area_ge;
    let fa = tech.cell_model(CellKind::FullAdder).area_ge;

    // Operand and accumulator registers.
    let acc_bits = (w + GUARD_BITS) as f64;
    let mut regs = acc_bits + 2.0 * w as f64; // R, B, M
    if arch.adder() == AdderKind::CarrySave {
        regs += acc_bits; // redundant carry register
    }
    let registers_ge = regs * dff;

    // Adder rows along the accumulation path.
    let adders_ge = match (arch.algorithm(), arch.adder()) {
        (Algorithm::Montgomery, AdderKind::CarrySave) => {
            2.0 * AdderKind::CarrySave.area_ge(w, tech)
        }
        (Algorithm::Montgomery, cpa) => {
            AdderKind::CarrySave.area_ge(w, tech) + cpa.area_ge(w, tech)
        }
        (Algorithm::Brickell, AdderKind::CarrySave) => {
            // shift-add row, subtract row, comparator, select muxes
            2.0 * AdderKind::CarrySave.area_ge(w, tech) + w as f64 * (xor + mux2)
        }
        (Algorithm::Brickell, cpa) => {
            AdderKind::CarrySave.area_ge(w, tech) + cpa.area_ge(w, tech) + w as f64 * (xor + mux2)
        }
    };

    // Digit multipliers: Montgomery needs aᵢ·B and qᵢ·M; Brickell only aᵢ·B.
    let mult = arch.multiplier().area_ge(k, w, tech);
    let multipliers_ge = match arch.algorithm() {
        Algorithm::Montgomery => 2.0 * mult,
        Algorithm::Brickell => mult,
    };

    // Quotient-digit logic (Montgomery): a k×k multiplier mod 2ᵏ plus a
    // short resolver adder over the low redundant bits.
    let quotient_ge = if arch.algorithm() == Algorithm::Montgomery {
        (k * k) as f64 * 5.0 + 2.0 * k as f64 * fa
    } else {
        0.0
    };

    AreaBreakdown {
        registers_ge,
        adders_ge,
        multipliers_ge,
        quotient_ge,
        control_ge: 0.0,
        boundary_ge: 0.0,
    }
}

/// Clock period in ns: the critical path through one iteration.
fn clock_ns(arch: &ModMulArchitecture, slices: u32, tech: &Technology) -> f64 {
    let w = arch.slice_width();
    let k = arch.digit_bits();
    let xor = tech.cell_model(CellKind::Xor2).delay_tau;
    let mux2 = tech.cell_model(CellKind::Mux2).delay_tau;
    let fa_sum = tech.cell_model(CellKind::FullAdder).delay_tau;
    let fa_carry = tech.cell_model(CellKind::FullAdder).carry_delay_tau;

    let mult = arch.multiplier().delay_tau(k, tech);
    let csa_row = fa_sum;

    let mut tau = match (arch.algorithm(), arch.adder()) {
        (Algorithm::Montgomery, AdderKind::CarrySave) => {
            // aᵢ·B mult → CSA row → quotient logic → qᵢ·M CSA row.
            mult + csa_row + quotient_delay_tau(k, xor, fa_carry) + csa_row
        }
        (Algorithm::Montgomery, cpa) => {
            mult + csa_row + quotient_delay_tau(k, xor, fa_carry) + cpa.delay_tau(w, tech)
        }
        (Algorithm::Brickell, AdderKind::CarrySave) => {
            // shift-add CSA, subtract CSA, sign/magnitude estimate, select.
            mult + 2.0 * csa_row + 4.0 + mux2
        }
        (Algorithm::Brickell, cpa) => mult + cpa.delay_tau(w, tech) + 4.0 + mux2,
    };

    // Broadcasting the digit and quotient to every slice loads the drivers.
    tau += BROADCAST_TAU_PER_SLICE * slices as f64;
    tech.tau_to_ns(tau)
}

/// Delay of the quotient-digit computation in τ.
///
/// Radix 2 with an odd modulus has `m' = 1`, so the quotient bit is just
/// the parity of the partial sum (an XOR of the redundant pair's LSBs).
/// Higher radices need a k×k multiply mod 2ᵏ and a short resolver.
fn quotient_delay_tau(k: u32, xor: f64, fa_carry: f64) -> f64 {
    if k == 1 {
        xor
    } else {
        xor + 2.0 * (k - 1) as f64 * fa_carry * 0.5 + (k - 1) as f64
    }
}

foundation::impl_json_struct!(HwEstimate { area_um2, area_ge, clock_ns, cycles, latency_ns, power_mw });
foundation::impl_json_struct!(AreaBreakdown {
    registers_ge,
    adders_ge,
    multipliers_ge,
    quotient_ge,
    control_ge,
    boundary_ge,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::paper_designs;
    use crate::multiplier::DigitMultiplierKind;

    fn tech() -> Technology {
        Technology::g10_035()
    }

    fn arch(
        alg: Algorithm,
        radix: u64,
        w: u32,
        adder: AdderKind,
        mult: DigitMultiplierKind,
    ) -> ModMulArchitecture {
        ModMulArchitecture::new(alg, radix, w, adder, mult).unwrap()
    }

    #[test]
    fn csa_clock_is_flat_cla_clock_grows() {
        // The paper's Table 1 headline shape.
        let t = tech();
        let clk = |adder, w| {
            arch(
                Algorithm::Montgomery,
                2,
                w,
                adder,
                DigitMultiplierKind::AndRow,
            )
            .estimate(w, &t)
            .clock_ns
        };
        let csa8 = clk(AdderKind::CarrySave, 8);
        let csa128 = clk(AdderKind::CarrySave, 128);
        let cla8 = clk(AdderKind::CarryLookAhead, 8);
        let cla128 = clk(AdderKind::CarryLookAhead, 128);
        assert!(
            csa128 < 1.2 * csa8,
            "CSA clock nearly flat: {csa8} → {csa128}"
        );
        assert!(cla128 > 1.4 * cla8, "CLA clock grows: {cla8} → {cla128}");
        assert!(cla128 > 1.8 * csa128, "CSA beats CLA at width");
    }

    #[test]
    fn clock_magnitudes_match_table1_ranges() {
        // Paper Table 1: clocks between ~2.3 and ~10.2 ns in 0.35 µm.
        let t = tech();
        for d in paper_designs() {
            for w in [8u32, 16, 32, 64, 128] {
                let a = d.architecture(w).unwrap();
                let e = a.estimate(w, &t);
                assert!(
                    e.clock_ns > 1.5 && e.clock_ns < 12.0,
                    "{} w{w}: clk {}",
                    d.name(),
                    e.clock_ns
                );
            }
        }
    }

    #[test]
    fn area_magnitudes_match_table1_ranges() {
        // Paper Table 1: 64-bit slices between ~34k and ~96k µm².
        let t = tech();
        for d in paper_designs() {
            let a = d.architecture(64).unwrap();
            let e = a.estimate(64, &t);
            assert!(
                e.area_um2 > 15_000.0 && e.area_um2 < 130_000.0,
                "{}: area {}",
                d.name(),
                e.area_um2
            );
        }
    }

    #[test]
    fn montgomery_dominates_brickell() {
        // Fig. 9: at equal configuration Montgomery wins on delay.
        let t = tech();
        let mont = arch(
            Algorithm::Montgomery,
            2,
            64,
            AdderKind::CarrySave,
            DigitMultiplierKind::AndRow,
        );
        let brick = arch(
            Algorithm::Brickell,
            2,
            64,
            AdderKind::CarrySave,
            DigitMultiplierKind::AndRow,
        );
        let em = mont.estimate(768, &t);
        let eb = brick.estimate(768, &t);
        assert!(eb.latency_ns > 1.2 * em.latency_ns, "Brickell slower");
        let ratio = eb.latency_ns / em.latency_ns;
        assert!(ratio < 2.5, "but not absurdly so: {ratio}");
    }

    #[test]
    fn radix4_roughly_halves_latency_at_some_clock_cost() {
        let t = tech();
        let r2 = arch(
            Algorithm::Montgomery,
            2,
            64,
            AdderKind::CarrySave,
            DigitMultiplierKind::AndRow,
        )
        .estimate(768, &t);
        let r4 = arch(
            Algorithm::Montgomery,
            4,
            64,
            AdderKind::CarrySave,
            DigitMultiplierKind::Array,
        )
        .estimate(768, &t);
        assert!(r4.cycles < r2.cycles / 2 + 20);
        assert!(r4.clock_ns > r2.clock_ns, "radix-4 stretches the clock");
        assert!(r4.latency_ns < r2.latency_ns, "but still wins overall");
    }

    #[test]
    fn mux_multiplier_is_faster_than_array() {
        let t = tech();
        let mul = arch(
            Algorithm::Montgomery,
            4,
            16,
            AdderKind::CarrySave,
            DigitMultiplierKind::Array,
        )
        .estimate(1024, &t);
        let mux = arch(
            Algorithm::Montgomery,
            4,
            16,
            AdderKind::CarrySave,
            DigitMultiplierKind::MuxTable,
        )
        .estimate(1024, &t);
        assert!(mux.clock_ns < mul.clock_ns);
    }

    #[test]
    fn fig6_hardware_delays_are_microseconds() {
        // Paper Fig. 6: 1024-bit modmul on the best hardware ≈ 2–4.5 µs.
        let t = tech();
        let d5 = paper_designs()[4].architecture(16).unwrap();
        let e = d5.estimate(1024, &t);
        let us = e.latency_ns / 1000.0;
        assert!(us > 0.8 && us < 5.0, "#5_16: {us} µs");
    }

    #[test]
    fn derived_quantities_are_consistent() {
        let t = tech();
        let a = arch(
            Algorithm::Montgomery,
            2,
            32,
            AdderKind::CarrySave,
            DigitMultiplierKind::AndRow,
        );
        let e = a.estimate(256, &t);
        assert!((e.latency_ns - e.cycles as f64 * e.clock_ns).abs() < 1e-6);
        assert!((e.clock_mhz() - 1000.0 / e.clock_ns).abs() < 1e-9);
        assert!(e.energy_per_op_nj() > 0.0);
        assert!(
            e.area_um2 > tech().ge_to_um2(e.area_ge),
            "wiring overhead applied"
        );
    }

    #[test]
    fn breakdown_sums_to_the_estimate() {
        let t = tech();
        for d in paper_designs() {
            let a = d.architecture(64).unwrap();
            let b = breakdown(&a, 768, &t).unwrap();
            let e = a.estimate(768, &t);
            assert!((b.total_ge() - e.area_ge).abs() < 1e-9, "{}", d.name());
            for part in [
                b.registers_ge,
                b.adders_ge,
                b.multipliers_ge,
                b.control_ge,
                b.boundary_ge,
            ] {
                assert!(part >= 0.0);
            }
        }
    }

    #[test]
    fn breakdown_shapes_follow_the_structure() {
        let t = tech();
        // Radix-2: registers dominate the datapath.
        let r2 = arch(
            Algorithm::Montgomery,
            2,
            64,
            AdderKind::CarrySave,
            DigitMultiplierKind::AndRow,
        );
        let b2 = breakdown(&r2, 64, &t).unwrap();
        assert!(b2.registers_ge > b2.multipliers_ge);
        assert!(b2.registers_ge > b2.adders_ge);
        // Radix-4 array: the multiplier share grows substantially.
        let r4 = arch(
            Algorithm::Montgomery,
            4,
            64,
            AdderKind::CarrySave,
            DigitMultiplierKind::Array,
        );
        let b4 = breakdown(&r4, 64, &t).unwrap();
        assert!(b4.multipliers_ge > 2.0 * b2.multipliers_ge);
        // Brickell has no quotient logic.
        let brick = arch(
            Algorithm::Brickell,
            2,
            64,
            AdderKind::CarrySave,
            DigitMultiplierKind::AndRow,
        );
        assert_eq!(breakdown(&brick, 64, &t).unwrap().quotient_ge, 0.0);
        assert!(b2.quotient_ge > 0.0);
    }

    #[test]
    fn csa_design_is_bigger_than_cla_at_same_width() {
        // The redundant carry register costs area: paper #2 > #1 in Table 1.
        let t = tech();
        let csa = arch(
            Algorithm::Montgomery,
            2,
            64,
            AdderKind::CarrySave,
            DigitMultiplierKind::AndRow,
        )
        .estimate(64, &t);
        let cla = arch(
            Algorithm::Montgomery,
            2,
            64,
            AdderKind::CarryLookAhead,
            DigitMultiplierKind::AndRow,
        )
        .estimate(64, &t);
        assert!(csa.area_um2 > cla.area_um2);
    }
}
