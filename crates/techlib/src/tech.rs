//! The combined technology view: node + layout style + cell library.

use std::fmt;


use crate::{CellKind, CellLibrary, CellModel, FabricationNode, LayoutStyle};

/// A complete technology target: everything the hardware estimator needs
/// to turn a structural netlist-level description into µm² and ns.
///
/// # Examples
///
/// ```
/// use techlib::{CellKind, FabricationNode, LayoutStyle, Technology};
///
/// let t = Technology::new(FabricationNode::n0350(), LayoutStyle::StandardCell);
/// // A 64-bit register: 64 DFFs.
/// let reg_area = t.cell_area_um2(CellKind::Dff) * 64.0;
/// assert!(reg_area > 1000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    node: FabricationNode,
    layout: LayoutStyle,
    cells: CellLibrary,
}

impl Technology {
    /// Builds a technology with the generic cell library.
    pub fn new(node: FabricationNode, layout: LayoutStyle) -> Self {
        Technology {
            node,
            layout,
            cells: CellLibrary::generic(),
        }
    }

    /// Builds a technology with a custom cell library.
    pub fn with_cells(node: FabricationNode, layout: LayoutStyle, cells: CellLibrary) -> Self {
        Technology {
            node,
            layout,
            cells,
        }
    }

    /// The paper's target: 0.35 µm standard cells.
    pub fn g10_035() -> Self {
        Technology::new(FabricationNode::n0350(), LayoutStyle::StandardCell)
    }

    /// The fabrication node.
    pub fn node(&self) -> &FabricationNode {
        &self.node
    }

    /// The layout style.
    pub fn layout(&self) -> LayoutStyle {
        self.layout
    }

    /// The cell library.
    pub fn cells(&self) -> &CellLibrary {
        &self.cells
    }

    /// The raw cell model (technology-independent units).
    pub fn cell_model(&self, kind: CellKind) -> CellModel {
        self.cells.model(kind)
    }

    /// Physical area of one instance of `kind`, in µm² (node and layout
    /// factors applied).
    pub fn cell_area_um2(&self, kind: CellKind) -> f64 {
        self.cells.model(kind).area_ge * self.node.ge_um2() * self.layout.area_factor()
    }

    /// Worst-case propagation delay of one instance of `kind`, in ns.
    pub fn cell_delay_ns(&self, kind: CellKind) -> f64 {
        self.cells.model(kind).delay_tau * self.node.tau_ns() * self.layout.delay_factor()
    }

    /// Input-to-carry delay of an adder cell, in ns.
    pub fn cell_carry_delay_ns(&self, kind: CellKind) -> f64 {
        self.cells.model(kind).carry_delay_tau * self.node.tau_ns() * self.layout.delay_factor()
    }

    /// Converts a gate-equivalent count to µm² under this technology.
    pub fn ge_to_um2(&self, ge: f64) -> f64 {
        ge * self.node.ge_um2() * self.layout.area_factor()
    }

    /// Converts a τ count to ns under this technology.
    pub fn tau_to_ns(&self, tau: f64) -> f64 {
        tau * self.node.tau_ns() * self.layout.delay_factor()
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.node, self.layout)
    }
}

foundation::impl_json_struct!(Technology { node, layout, cells });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g10_is_035_standard_cell() {
        let t = Technology::g10_035();
        assert_eq!(t.node().feature_nm(), 350);
        assert_eq!(t.layout(), LayoutStyle::StandardCell);
    }

    #[test]
    fn layout_factors_apply() {
        let sc = Technology::new(FabricationNode::n0350(), LayoutStyle::StandardCell);
        let ga = Technology::new(FabricationNode::n0350(), LayoutStyle::GateArray);
        assert!(ga.cell_area_um2(CellKind::Nand2) > sc.cell_area_um2(CellKind::Nand2));
        assert!(ga.cell_delay_ns(CellKind::Nand2) > sc.cell_delay_ns(CellKind::Nand2));
    }

    #[test]
    fn unit_conversions_are_consistent() {
        let t = Technology::g10_035();
        let m = t.cell_model(CellKind::Xor2);
        assert!((t.ge_to_um2(m.area_ge) - t.cell_area_um2(CellKind::Xor2)).abs() < 1e-9);
        assert!((t.tau_to_ns(m.delay_tau) - t.cell_delay_ns(CellKind::Xor2)).abs() < 1e-9);
    }

    #[test]
    fn carry_path_is_exposed() {
        let t = Technology::g10_035();
        assert!(t.cell_carry_delay_ns(CellKind::FullAdder) < t.cell_delay_ns(CellKind::FullAdder));
        // Non-adder cells: carry delay == worst delay.
        assert_eq!(
            t.cell_carry_delay_ns(CellKind::Mux2),
            t.cell_delay_ns(CellKind::Mux2)
        );
    }

    #[test]
    fn display_combines_node_and_layout() {
        assert_eq!(Technology::g10_035().to_string(), "0.35um standard-cell");
    }
}
