//! Static analysis over a [`DesignSpace`] — the `dse-verify` pass.
//!
//! The analyzer inspects a layer *without binding a single property* and
//! reports defects that would otherwise surface only mid-session (or
//! never): malformed and unresolvable constraints, derivation-graph
//! cycles, contradictions under the declared domains, dead options,
//! shadowed properties and unreachable child CDOs. Every finding is a
//! [`Diagnostic`](crate::diag::Diagnostic) with a stable `DSLnnn` code —
//! see [`crate::diag::DiagCode`] for the catalogue.
//!
//! Soundness posture: **errors** are definite (the space is malformed);
//! **warnings/notes** are best-effort and only emitted when the analyzer
//! can enumerate the relevant domains exhaustively. Constraints touching
//! non-enumerable domains (wide integer ranges, reals) are skipped by the
//! domain passes rather than guessed at.
//!
//! ```
//! use dse::prelude::*;
//! use dse::analyze;
//!
//! let mut space = DesignSpace::new("demo");
//! let root = space.add_root("Root", "");
//! space.add_constraint_unchecked(root, ConsistencyConstraint::new(
//!     "CCX", "refers to nothing",
//!     ["Ghost".to_owned()], [],
//!     Relation::InconsistentOptions(Pred::is("Ghost", 1)),
//! ));
//! let report = analyze::analyze(&space);
//! assert!(report.has_errors()); // DSL002: "Ghost" is never declared
//! ```

mod domains;
mod graph;
pub mod solve;
mod structure;

pub use graph::DerivationGraph;

use std::collections::BTreeSet;

use crate::constraint::{ConsistencyConstraint, Relation};
use crate::diag::{DiagCode, Diagnostic, Report, Span};
use crate::expr::Pred;
use crate::hierarchy::{CdoId, DesignSpace};
use crate::value::{Domain, Value};

/// Per-node diagnostics, one lane per analysis pass. Lanes let the merge
/// reproduce the pass-major order the sequential analyzer used (all
/// constraint findings across the space, then all graph findings, …), so
/// the parallel fan-out is bit-identical to a sequential run: `Report::
/// sort` is stable, and ties keep their pre-sort push order.
#[derive(Default)]
struct NodeFindings {
    constraints: Vec<Diagnostic>,
    graph: Vec<Diagnostic>,
    contradictions: Vec<Diagnostic>,
    dead_options: Vec<Diagnostic>,
    unreachable: Vec<Diagnostic>,
    shadowed: Vec<Diagnostic>,
    dangling: Vec<Diagnostic>,
    unspecialized: Vec<Diagnostic>,
}

impl NodeFindings {
    /// The lanes in sequential pass order.
    fn into_lanes(self) -> [Vec<Diagnostic>; 8] {
        [
            self.constraints,
            self.graph,
            self.contradictions,
            self.dead_options,
            self.unreachable,
            self.shadowed,
            self.dangling,
            self.unspecialized,
        ]
    }
}

/// Which engine the domain passes (DSL005/006/008/009) prove their
/// verdicts with. Both are exact on the spaces they can finish; they
/// differ only in reach and speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DomainEngine {
    /// Propagation-guided exact search ([`solve`]): interval/bitset
    /// abstraction prunes decided subspaces, so verdicts over millions
    /// of joint combinations finish without enumerating them. The
    /// default.
    #[default]
    Propagation,
    /// The legacy exhaustive odometer, capped at
    /// `MAX_COMBINATIONS` joint combinations. Kept as the test oracle:
    /// on any space it can finish, the propagation engine must agree
    /// bit-for-bit.
    Exhaustive,
}

impl DomainEngine {
    /// Engine selection from the environment: set
    /// `DSE_ANALYZE_ENGINE=exhaustive` to force the legacy oracle;
    /// anything else (including unset) selects propagation.
    pub fn from_env() -> DomainEngine {
        match std::env::var("DSE_ANALYZE_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("exhaustive") => DomainEngine::Exhaustive,
            _ => DomainEngine::Propagation,
        }
    }
}

/// An analysis [`Report`] plus the solver-side work counters behind it
/// (zero under the exhaustive oracle).
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The combined, deduplicated, severity-sorted findings.
    pub report: Report,
    /// Propagation-engine work counters accumulated across the domain
    /// passes (all zero under [`DomainEngine::Exhaustive`]).
    pub stats: solve::SolveTotals,
}

/// Runs every analysis pass over `space` and returns the combined,
/// deduplicated, severity-sorted report. Engine selection follows
/// [`DomainEngine::from_env`].
pub fn analyze(space: &DesignSpace) -> Report {
    analyze_with_engine(space, DomainEngine::from_env())
}

/// [`analyze`] with an explicit domain-pass engine.
pub fn analyze_with_engine(space: &DesignSpace, engine: DomainEngine) -> Report {
    analyze_detailed(space, engine).report
}

/// Runs every analysis pass over `space` and returns the combined,
/// deduplicated, severity-sorted report together with the solver work
/// counters.
///
/// The passes fan out per CDO on the [`foundation::par`] work-stealing
/// pool (every check only reads ancestor/subtree state, never sibling
/// results), and the domain-pass verdicts share a [`domains::ElimMemo`]
/// so identical subtrees are checked once. Results are merged in
/// node-id and pass order, which makes the report bit-identical to a
/// sequential run regardless of `DSE_THREADS`.
pub fn analyze_detailed(space: &DesignSpace, engine: DomainEngine) -> Analysis {
    let ids: Vec<CdoId> = space.iter().map(|(id, _)| id).collect();
    let memo = domains::ElimMemo::new(engine);
    let per_node = foundation::par::par_map(ids, |id| {
        let mut f = NodeFindings::default();
        constraints_node(space, id, &mut f.constraints);
        graph::check_node(space, id, &mut f.graph);
        domains::contradictions_node(space, id, &memo, &mut f.contradictions);
        domains::dead_options_node(space, id, &memo, &mut f.dead_options);
        domains::unreachable_node(space, id, &memo, &mut f.unreachable);
        structure::shadowed_node(space, id, &mut f.shadowed);
        structure::dangling_node(space, id, &mut f.dangling);
        structure::unspecialized_node(space, id, &mut f.unspecialized);
        f
    });
    let mut report = Report::new();
    let mut lanes: Vec<[Vec<Diagnostic>; 8]> =
        per_node.into_iter().map(NodeFindings::into_lanes).collect();
    for pass in 0..8 {
        for node in &mut lanes {
            for d in node[pass].drain(..) {
                report.push(d);
            }
        }
    }
    dedup(&mut report);
    report.sort();
    Analysis {
        report,
        stats: memo.totals(),
    }
}

/// The topological property-evaluation order implied by the constraints
/// effective at `cdo`: every independent property precedes the dependents
/// it orders.
///
/// # Errors
///
/// Returns a report carrying [`DiagCode::DerivationCycle`] when the
/// ordering edges form a cycle (no valid order exists).
pub fn evaluation_order(space: &DesignSpace, cdo: CdoId) -> Result<Vec<String>, Report> {
    let constraints: Vec<&ConsistencyConstraint> = space
        .effective_constraints(cdo)
        .into_iter()
        .map(|(_, c)| c)
        .collect();
    let g = DerivationGraph::from_constraints(constraints.iter().copied());
    g.topo_order().map_err(|cyclic| {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            DiagCode::DerivationCycle,
            Span::at(space.path_string(cdo)),
            format!("no evaluation order exists: cycle through {}", cyclic.join(", ")),
        ));
        r
    })
}

// ---------------------------------------------------------------------
// Shared scope helpers.
// ---------------------------------------------------------------------

/// Every CDO in the subtree rooted at `id` (inclusive).
pub(crate) fn subtree(space: &DesignSpace, id: CdoId) -> Vec<CdoId> {
    let mut out = Vec::new();
    let mut stack = vec![id];
    while let Some(n) = stack.pop() {
        out.push(n);
        stack.extend(space.node(n).children().iter().copied());
    }
    out
}

/// The CDOs whose declarations are relevant to a constraint attached at
/// `id`: the ancestor chain (whose properties `id` inherits) plus the
/// subtree (whose properties the constraint governs once the session
/// descends).
pub(crate) fn scope_nodes(space: &DesignSpace, id: CdoId) -> Vec<CdoId> {
    let mut out = space.ancestry(id);
    for n in subtree(space, id) {
        if n != id {
            out.push(n);
        }
    }
    out
}

/// The property a quantitative/estimator relation produces, if any.
pub(crate) fn derived_target(c: &ConsistencyConstraint) -> Option<&str> {
    match c.relation() {
        Relation::Quantitative { target, .. } => Some(target),
        Relation::EstimatorContext { output, .. } => Some(output),
        _ => None,
    }
}

/// The predicate of an inconsistency/dominance relation, if any.
pub(crate) fn constraint_pred(c: &ConsistencyConstraint) -> Option<&Pred> {
    match c.relation() {
        Relation::InconsistentOptions(p) | Relation::Dominance(p) => Some(p),
        _ => None,
    }
}

/// Every property name a constraint mentions: the declared sets plus the
/// relation's own references and produced target.
pub(crate) fn constraint_refs(c: &ConsistencyConstraint) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = c.indep().iter().cloned().collect();
    out.extend(c.dep().iter().cloned());
    match c.relation() {
        Relation::InconsistentOptions(p) | Relation::Dominance(p) => {
            out.extend(p.references());
        }
        Relation::Quantitative {
            target, formula, ..
        } => {
            out.extend(formula.references());
            out.insert(target.clone());
        }
        Relation::EstimatorContext { inputs, output, .. } => {
            out.extend(inputs.iter().cloned());
            out.insert(output.clone());
        }
    }
    out
}

/// Resolves the declared domain of `name` as seen from `anchor`: the
/// inheritance chain first, then anywhere in the subtree (a constraint at
/// a CDO may legally reference properties its descendants declare).
pub(crate) fn domain_at<'a>(
    space: &'a DesignSpace,
    anchor: CdoId,
    name: &str,
) -> Option<&'a Domain> {
    if let Some((_, p)) = space.find_property(anchor, name) {
        return Some(p.domain());
    }
    for id in subtree(space, anchor) {
        if let Some(p) = space.node(id).own_properties().iter().find(|p| p.name() == name) {
            return Some(p.domain());
        }
    }
    None
}

// ---------------------------------------------------------------------
// Per-constraint checks: DSL001 / DSL002 / DSL011.
// ---------------------------------------------------------------------

fn constraints_node(space: &DesignSpace, id: CdoId, out: &mut Vec<Diagnostic>) {
    let node = space.node(id);
    if node.own_constraints().is_empty() {
        return;
    }
    let path = space.path_string(id);
    let scope = scope_nodes(space, id);
    // Resolvable names: everything declared in scope, plus everything
    // a quantitative/estimator relation in scope produces (derived
    // metrics such as `LatencyCycles` are never declared as
    // properties — the relation itself introduces them).
    let mut resolvable: BTreeSet<&str> = BTreeSet::new();
    for &n in &scope {
        for p in space.node(n).own_properties() {
            resolvable.insert(p.name());
        }
        for c in space.node(n).own_constraints() {
            if let Some(t) = derived_target(c) {
                resolvable.insert(t);
            }
        }
    }

    for c in node.own_constraints() {
        let span = Span::at(path.clone()).constraint(c.name());
        if !c.well_formed() {
            let listed: BTreeSet<&str> = c
                .indep()
                .iter()
                .chain(c.dep().iter())
                .map(String::as_str)
                .collect();
            let stray: Vec<String> = constraint_refs(c)
                .into_iter()
                .filter(|r| !listed.contains(r.as_str()))
                .collect();
            out.push(Diagnostic::new(
                DiagCode::MalformedConstraint,
                span.clone(),
                format!(
                    "relation references {} outside the declared indep/dep sets",
                    quote_list(&stray)
                ),
            ));
        }
        for r in constraint_refs(c) {
            if !resolvable.contains(r.as_str()) {
                out.push(Diagnostic::new(
                    DiagCode::UnresolvedReference,
                    span.clone(),
                    format!(
                        "references {r:?}, which no CDO in scope declares and no relation derives"
                    ),
                ));
            }
        }
        if let Some(pred) = constraint_pred(c) {
            for (prop, value) in literal_comparisons(pred) {
                if let Some(domain) = domain_at(space, id, prop) {
                    if !domain.contains(value) {
                        out.push(Diagnostic::new(
                            DiagCode::LiteralOutsideDomain,
                            span.clone().property(prop),
                            format!(
                                "compares {prop:?} against {value}, outside its domain {domain}"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Every `property = literal` / `property ≠ literal` leaf of a predicate.
fn literal_comparisons(pred: &Pred) -> Vec<(&str, &Value)> {
    let mut out = Vec::new();
    collect_literals(pred, &mut out);
    out
}

fn collect_literals<'a>(pred: &'a Pred, out: &mut Vec<(&'a str, &'a Value)>) {
    match pred {
        Pred::Is(p, v) | Pred::IsNot(p, v) => out.push((p, v)),
        Pred::And(ps) | Pred::Or(ps) => {
            for p in ps {
                collect_literals(p, out);
            }
        }
        Pred::Not(p) => collect_literals(p, out),
        _ => {}
    }
}

pub(crate) fn quote_list(names: &[String]) -> String {
    let quoted: Vec<String> = names.iter().map(|n| format!("{n:?}")).collect();
    quoted.join(", ")
}

fn dedup(report: &mut Report) {
    let mut seen = BTreeSet::new();
    let kept: Vec<Diagnostic> = report
        .diagnostics()
        .iter()
        .filter(|d| seen.insert(format!("{d}")))
        .cloned()
        .collect();
    *report = Report::from_diagnostics(kept);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::Property;

    fn space_with_cc2_chain() -> (DesignSpace, CdoId) {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(root, Property::requirement("EOL", Domain::int_range(8, 4096), None, ""))
            .unwrap();
        s.add_property(
            root,
            Property::issue_with_default("Radix", Domain::PowersOfTwo { max_exp: 4 }, Value::Int(2), ""),
        )
        .unwrap();
        s.add_constraint(
            root,
            ConsistencyConstraint::new(
                "CC2",
                "",
                ["Radix".to_owned(), "EOL".to_owned()],
                ["Latency".to_owned()],
                Relation::Quantitative {
                    target: "Latency".to_owned(),
                    formula: crate::expr::Expr::prop("EOL").div(crate::expr::Expr::prop("Radix")),
                    fidelity: crate::constraint::Fidelity::Heuristic,
                },
            ),
        )
        .unwrap();
        (s, root)
    }

    #[test]
    fn clean_space_analyzes_clean() {
        let (s, _) = space_with_cc2_chain();
        let r = analyze(&s);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn evaluation_order_puts_independents_first() {
        let (s, root) = space_with_cc2_chain();
        let order = evaluation_order(&s, root).unwrap();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("EOL") < pos("Latency"));
        assert!(pos("Radix") < pos("Latency"));
    }

    #[test]
    fn evaluation_order_reports_cycles() {
        let (mut s, root) = space_with_cc2_chain();
        s.add_constraint_unchecked(
            root,
            ConsistencyConstraint::new(
                "CCback",
                "",
                ["Latency".to_owned()],
                ["EOL".to_owned()],
                Relation::InconsistentOptions(Pred::cmp(
                    crate::expr::CmpOp::Gt,
                    crate::expr::Expr::prop("Latency"),
                    crate::expr::Expr::prop("EOL"),
                )),
            ),
        );
        let err = evaluation_order(&s, root).unwrap_err();
        assert!(err.has_errors());
        assert_eq!(err.diagnostics()[0].code, DiagCode::DerivationCycle);
    }

    #[test]
    fn scope_covers_ancestors_and_subtree() {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("R", "");
        let a = s.add_child(root, "A", "");
        let b = s.add_child(a, "B", "");
        let side = s.add_child(root, "Side", "");
        let scope = scope_nodes(&s, a);
        assert!(scope.contains(&root) && scope.contains(&a) && scope.contains(&b));
        assert!(!scope.contains(&side));
    }
}
