//! Benchmarks of the design-space-layer machinery itself: layer
//! construction, library generation, pruning and Pareto queries — the
//! operations a designer's tool loop would hammer.

fn main() {
    bench::suites::exploration().finish();
}
