//! Benchmarks of the static space analyzer: shipped-layer verification
//! and a synthetic ~1.4k-CDO stress space.

fn main() {
    bench::suites::analyze().finish();
}
