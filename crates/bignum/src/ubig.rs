//! The arbitrary-precision unsigned integer type.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;


use crate::arith;
use crate::{Limb, LIMB_BITS};

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian limbs (least-significant limb first) with the
/// invariant that the most significant limb, if any, is non-zero. Zero is
/// represented by an empty limb vector.
///
/// # Examples
///
/// ```
/// use bignum::UBig;
///
/// let a = UBig::from(1_000_000_007u64);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "1000000014000000049");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct UBig {
    limbs: Vec<Limb>,
}

/// Error returned when parsing a [`UBig`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUBigError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseUBigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer literal"),
        }
    }
}

impl std::error::Error for ParseUBigError {}

impl UBig {
    /// The value `0`.
    ///
    /// ```
    /// # use bignum::UBig;
    /// assert!(UBig::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Creates a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<Limb>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        UBig { limbs }
    }

    /// Borrows the little-endian limbs. The most significant limb is
    /// guaranteed non-zero; zero has no limbs.
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// Consumes `self`, returning the little-endian limb vector.
    pub fn into_limbs(self) -> Vec<Limb> {
        self.limbs
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns `true` if the least significant bit is set.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Returns `true` if the value is even (including zero).
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// # use bignum::UBig;
    /// assert_eq!(UBig::from(0u64).bit_len(), 0);
    /// assert_eq!(UBig::from(1u64).bit_len(), 1);
    /// assert_eq!(UBig::from(255u64).bit_len(), 8);
    /// assert_eq!(UBig::from(256u64).bit_len(), 9);
    /// ```
    pub fn bit_len(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(top) => {
                (self.limbs.len() as u32 - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros())
            }
        }
    }

    /// Number of significant limbs.
    pub fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    /// Returns bit `i` (counting from the least significant bit 0).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / LIMB_BITS) as usize;
        match self.limbs.get(limb) {
            None => false,
            Some(l) => (l >> (i % LIMB_BITS)) & 1 == 1,
        }
    }

    /// Sets bit `i` to `value`, growing the number as needed.
    pub fn set_bit(&mut self, i: u32, value: bool) {
        let limb = (i / LIMB_BITS) as usize;
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << (i % LIMB_BITS);
        } else if let Some(l) = self.limbs.get_mut(limb) {
            *l &= !(1 << (i % LIMB_BITS));
            while self.limbs.last() == Some(&0) {
                self.limbs.pop();
            }
        }
    }

    /// Extracts `count` bits starting at bit `lo` as a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn bits(&self, lo: u32, count: u32) -> u64 {
        assert!(count <= 64, "can extract at most 64 bits at once");
        let mut out = 0u64;
        for i in 0..count {
            if self.bit(lo + i) {
                out |= 1 << i;
            }
        }
        out
    }

    /// Returns the `i`-th base-2ᵏ digit (`k = digit_bits`), counting from the
    /// least significant digit.
    ///
    /// This is the digit-serial access pattern of the radix-2ᵏ hardware
    /// multiplier datapaths.
    ///
    /// # Panics
    ///
    /// Panics if `digit_bits` is 0 or greater than 64.
    pub fn digit(&self, i: u32, digit_bits: u32) -> u64 {
        assert!(digit_bits > 0, "digit width must be positive");
        self.bits(i * digit_bits, digit_bits)
    }

    /// Shifts left by `bits`.
    pub fn shl(&self, bits: u32) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let limb_shift = (bits / LIMB_BITS) as usize;
        let bit_shift = bits % LIMB_BITS;
        let mut limbs = vec![0; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry: Limb = 0;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        UBig::from_limbs(limbs)
    }

    /// Shifts right by `bits` (floor division by 2^bits).
    pub fn shr(&self, bits: u32) -> UBig {
        let limb_shift = (bits / LIMB_BITS) as usize;
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for (i, &l) in src.iter().enumerate() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                limbs.push((l >> bit_shift) | (hi << (LIMB_BITS - bit_shift)));
            }
        }
        UBig::from_limbs(limbs)
    }

    /// The low `bits` bits of the value (i.e. `self mod 2^bits`).
    pub fn low_bits(&self, bits: u32) -> UBig {
        let full_limbs = (bits / LIMB_BITS) as usize;
        let rem_bits = bits % LIMB_BITS;
        let mut limbs: Vec<Limb> = self
            .limbs
            .iter()
            .copied()
            .take(full_limbs + usize::from(rem_bits > 0))
            .collect();
        if rem_bits > 0 {
            if let Some(last) = limbs.get_mut(full_limbs) {
                *last &= (1 << rem_bits) - 1;
            }
        }
        UBig::from_limbs(limbs)
    }

    /// `2^exp`.
    ///
    /// ```
    /// # use bignum::UBig;
    /// assert_eq!(UBig::power_of_two(10), UBig::from(1024u64));
    /// ```
    pub fn power_of_two(exp: u32) -> UBig {
        let mut out = UBig::zero();
        out.set_bit(exp, true);
        out
    }

    /// Checked subtraction: `self - rhs`, or `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &UBig) -> Option<UBig> {
        arith::sub(self, rhs)
    }

    /// Euclidean division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &UBig) -> (UBig, UBig) {
        arith::div_rem(self, divisor)
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &UBig) -> UBig {
        self.div_rem(m).1
    }

    /// Modular addition `(self + rhs) mod m`. Operands need not be reduced.
    pub fn mod_add(&self, rhs: &UBig, m: &UBig) -> UBig {
        (self + rhs).rem(m)
    }

    /// Modular subtraction `(self - rhs) mod m`. Operands need not be reduced.
    pub fn mod_sub(&self, rhs: &UBig, m: &UBig) -> UBig {
        let a = self.rem(m);
        let b = rhs.rem(m);
        match a.checked_sub(&b) {
            Some(d) => d,
            None => m.checked_sub(&(&b - &a)).expect("b - a < m"),
        }
    }

    /// Naive ("paper and pencil") modular multiplication: full product
    /// followed by a reduction. This is the reference against which the
    /// Brickell and Montgomery routes are validated.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_mul(&self, rhs: &UBig, m: &UBig) -> UBig {
        (self * rhs).rem(m)
    }

    /// Modular exponentiation `self^exp mod m` by left-to-right binary
    /// square-and-multiply — the control structure of the paper's modular
    /// exponentiation coprocessor.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &UBig, m: &UBig) -> UBig {
        if m.is_one() {
            return UBig::zero();
        }
        let base = self.rem(m);
        let mut acc = UBig::one();
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            acc = acc.mod_mul(&acc, m);
            if exp.bit(i) {
                acc = acc.mod_mul(&base, m);
            }
        }
        acc
    }

    /// Parses from a hexadecimal string (no `0x` prefix, case-insensitive,
    /// underscores allowed as separators).
    ///
    /// # Errors
    ///
    /// Returns an error if the string is empty or contains a non-hex digit.
    pub fn from_hex(s: &str) -> Result<Self, ParseUBigError> {
        let cleaned: Vec<char> = s.chars().filter(|&c| c != '_').collect();
        if cleaned.is_empty() {
            return Err(ParseUBigError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut out = UBig::zero();
        for &c in &cleaned {
            let d = c.to_digit(16).ok_or(ParseUBigError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            out = out.shl(4);
            out = &out + &UBig::from(d as u64);
        }
        Ok(out)
    }

    /// Parses from a decimal string (underscores allowed as separators).
    ///
    /// # Errors
    ///
    /// Returns an error if the string is empty or contains a non-decimal digit.
    pub fn from_dec(s: &str) -> Result<Self, ParseUBigError> {
        let cleaned: Vec<char> = s.chars().filter(|&c| c != '_').collect();
        if cleaned.is_empty() {
            return Err(ParseUBigError {
                kind: ParseErrorKind::Empty,
            });
        }
        let ten = UBig::from(10u64);
        let mut out = UBig::zero();
        for &c in &cleaned {
            let d = c.to_digit(10).ok_or(ParseUBigError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            out = &(&out * &ten) + &UBig::from(d as u64);
        }
        Ok(out)
    }

    /// Lowercase hexadecimal representation without a prefix.
    pub fn to_hex(&self) -> String {
        format!("{self:x}")
    }

    /// Big-endian byte representation (no leading zero bytes; zero gives
    /// an empty vector).
    ///
    /// ```
    /// # use bignum::UBig;
    /// assert_eq!(UBig::from(0x01_02_03u64).to_bytes_be(), vec![1, 2, 3]);
    /// assert!(UBig::zero().to_bytes_be().is_empty());
    /// ```
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Little-endian byte representation (no trailing zero bytes).
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut out = self.to_bytes_be();
        out.reverse();
        out
    }

    /// Parses a big-endian byte string (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut out = UBig::zero();
        for &b in bytes {
            out = out.shl(8);
            out = &out + &UBig::from(b as u64);
        }
        out
    }

    /// Parses a little-endian byte string (trailing zeros allowed).
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let reversed: Vec<u8> = bytes.iter().rev().copied().collect();
        UBig::from_bytes_be(&reversed)
    }

    /// Converts to `u64`, or `None` if the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << LIMB_BITS)),
            _ => None,
        }
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        let lo = (v & (Limb::MAX as u64)) as Limb;
        let hi = (v >> LIMB_BITS) as Limb;
        UBig::from_limbs(vec![lo, hi])
    }
}

impl From<u32> for UBig {
    fn from(v: u32) -> Self {
        UBig::from_limbs(vec![v])
    }
}

impl FromStr for UBig {
    type Err = ParseUBigError;

    /// Parses a decimal literal, or a hexadecimal one when prefixed with
    /// `0x`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.strip_prefix("0x") {
            Some(hex) => UBig::from_hex(hex),
            None => UBig::from_dec(s),
        }
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig(0x{self:x})")
    }
}

impl fmt::LowerHex for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:08x}"));
            }
        }
        f.write_str(&s)
    }
}

impl fmt::UpperHex for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format!("{self:x}").to_uppercase())
    }
}

impl fmt::Binary for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let bits = self.bit_len();
        let mut s = String::with_capacity(bits as usize);
        for i in (0..bits).rev() {
            s.push(if self.bit(i) { '1' } else { '0' });
        }
        f.write_str(&s)
    }
}

impl fmt::Display for UBig {
    /// Decimal representation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by a large power of ten keeps the loop count low.
        const CHUNK: u64 = 1_000_000_000;
        let chunk = UBig::from(CHUNK);
        let mut value = self.clone();
        let mut groups: Vec<u64> = Vec::new();
        while !value.is_zero() {
            let (q, r) = value.div_rem(&chunk);
            groups.push(r.to_u64().expect("remainder below 10^9 fits in u64"));
            value = q;
        }
        let mut s = String::new();
        for (i, g) in groups.iter().enumerate().rev() {
            if i == groups.len() - 1 {
                s.push_str(&g.to_string());
            } else {
                s.push_str(&format!("{g:09}"));
            }
        }
        f.write_str(&s)
    }
}

// JSON: a `0x`-prefixed hex string, so arbitrarily wide values survive
// codecs that would round numbers through floats.
impl foundation::json::ToJson for UBig {
    fn to_json(&self) -> foundation::json::Json {
        foundation::json::Json::Str(format!("0x{self:x}"))
    }
}

impl foundation::json::FromJson for UBig {
    fn from_json(v: &foundation::json::Json) -> Result<Self, foundation::json::JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| foundation::json::JsonError::type_mismatch("UBig", "string", v))?;
        s.parse()
            .map_err(|e| foundation::json::JsonError::decode(format!("UBig: {e}")))
    }
}

// Operator impls (delegating to `arith`), provided for all four
// reference/value combinations so call sites stay readable.
macro_rules! forward_binop {
    ($trait:ident, $method:ident, $imp:path) => {
        impl std::ops::$trait<&UBig> for &UBig {
            type Output = UBig;
            fn $method(self, rhs: &UBig) -> UBig {
                $imp(self, rhs)
            }
        }
        impl std::ops::$trait<UBig> for UBig {
            type Output = UBig;
            fn $method(self, rhs: UBig) -> UBig {
                $imp(&self, &rhs)
            }
        }
        impl std::ops::$trait<&UBig> for UBig {
            type Output = UBig;
            fn $method(self, rhs: &UBig) -> UBig {
                $imp(&self, rhs)
            }
        }
        impl std::ops::$trait<UBig> for &UBig {
            type Output = UBig;
            fn $method(self, rhs: UBig) -> UBig {
                $imp(self, &rhs)
            }
        }
    };
}

fn sub_expect(a: &UBig, b: &UBig) -> UBig {
    arith::sub(a, b).expect("subtraction underflow: rhs > lhs")
}

forward_binop!(Add, add, arith::add);
forward_binop!(Sub, sub, sub_expect);
forward_binop!(Mul, mul, arith::mul);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(UBig::zero().is_zero());
        assert!(UBig::one().is_one());
        assert!(UBig::zero().is_even());
        assert!(UBig::one().is_odd());
        assert_eq!(UBig::default(), UBig::zero());
    }

    #[test]
    fn normalization_strips_trailing_zero_limbs() {
        let a = UBig::from_limbs(vec![5, 0, 0]);
        assert_eq!(a.limb_len(), 1);
        assert_eq!(a, UBig::from(5u64));
    }

    #[test]
    fn bit_len_boundaries() {
        assert_eq!(UBig::zero().bit_len(), 0);
        assert_eq!(UBig::from(u32::MAX as u64).bit_len(), 32);
        assert_eq!(UBig::from(u32::MAX as u64 + 1).bit_len(), 33);
        assert_eq!(UBig::power_of_two(1000).bit_len(), 1001);
    }

    #[test]
    fn bit_get_set_roundtrip() {
        let mut v = UBig::zero();
        v.set_bit(0, true);
        v.set_bit(77, true);
        assert!(v.bit(0) && v.bit(77) && !v.bit(50));
        v.set_bit(77, false);
        assert_eq!(v, UBig::one());
    }

    #[test]
    fn set_bit_false_renormalizes() {
        let mut v = UBig::power_of_two(64);
        v.set_bit(64, false);
        assert!(v.is_zero());
        assert_eq!(v.limb_len(), 0);
    }

    #[test]
    fn shifts_match_mul_div_by_powers_of_two() {
        let a = UBig::from_hex("123456789abcdef0123456789").unwrap();
        assert_eq!(a.shl(13), &a * &UBig::power_of_two(13));
        assert_eq!(a.shr(13), a.div_rem(&UBig::power_of_two(13)).0);
        assert_eq!(a.shl(0), a);
        assert_eq!(a.shr(0), a);
        assert!(a.shr(200).is_zero());
    }

    #[test]
    fn low_bits_is_mod_power_of_two() {
        let a = UBig::from_hex("ffeeddccbbaa99887766554433221100").unwrap();
        for bits in [0u32, 1, 7, 32, 33, 64, 100, 128, 200] {
            assert_eq!(
                a.low_bits(bits),
                a.rem(&UBig::power_of_two(bits)),
                "bits = {bits}"
            );
        }
    }

    #[test]
    fn digit_extraction_radix4() {
        // 0b1101_10 in base-4 digits (2 bits): digit0 = 0b10=2, digit1=0b01=1, digit2=0b11=3.
        let a = UBig::from(0b110110u64);
        assert_eq!(a.digit(0, 2), 2);
        assert_eq!(a.digit(1, 2), 1);
        assert_eq!(a.digit(2, 2), 3);
        assert_eq!(a.digit(3, 2), 0);
    }

    #[test]
    fn parse_and_format_hex() {
        let a = UBig::from_hex("DEAD_beef_0000_0001").unwrap();
        assert_eq!(format!("{a:x}"), "deadbeef00000001");
        assert_eq!(format!("{a:X}"), "DEADBEEF00000001");
        let round: UBig = "0xdeadbeef00000001".parse().unwrap();
        assert_eq!(a, round);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(UBig::from_hex("").is_err());
        assert!(UBig::from_hex("12g4").is_err());
        assert!(UBig::from_dec("12a").is_err());
        assert!("".parse::<UBig>().is_err());
    }

    #[test]
    fn decimal_display_roundtrip() {
        let cases = [
            "0",
            "1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
        ];
        for c in cases {
            let v = UBig::from_dec(c).unwrap();
            assert_eq!(v.to_string(), c);
        }
    }

    #[test]
    fn binary_format() {
        assert_eq!(format!("{:b}", UBig::from(0u64)), "0");
        assert_eq!(format!("{:b}", UBig::from(13u64)), "1101");
    }

    #[test]
    fn ordering_across_sizes() {
        let small = UBig::from(u64::MAX);
        let big = UBig::power_of_two(100);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big), Ordering::Equal);
    }

    #[test]
    fn mod_sub_wraps() {
        let m = UBig::from(97u64);
        let a = UBig::from(5u64);
        let b = UBig::from(20u64);
        assert_eq!(a.mod_sub(&b, &m), UBig::from(82u64));
        assert_eq!(b.mod_sub(&a, &m), UBig::from(15u64));
    }

    #[test]
    fn mod_pow_small_cases() {
        let m = UBig::from(1000u64);
        assert_eq!(
            UBig::from(2u64).mod_pow(&UBig::from(10u64), &m),
            UBig::from(24u64)
        );
        // Fermat: a^(p-1) mod p == 1 for prime p not dividing a.
        let p = UBig::from(65537u64);
        assert_eq!(
            UBig::from(3u64).mod_pow(&UBig::from(65536u64), &p),
            UBig::one()
        );
        // x^0 = 1, x^1 = x mod m.
        assert_eq!(UBig::from(7u64).mod_pow(&UBig::zero(), &m), UBig::one());
        assert_eq!(
            UBig::from(7123u64).mod_pow(&UBig::one(), &m),
            UBig::from(123u64)
        );
        // mod 1 is always 0.
        assert_eq!(
            UBig::from(7u64).mod_pow(&UBig::from(5u64), &UBig::one()),
            UBig::zero()
        );
    }

    #[test]
    fn byte_roundtrips() {
        let cases = [
            UBig::zero(),
            UBig::one(),
            UBig::from(0xDEAD_BEEFu64),
            UBig::from_hex("0102030405060708090a0b0c0d0e0f").unwrap(),
            UBig::power_of_two(257),
        ];
        for v in &cases {
            assert_eq!(&UBig::from_bytes_be(&v.to_bytes_be()), v);
            assert_eq!(&UBig::from_bytes_le(&v.to_bytes_le()), v);
        }
        // Leading zeros are tolerated on input and stripped on output.
        assert_eq!(UBig::from_bytes_be(&[0, 0, 1, 2]), UBig::from(0x102u64));
        assert_eq!(UBig::from(0x102u64).to_bytes_be(), vec![1, 2]);
    }

    #[test]
    fn to_u64_boundaries() {
        assert_eq!(UBig::zero().to_u64(), Some(0));
        assert_eq!(UBig::from(u64::MAX).to_u64(), Some(u64::MAX));
        assert_eq!(UBig::power_of_two(64).to_u64(), None);
    }

    #[test]
    fn json_roundtrip_is_hex() {
        let a = UBig::from_hex("abc123").unwrap();
        let json = foundation::json::encode(&a);
        assert_eq!(json, "\"0xabc123\"");
        let back: UBig = foundation::json::decode(&json).unwrap();
        assert_eq!(back, a);
        assert!(foundation::json::decode::<UBig>("\"0xZZ\"").is_err());
        assert!(foundation::json::decode::<UBig>("17").is_err());
    }
}
