//! Benchmarks of the cycle-accurate datapath simulator: one modular
//! multiplication through each Table-1 design family.

use bignum::{uniform_below, UBig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwmodel::{paper_designs, sim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_simulate_per_family(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let bits = 64u32;
    let mut m = uniform_below(&UBig::power_of_two(bits), &mut rng);
    m.set_bit(bits - 1, true);
    m.set_bit(0, true);
    let a = uniform_below(&m, &mut rng);
    let b = uniform_below(&m, &mut rng);

    let mut group = c.benchmark_group("hwmodel/simulate_64b");
    for family in paper_designs() {
        let arch = family.architecture(16).expect("16-bit slices");
        group.bench_with_input(
            BenchmarkId::from_parameter(family.name()),
            &arch,
            |bch, arch| {
                bch.iter(|| {
                    sim::simulate(
                        std::hint::black_box(arch),
                        std::hint::black_box(&a),
                        std::hint::black_box(&b),
                        std::hint::black_box(&m),
                    )
                    .expect("valid operands")
                });
            },
        );
    }
    group.finish();
}

fn bench_simulate_operand_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("hwmodel/simulate_scaling");
    group.sample_size(10);
    let arch = paper_designs()[1].architecture(64).expect("64-bit slices");
    for bits in [64u32, 256, 768] {
        let mut rng = StdRng::seed_from_u64(bits as u64);
        let mut m = uniform_below(&UBig::power_of_two(bits), &mut rng);
        m.set_bit(bits - 1, true);
        m.set_bit(0, true);
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| sim::simulate(&arch, &a, &b, &m).expect("valid operands"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulate_per_family,
    bench_simulate_operand_scaling
);
criterion_main!(benches);
