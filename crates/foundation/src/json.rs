//! A self-contained JSON codec: value type, parser, serializer, and the
//! [`ToJson`]/[`FromJson`] traits that replace the serde derives.
//!
//! The encoding conventions mirror serde's externally-tagged default
//! closely enough that the emitted files stay human-readable:
//!
//! * structs → objects keyed by field name;
//! * unit enum variants → their name as a string;
//! * tuple enum variants → `{"Variant": [field, ...]}`;
//! * struct enum variants → `{"Variant": {"field": ..., ...}}`;
//! * maps → objects (non-string keys are embedded as their compact JSON
//!   encoding, and recovered on the way back in).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Integers and floats are kept apart so that `u64`/`i64` round-trip
/// exactly; [`FromJson`] for float types accepts either.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Error from parsing or decoding JSON.
///
/// Parse errors carry the 1-based `line`/`col` of the offending byte;
/// decode (shape-mismatch) errors report position `0:0`.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    msg: String,
    /// 1-based line of a parse error, 0 for decode errors.
    pub line: usize,
    /// 1-based column of a parse error, 0 for decode errors.
    pub col: usize,
}

impl JsonError {
    /// A decode (shape) error with no source position.
    pub fn decode(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            line: 0,
            col: 0,
        }
    }

    /// The standard "expected X, got Y" decode error.
    pub fn type_mismatch(ty: &str, want: &str, got: &Json) -> Self {
        JsonError::decode(format!("{ty}: expected {want}, got {}", got.kind_name()))
    }

    fn parse(msg: impl Into<String>, line: usize, col: usize) -> Self {
        JsonError {
            msg: msg.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {} column {}", self.msg, self.line, self.col)
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// The value's kind, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "int",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// `Some` for `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some` for `Int`, and for `Float` with an exactly-integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(x) if x.fract() == 0.0 && x.abs() < 9.0e18 => Some(*x as i64),
            _ => None,
        }
    }

    /// `Some` for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// `Some` for `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `Some` for `Array`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `Some` for `Object`.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Parses a JSON document. The whole input must be consumed.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser::new(text);
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Two-space-indented serialization.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(fmt_i64(&mut [0u8; I64_BUF], *i)),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral floats, so the
                    // reader can't silently lose the number's float-ness.
                    out.push_str(fmt_f64(&mut [0u8; F64_BUF], *x));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

/// Compact serialization (`to_string()` comes with it via `ToString`).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    // Every byte that needs escaping is single-byte ASCII, so slicing `s`
    // at escape positions always lands on char boundaries.
    out.push('"');
    let bytes = s.as_bytes();
    let mut safe_from = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let class = escape_class(b);
        if class == 0 {
            continue;
        }
        out.push_str(&s[safe_from..i]);
        safe_from = i + 1;
        if class == b'u' {
            out.push_str("\\u00");
            out.push(HEX_DIGITS[(b >> 4) as usize] as char);
            out.push(HEX_DIGITS[(b & 0xf) as usize] as char);
        } else {
            out.push('\\');
            out.push(class as char);
        }
    }
    out.push_str(&s[safe_from..]);
    out.push('"');
}

/// Byte of the two-character escapes (`\n`, `\t`, ...), `b'u'` for the
/// generic `\u00xx` form, or 0 for "no escape needed".
const fn escape_class(b: u8) -> u8 {
    match b {
        b'"' => b'"',
        b'\\' => b'\\',
        b'\n' => b'n',
        b'\r' => b'r',
        b'\t' => b't',
        0x08 => b'b',
        0x0c => b'f',
        0x00..=0x1f => b'u',
        _ => 0,
    }
}

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

/// One-pass string escaping: contiguous runs of safe bytes are copied with
/// `extend_from_slice`; control characters go through a static hex table
/// (no per-character `format!` allocation). Emits the surrounding quotes.
pub fn escape_str_into(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    let bytes = s.as_bytes();
    let mut safe_from = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let class = escape_class(b);
        if class == 0 {
            continue;
        }
        out.extend_from_slice(&bytes[safe_from..i]);
        safe_from = i + 1;
        if class == b'u' {
            out.extend_from_slice(&[
                b'\\',
                b'u',
                b'0',
                b'0',
                HEX_DIGITS[(b >> 4) as usize],
                HEX_DIGITS[(b & 0xf) as usize],
            ]);
        } else {
            out.extend_from_slice(&[b'\\', class]);
        }
    }
    out.extend_from_slice(&bytes[safe_from..]);
    out.push(b'"');
}

/// Exact byte length [`escape_str_into`] would emit for `s`, including
/// the surrounding quotes — lets byte budgeting run without rendering.
pub fn escaped_len(s: &str) -> usize {
    2 + s
        .bytes()
        .map(|b| match escape_class(b) {
            0 => 1,
            b'u' => 6,
            _ => 2,
        })
        .sum::<usize>()
}

/// Stack-buffer size for [`fmt_i64`]: `i64::MIN` renders to 20 bytes.
pub const I64_BUF: usize = 20;

/// Stack-buffer size for [`fmt_f64`]: the longest shortest-round-trip
/// `{:?}` rendering of a finite `f64` is 24 bytes
/// (`-2.2250738585072014e-308`); 40 leaves margin.
pub const F64_BUF: usize = 40;

/// Formats `v` into the caller's stack buffer without allocating, returning
/// the rendered digits (itoa-style; shared by [`Json::to_string`] and
/// [`Writer`]).
pub fn fmt_i64(buf: &mut [u8; I64_BUF], v: i64) -> &str {
    let mut n = v;
    let mut i = buf.len();
    loop {
        i -= 1;
        // `%` rounds toward zero, so the remainder digits of a negative
        // value come out negative: `unsigned_abs` folds both signs.
        buf[i] = b'0' + (n % 10).unsigned_abs() as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    if v < 0 {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII")
}

/// Formats a finite `v` with `{:?}` semantics (trailing `.0` kept on
/// integral floats) into the caller's stack buffer without allocating.
pub fn fmt_f64(buf: &mut [u8; F64_BUF], v: f64) -> &str {
    struct Sink<'a> {
        buf: &'a mut [u8; F64_BUF],
        len: usize,
    }
    impl fmt::Write for Sink<'_> {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            let end = self.len + s.len();
            if end > self.buf.len() {
                return Err(fmt::Error);
            }
            self.buf[self.len..end].copy_from_slice(s.as_bytes());
            self.len = end;
            Ok(())
        }
    }
    let mut sink = Sink { buf, len: 0 };
    use fmt::Write as _;
    write!(sink, "{v:?}").expect("finite f64 debug repr fits F64_BUF bytes");
    let len = sink.len;
    std::str::from_utf8(&buf[..len]).expect("float rendering is ASCII")
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError::parse(msg, self.line, self.pos - self.line_start + 1)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(members)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a low surrogate must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 in string"));
                    }
                    match std::str::from_utf8(&self.bytes[start..start + len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape (need 4 hex digits)")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        match self.peek() {
            Some(b'0') => {
                self.bump();
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::Float(x)),
            Err(_) => Err(self.err("number out of range")),
        }
    }
}

// ---------------------------------------------------------------------------
// Zero-copy wire codec: a borrowing pull-parser and a tree-free writer.
//
// `Reader`/`Writer` are the hot-path counterparts of `Json::parse` /
// `Json::to_string`: the reader hands out `&str` slices of the input
// wherever no escape forces an owned copy, and the writer serializes
// straight into a caller-owned `Vec<u8>` so a warm buffer round-trips
// with zero allocations. The tree codec above stays untouched and serves
// as the differential oracle (`tests/json_wire.rs`).

use std::borrow::Cow;

/// A number token read by [`Reader`], keeping the int/float distinction of
/// [`Json::Int`]/[`Json::Float`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A number without fractional part or exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
}

/// A borrowing pull-parser over a byte slice.
///
/// Accepts exactly the same documents as [`Json::parse`] and reports
/// errors with the same 1-based line/column positions (computed lazily,
/// so the happy path never tracks lines). Strings come back as
/// [`Cow::Borrowed`] slices of the input unless an escape sequence forces
/// an owned copy.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Parses a whole document into a [`Json`] tree — the `&[u8]`
    /// equivalent of [`Json::parse`], built on the pull-parser.
    pub fn parse_document(bytes: &'a [u8]) -> Result<Json, JsonError> {
        let mut r = Reader::new(bytes);
        r.skip_ws();
        let v = r.read_value(0)?;
        r.end()?;
        Ok(v)
    }

    /// Current byte offset into the input.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// A parse error at the current position; line/col are recovered by
    /// scanning the consumed prefix (error path only).
    pub fn err(&self, msg: impl Into<String>) -> JsonError {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let line_start = consumed
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |i| i + 1);
        JsonError::parse(msg, line, self.pos - line_start + 1)
    }

    /// The next byte, without consuming it.
    pub fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    /// Skips JSON whitespace.
    pub fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `b` or errors.
    pub fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    /// Skips whitespace, then requires end of input.
    pub fn end(&mut self) -> Result<(), JsonError> {
        self.skip_ws();
        if self.pos < self.bytes.len() {
            return Err(self.err("trailing characters after document"));
        }
        Ok(())
    }

    /// Consumes `{` (the caller should [`Self::skip_ws`] first).
    pub fn begin_object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')
    }

    /// Advances to the next member of the current object and returns its
    /// key, leaving the reader positioned at the value; `None` once the
    /// object closes. `index` is the number of members already read (0 on
    /// the first call, when no separating comma is expected).
    pub fn next_key(&mut self, index: usize) -> Result<Option<Cow<'a, str>>, JsonError> {
        self.skip_ws();
        if index == 0 {
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(None);
            }
        } else {
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(None);
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
            self.skip_ws();
        }
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string key in object"));
        }
        let key = self.read_str()?;
        self.skip_ws();
        self.expect(b':')?;
        self.skip_ws();
        Ok(Some(key))
    }

    /// Reads a string token. Escape-free strings borrow from the input;
    /// escapes fall back to an owned decode with [`Json::parse`]'s exact
    /// semantics.
    pub fn read_str(&mut self) -> Result<Cow<'a, str>, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut i = start;
        while i < self.bytes.len() {
            let b = self.bytes[i];
            if b == b'"' {
                if let Ok(s) = std::str::from_utf8(&self.bytes[start..i]) {
                    self.pos = i + 1;
                    return Ok(Cow::Borrowed(s));
                }
                // Invalid UTF-8: re-scan on the slow path for the exact
                // error position and message.
                break;
            }
            if b == b'\\' || b < 0x20 {
                break;
            }
            i += 1;
        }
        self.read_str_slow().map(Cow::Owned)
    }

    /// The escape-bearing slow path of [`Self::read_str`]; starts after
    /// the opening quote.
    fn read_str_slow(&mut self) -> Result<String, JsonError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 in string"));
                    }
                    match std::str::from_utf8(&self.bytes[start..start + len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape (need 4 hex digits)")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    /// Reads a number token plus the raw text it was parsed from (for
    /// callers that want to echo the exact input bytes back).
    pub fn read_number_with_span(&mut self) -> Result<(Number, &'a str), JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok((Number::Int(i), text));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok((Number::Float(x), text)),
            Err(_) => Err(self.err("number out of range")),
        }
    }

    /// Reads a number token.
    pub fn read_number(&mut self) -> Result<Number, JsonError> {
        self.read_number_with_span().map(|(n, _)| n)
    }

    /// Reads `true` or `false`.
    pub fn read_bool(&mut self) -> Result<bool, JsonError> {
        match self.peek() {
            Some(b't') => self.keyword("true").map(|()| true),
            _ => self.keyword("false").map(|()| false),
        }
    }

    /// Reads `null`.
    pub fn read_null(&mut self) -> Result<(), JsonError> {
        self.keyword("null")
    }

    fn keyword(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    /// Reads any value into a [`Json`] tree (the fallback when a caller
    /// hits a shape it has no borrowed representation for).
    pub fn read_value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null").map(|()| Json::Null),
            Some(b't') => self.keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.keyword("false").map(|()| Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.read_str()?.into_owned())),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.read_value(depth + 1)?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Json::Array(items)),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.err("expected ',' or ']' in array"));
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                loop {
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return Err(self.err("expected string key in object"));
                    }
                    let key = self.read_str()?.into_owned();
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.read_value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Json::Object(members)),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.err("expected ',' or '}' in object"));
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => Ok(match self.read_number()? {
                Number::Int(i) => Json::Int(i),
                Number::Float(x) => Json::Float(x),
            }),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
        }
    }

    /// Validates and consumes any value without building a tree, returning
    /// the raw input span it occupied (whitespace-trimmed at both ends).
    /// Accepts exactly what [`Self::read_value`] accepts.
    pub fn skip_value(&mut self, depth: usize) -> Result<&'a [u8], JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        let start = self.pos;
        match self.peek() {
            None => return Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null")?,
            Some(b't') => self.keyword("true")?,
            Some(b'f') => self.keyword("false")?,
            Some(b'"') => {
                self.read_str()?;
            }
            Some(b'-' | b'0'..=b'9') => {
                self.read_number()?;
            }
            Some(open @ (b'[' | b'{')) => {
                let close = if open == b'[' { b']' } else { b'}' };
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(close) {
                    self.pos += 1;
                } else {
                    loop {
                        self.skip_ws();
                        if open == b'{' {
                            if self.peek() != Some(b'"') {
                                return Err(self.err("expected string key in object"));
                            }
                            self.read_str()?;
                            self.skip_ws();
                            self.expect(b':')?;
                            self.skip_ws();
                        }
                        self.skip_value(depth + 1)?;
                        self.skip_ws();
                        match self.bump() {
                            Some(b',') => continue,
                            Some(b) if b == close => break,
                            _ => {
                                self.pos = self.pos.saturating_sub(1);
                                return Err(self.err(if open == b'[' {
                                    "expected ',' or ']' in array"
                                } else {
                                    "expected ',' or '}' in object"
                                }));
                            }
                        }
                    }
                }
            }
            Some(c) => return Err(self.err(format!("unexpected character {:?}", c as char))),
        }
        Ok(&self.bytes[start..self.pos])
    }
}

/// Serializes a [`Json`] tree compactly into `out` without any
/// intermediate allocation — byte-identical to `v.to_string()`.
pub fn write_json(out: &mut Vec<u8>, v: &Json) {
    match v {
        Json::Null => out.extend_from_slice(b"null"),
        Json::Bool(true) => out.extend_from_slice(b"true"),
        Json::Bool(false) => out.extend_from_slice(b"false"),
        Json::Int(i) => out.extend_from_slice(fmt_i64(&mut [0u8; I64_BUF], *i).as_bytes()),
        Json::Float(x) => {
            if x.is_finite() {
                out.extend_from_slice(fmt_f64(&mut [0u8; F64_BUF], *x).as_bytes());
            } else {
                out.extend_from_slice(b"null");
            }
        }
        Json::Str(s) => escape_str_into(out, s),
        Json::Array(items) => {
            out.push(b'[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_json(out, item);
            }
            out.push(b']');
        }
        Json::Object(members) => {
            out.push(b'{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                escape_str_into(out, k);
                out.push(b':');
                write_json(out, v);
            }
            out.push(b'}');
        }
    }
}

/// Deepest container nesting [`Writer`] supports (one bit of comma state
/// per level).
pub const WRITER_MAX_DEPTH: usize = 256;

/// A tree-free compact JSON serializer over a caller-owned `Vec<u8>`.
///
/// Comma placement is tracked in a fixed-size per-depth bitmap, so a warm
/// (pre-grown) output buffer is written with zero allocations. Output is
/// byte-identical to building the equivalent [`Json`] tree and calling
/// `to_string()`.
#[derive(Debug)]
pub struct Writer<'a> {
    out: &'a mut Vec<u8>,
    depth: usize,
    has_items: [u64; WRITER_MAX_DEPTH / 64],
    is_object: [u64; WRITER_MAX_DEPTH / 64],
}

impl<'a> Writer<'a> {
    /// A writer appending to `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        Writer {
            out,
            depth: 0,
            has_items: [0; WRITER_MAX_DEPTH / 64],
            is_object: [0; WRITER_MAX_DEPTH / 64],
        }
    }

    fn bit(map: &[u64], depth: usize) -> bool {
        map[depth / 64] & (1 << (depth % 64)) != 0
    }

    fn set_bit(map: &mut [u64], depth: usize, on: bool) {
        if on {
            map[depth / 64] |= 1 << (depth % 64);
        } else {
            map[depth / 64] &= !(1 << (depth % 64));
        }
    }

    /// Emits the separating comma a value needs in array context (keys own
    /// the comma inside objects; top level has no separators).
    fn value_separator(&mut self) {
        if self.depth > 0 && !Self::bit(&self.is_object, self.depth) {
            if Self::bit(&self.has_items, self.depth) {
                self.out.push(b',');
            }
            Self::set_bit(&mut self.has_items, self.depth, true);
        }
    }

    fn open(&mut self, is_object: bool, delim: u8) {
        self.value_separator();
        self.depth += 1;
        assert!(self.depth < WRITER_MAX_DEPTH, "Writer nesting too deep");
        Self::set_bit(&mut self.is_object, self.depth, is_object);
        Self::set_bit(&mut self.has_items, self.depth, false);
        self.out.push(delim);
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.open(true, b'{');
    }

    /// Closes the current object (`}`).
    pub fn end_object(&mut self) {
        debug_assert!(self.depth > 0 && Self::bit(&self.is_object, self.depth));
        self.out.push(b'}');
        self.depth -= 1;
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.open(false, b'[');
    }

    /// Closes the current array (`]`).
    pub fn end_array(&mut self) {
        debug_assert!(self.depth > 0 && !Self::bit(&self.is_object, self.depth));
        self.out.push(b']');
        self.depth -= 1;
    }

    /// Writes a member key (with its separating comma and `:`); the next
    /// value call supplies the member's value.
    pub fn key(&mut self, k: &str) {
        debug_assert!(
            self.depth > 0 && Self::bit(&self.is_object, self.depth),
            "key outside object"
        );
        if Self::bit(&self.has_items, self.depth) {
            self.out.push(b',');
        }
        Self::set_bit(&mut self.has_items, self.depth, true);
        escape_str_into(self.out, k);
        self.out.push(b':');
    }

    /// Writes a string value.
    pub fn str_value(&mut self, s: &str) {
        self.value_separator();
        escape_str_into(self.out, s);
    }

    /// Writes an integer value.
    pub fn int_value(&mut self, i: i64) {
        self.value_separator();
        self.out
            .extend_from_slice(fmt_i64(&mut [0u8; I64_BUF], i).as_bytes());
    }

    /// Writes a float value (`{:?}` rendering; non-finite becomes `null`,
    /// matching the tree serializer).
    pub fn float_value(&mut self, x: f64) {
        self.value_separator();
        if x.is_finite() {
            self.out
                .extend_from_slice(fmt_f64(&mut [0u8; F64_BUF], x).as_bytes());
        } else {
            self.out.extend_from_slice(b"null");
        }
    }

    /// Writes a boolean value.
    pub fn bool_value(&mut self, b: bool) {
        self.value_separator();
        self.out
            .extend_from_slice(if b { b"true" } else { b"false" });
    }

    /// Writes `null`.
    pub fn null_value(&mut self) {
        self.value_separator();
        self.out.extend_from_slice(b"null");
    }

    /// Splices pre-rendered JSON into value position. The caller
    /// guarantees `raw` is one complete, valid compact JSON value.
    pub fn raw_value(&mut self, raw: &[u8]) {
        self.value_separator();
        self.out.extend_from_slice(raw);
    }

    /// Writes a [`Json`] tree in value position (the escape hatch for
    /// payloads that only exist as trees, e.g. echoed request ids).
    pub fn json_value(&mut self, v: &Json) {
        self.value_separator();
        write_json(self.out, v);
    }
}

/// Serialize into a [`Json`] tree. The replacement for `serde::Serialize`.
pub trait ToJson {
    /// The value as a JSON tree.
    fn to_json(&self) -> Json;
}

/// Rebuild from a [`Json`] tree. The replacement for `serde::Deserialize`.
pub trait FromJson: Sized {
    /// Decodes the value, reporting shape mismatches as errors.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Compact-encodes any [`ToJson`] value.
pub fn encode<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Pretty-encodes any [`ToJson`] value.
pub fn encode_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses and decodes in one step.
pub fn decode<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

// ---------------------------------------------------------------------------
// Trait impls for the primitive vocabulary the workspace uses.

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::type_mismatch("bool", "bool", v))
    }
}

macro_rules! json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| JsonError::type_mismatch(stringify!($ty), "integer", v))?;
                <$ty>::try_from(i).map_err(|_| {
                    JsonError::decode(format!("{i} out of range for {}", stringify!($ty)))
                })
            }
        }
    )+};
}

json_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! json_big_uint {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                match i64::try_from(*self) {
                    Ok(i) => Json::Int(i),
                    Err(_) => Json::Float(*self as f64),
                }
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| JsonError::type_mismatch(stringify!($ty), "integer", v))?;
                <$ty>::try_from(i).map_err(|_| {
                    JsonError::decode(format!("{i} out of range for {}", stringify!($ty)))
                })
            }
        }
    )+};
}

json_big_uint!(u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::type_mismatch("f64", "number", v))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|x| x as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::type_mismatch("String", "string", v))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::type_mismatch("Vec", "array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::type_mismatch("tuple", "2-element array", v)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::type_mismatch("tuple", "3-element array", v)),
        }
    }
}

impl<K: ToJson + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_json() {
                        Json::Str(s) => s,
                        other => other.to_string(),
                    };
                    (key, v.to_json())
                })
                .collect(),
        )
    }
}

impl<K: FromJson + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| JsonError::type_mismatch("map", "object", v))?;
        let mut out = BTreeMap::new();
        for (k, val) in obj {
            // String-like keys decode directly; structured keys were embedded
            // as their compact JSON encoding.
            let key = match K::from_json(&Json::Str(k.clone())) {
                Ok(key) => key,
                Err(first) => match Json::parse(k) {
                    Ok(parsed) => K::from_json(&parsed)?,
                    Err(_) => return Err(first),
                },
            };
            out.insert(key, V::from_json(val)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-replacement macros.

/// Looks up a struct field, treating a missing member as `null` (so
/// `Option` fields may be omitted, as with serde's `default`).
pub fn field<T: FromJson>(
    obj: &[(String, Json)],
    name: &str,
    ty: &str,
) -> Result<T, JsonError> {
    let value = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Json::Null);
    T::from_json(value).map_err(|e| JsonError::decode(format!("{ty}.{name}: {e}")))
}

/// Pulls the next element of a tuple-variant payload.
pub fn seq_next<T: FromJson>(
    it: &mut std::slice::Iter<'_, Json>,
    ctx: &str,
) -> Result<T, JsonError> {
    let v = it
        .next()
        .ok_or_else(|| JsonError::decode(format!("{ctx}: missing tuple element")))?;
    T::from_json(v).map_err(|e| JsonError::decode(format!("{ctx}: {e}")))
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields, as an
/// object keyed by field name — the replacement for
/// `#[derive(Serialize, Deserialize)]` on structs.
///
/// ```
/// struct P { x: i64, label: String }
/// foundation::impl_json_struct!(P { x, label });
/// # use foundation::json::{decode, encode};
/// let p: P = decode(&encode(&P { x: 3, label: "a".into() })).unwrap();
/// assert_eq!(p.x, 3);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Object(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                let obj = v.as_object().ok_or_else(|| {
                    $crate::json::JsonError::type_mismatch(stringify!($ty), "object", v)
                })?;
                Ok($ty {
                    $($field: $crate::json::field(obj, stringify!($field), stringify!($ty))?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a single-field tuple struct as
/// the transparent encoding of its inner value.
#[macro_export]
macro_rules! impl_json_newtype {
    ($ty:ident) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok($ty($crate::json::FromJson::from_json(v)?))
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum, using serde's
/// externally-tagged shape: unit variants as strings, tuple variants as
/// `{"Variant": [..]}`, struct variants as `{"Variant": {..}}`. Tuple
/// variants take placeholder binder names (one per field):
///
/// ```
/// # #[derive(PartialEq, Debug)]
/// enum E { A, Pair(i64, i64), At { x: i64 } }
/// foundation::impl_json_enum!(E { A, Pair(a, b), At { x } });
/// # use foundation::json::{decode, encode};
/// assert_eq!(decode::<E>(&encode(&E::Pair(1, 2))).unwrap(), E::Pair(1, 2));
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $( $var:ident
        $( ( $($tf:ident),+ $(,)? ) )?
        $( { $($sf:ident),+ $(,)? } )?
    ),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $(
                        $ty::$var $( ( $($tf),+ ) )? $( { $($sf),+ } )? => {
                            #[allow(unused_mut, unused_assignments)]
                            let mut payload: Option<$crate::json::Json> = None;
                            $({
                                let arr: Vec<$crate::json::Json> =
                                    vec![$($crate::json::ToJson::to_json($tf)),+];
                                payload = Some($crate::json::Json::Array(arr));
                            })?
                            $({
                                let fields: Vec<(String, $crate::json::Json)> = vec![$((
                                    stringify!($sf).to_string(),
                                    $crate::json::ToJson::to_json($sf),
                                )),+];
                                payload = Some($crate::json::Json::Object(fields));
                            })?
                            match payload {
                                None => $crate::json::Json::Str(stringify!($var).to_string()),
                                Some(p) => $crate::json::Json::Object(vec![(
                                    stringify!($var).to_string(),
                                    p,
                                )]),
                            }
                        }
                    )+
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                match v {
                    $crate::json::Json::Str(s) => {
                        $($crate::__impl_json_enum_from_str!(
                            $ty, $var, s, $( ( $($tf),+ ) )? $( { $($sf),+ } )?
                        );)+
                        Err($crate::json::JsonError::decode(format!(
                            "unknown {} variant {s:?}",
                            stringify!($ty)
                        )))
                    }
                    $crate::json::Json::Object(obj) if obj.len() == 1 => {
                        let (tag, payload) = &obj[0];
                        $($crate::__impl_json_enum_from_payload!(
                            $ty, $var, tag, payload, $( ( $($tf),+ ) )? $( { $($sf),+ } )?
                        );)+
                        Err($crate::json::JsonError::decode(format!(
                            "unknown {} variant {tag:?}",
                            stringify!($ty)
                        )))
                    }
                    other => Err($crate::json::JsonError::type_mismatch(
                        stringify!($ty),
                        "string or single-key object",
                        other,
                    )),
                }
            }
        }
    };
}

/// Internal: the unit-variant arm of [`impl_json_enum!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __impl_json_enum_from_str {
    ($ty:ident, $var:ident, $s:ident,) => {
        if $s == stringify!($var) {
            return Ok($ty::$var);
        }
    };
    ($ty:ident, $var:ident, $s:ident, ( $($tf:ident),+ )) => {};
    ($ty:ident, $var:ident, $s:ident, { $($sf:ident),+ }) => {};
}

/// Internal: the payload-variant arm of [`impl_json_enum!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __impl_json_enum_from_payload {
    ($ty:ident, $var:ident, $tag:ident, $payload:ident,) => {};
    ($ty:ident, $var:ident, $tag:ident, $payload:ident, ( $($tf:ident),+ )) => {
        if $tag == stringify!($var) {
            let arr = $payload.as_array().ok_or_else(|| {
                $crate::json::JsonError::type_mismatch(
                    stringify!($ty),
                    "array payload",
                    $payload,
                )
            })?;
            let want = [$(stringify!($tf)),+].len();
            if arr.len() != want {
                return Err($crate::json::JsonError::decode(format!(
                    "{}::{} expects {want} fields, got {}",
                    stringify!($ty),
                    stringify!($var),
                    arr.len()
                )));
            }
            let mut it = arr.iter();
            return Ok($ty::$var(
                $($crate::json::seq_next(&mut it, stringify!($tf))?),+
            ));
        }
    };
    ($ty:ident, $var:ident, $tag:ident, $payload:ident, { $($sf:ident),+ }) => {
        if $tag == stringify!($var) {
            let fields = $payload.as_object().ok_or_else(|| {
                $crate::json::JsonError::type_mismatch(
                    stringify!($ty),
                    "object payload",
                    $payload,
                )
            })?;
            return Ok($ty::$var {
                $($sf: $crate::json::field(fields, stringify!($sf), stringify!($ty))?,)+
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-1.5e-2").unwrap(), Json::Float(-0.015));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_collections() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nbreak \"quoted\" back\\slash \t µ 😀 \u{1}";
        let encoded = Json::Str(original.into()).to_string();
        assert_eq!(Json::parse(&encoded).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse(r#""µ 😀""#).unwrap(),
            Json::Str("µ 😀".into())
        );
    }

    #[test]
    fn error_positions_are_reported() {
        let e = Json::parse("{\"a\": 1,\n  nope}").unwrap_err();
        assert_eq!((e.line, e.col), (2, 3));
        let e = Json::parse("[1, 2").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("01").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn numbers_keep_their_kind() {
        let v = Json::parse("[1, 1.0, 9223372036854775807, 1e20]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0], Json::Int(1));
        assert_eq!(a[1], Json::Float(1.0));
        assert_eq!(a[2], Json::Int(i64::MAX));
        assert!(matches!(a[3], Json::Float(_)));
        // The serializer keeps floats recognizable.
        assert_eq!(Json::Float(1.0).to_string(), "1.0");
        assert_eq!(Json::Int(1).to_string(), "1");
    }

    #[test]
    fn pretty_output_reparses() {
        let v = Json::parse(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        n: u32,
        tag: String,
        opt: Option<f64>,
    }
    impl_json_struct!(Demo { n, tag, opt });

    #[derive(Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(f64, f64),
        Poly { sides: u32, label: String },
    }
    impl_json_enum!(Shape {
        Dot,
        Line(a, b),
        Poly { sides, label }
    });

    // Ord for the map-key test only: order by encoded form.
    impl Eq for Shape {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Ord for Shape {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            encode(self).cmp(&encode(other))
        }
    }
    impl PartialOrd for Shape {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    #[test]
    fn struct_macro_roundtrips() {
        let d = Demo {
            n: 9,
            tag: "t".into(),
            opt: None,
        };
        assert_eq!(decode::<Demo>(&encode(&d)).unwrap(), d);
        // A missing Option member decodes as None.
        assert_eq!(
            decode::<Demo>(r#"{"n": 9, "tag": "t"}"#).unwrap(),
            Demo { n: 9, tag: "t".into(), opt: None }
        );
        // A missing required member is an error naming the field.
        let e = decode::<Demo>(r#"{"tag": "t"}"#).unwrap_err();
        assert!(e.to_string().contains("Demo.n"), "{e}");
    }

    #[test]
    fn enum_macro_roundtrips_all_shapes() {
        for s in [
            Shape::Dot,
            Shape::Line(1.5, -2.0),
            Shape::Poly {
                sides: 6,
                label: "hex".into(),
            },
        ] {
            let text = encode(&s);
            assert_eq!(decode::<Shape>(&text).unwrap(), s, "{text}");
        }
        assert_eq!(encode(&Shape::Dot), "\"Dot\"");
        assert!(decode::<Shape>("\"Nope\"").is_err());
        assert!(decode::<Shape>(r#"{"Line": [1]}"#).is_err());
    }

    #[test]
    fn fmt_i64_matches_to_string() {
        for v in [0, 1, -1, 7, -10, 42, i64::MAX, i64::MIN, 1_000_000_007] {
            assert_eq!(fmt_i64(&mut [0u8; I64_BUF], v), v.to_string());
        }
    }

    #[test]
    fn fmt_f64_matches_debug() {
        for v in [
            0.0,
            -0.0,
            1.0,
            8.0,
            -2.5,
            22.4224,
            1e300,
            5e-324,
            f64::MAX,
            f64::MIN,
            -2.2250738585072014e-308,
        ] {
            assert_eq!(fmt_f64(&mut [0u8; F64_BUF], v), format!("{v:?}"));
        }
    }

    #[test]
    fn escaping_uses_hex_table() {
        let s = "a\u{1}b\u{1f}c\"d\\e\nf";
        let mut tree = String::new();
        write_escaped(&mut tree, s);
        assert_eq!(tree, "\"a\\u0001b\\u001fc\\\"d\\\\e\\nf\"");
        let mut wire = Vec::new();
        escape_str_into(&mut wire, s);
        assert_eq!(wire, tree.as_bytes());
    }

    #[test]
    fn reader_borrows_escape_free_strings() {
        let mut r = Reader::new(br#""plain text \z"#);
        assert!(matches!(r.read_str(), Err(_)));
        let mut r = Reader::new("\"plain µ 😀 text\"".as_bytes());
        match r.read_str().unwrap() {
            Cow::Borrowed(s) => assert_eq!(s, "plain µ 😀 text"),
            Cow::Owned(_) => panic!("escape-free string should borrow"),
        }
        let mut r = Reader::new(br#""esc\naped""#);
        match r.read_str().unwrap() {
            Cow::Owned(s) => assert_eq!(s, "esc\naped"),
            Cow::Borrowed(_) => panic!("escaped string must own"),
        }
    }

    #[test]
    fn reader_document_matches_tree_parser() {
        for text in [
            "null",
            "[1,2.5,\"x\",{\"k\":[true,false,null]},-7]",
            r#"{"op":"decide","session":"s","name":"EOL","value":768,"id":7}"#,
            "  {  } ",
            "1e3",
        ] {
            assert_eq!(
                Reader::parse_document(text.as_bytes()).unwrap(),
                Json::parse(text).unwrap(),
                "{text}"
            );
        }
        for bad in ["[1,]", "{\"a\" 1}", "tru", "\"\u{1}\"", "1 2", "{\"a\":}"] {
            let old = Json::parse(bad).unwrap_err();
            let new = Reader::parse_document(bad.as_bytes()).unwrap_err();
            assert_eq!((old.line, old.col), (new.line, new.col), "{bad}");
        }
    }

    #[test]
    fn reader_skip_value_returns_span() {
        let text = br#"{"id": {"a":[1,2],"b":"x"} , "z":1}"#;
        let mut r = Reader::new(text);
        r.skip_ws();
        r.begin_object().unwrap();
        let key = r.next_key(0).unwrap().unwrap();
        assert_eq!(&*key, "id");
        let span = r.skip_value(0).unwrap();
        assert_eq!(span, br#"{"a":[1,2],"b":"x"}"#);
        assert_eq!(&*r.next_key(1).unwrap().unwrap(), "z");
        assert_eq!(r.read_number().unwrap(), Number::Int(1));
        assert!(r.next_key(2).unwrap().is_none());
        assert!(r.end().is_ok());
    }

    #[test]
    fn writer_matches_tree_serializer() {
        let tree = Json::parse(
            r#"{"ok":true,"id":7,"vals":[1,-2,8.0,"µ \"q\" \u0007"],"empty":{},"none":null,"ea":[]}"#,
        )
        .unwrap();
        let mut out = Vec::new();
        write_json(&mut out, &tree);
        assert_eq!(String::from_utf8(out).unwrap(), tree.to_string());

        let mut out = Vec::new();
        let mut w = Writer::new(&mut out);
        w.begin_object();
        w.key("ok");
        w.bool_value(true);
        w.key("id");
        w.int_value(7);
        w.key("vals");
        w.begin_array();
        w.int_value(1);
        w.int_value(-2);
        w.float_value(8.0);
        w.str_value("µ \"q\" \u{7}");
        w.end_array();
        w.key("empty");
        w.begin_object();
        w.end_object();
        w.key("none");
        w.null_value();
        w.key("ea");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(String::from_utf8(out).unwrap(), tree.to_string());
    }

    #[test]
    fn writer_reuses_buffer_without_allocating_state() {
        let mut out = Vec::with_capacity(256);
        for _ in 0..3 {
            out.clear();
            let mut w = Writer::new(&mut out);
            w.begin_array();
            for i in 0..4 {
                w.int_value(i);
            }
            w.end_array();
            assert_eq!(out, b"[0,1,2,3]");
        }
    }

    #[test]
    fn maps_with_structured_keys_roundtrip() {
        let mut m: BTreeMap<Shape, u32> = BTreeMap::new();
        m.insert(Shape::Dot, 1);
        m.insert(
            Shape::Poly {
                sides: 3,
                label: "tri".into(),
            },
            2,
        );
        let back: BTreeMap<Shape, u32> = decode(&encode(&m)).unwrap();
        assert_eq!(back, m);
    }
}
