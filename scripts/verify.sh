#!/usr/bin/env sh
# Hermetic verification: the workspace must build, test and regenerate the
# paper's tables entirely offline (no crates.io access, no network).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline (workspace + examples)"
# --examples matters: the server smoke gate below runs
# target/release/examples/serve directly, which a bare build would
# leave stale.
cargo build --release --offline --examples
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo clippy --all-targets --offline -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> chaos gate: resilience suite under extra fixed seeds"
for seed in 3 11 1999; do
    echo "    DSE_CHAOS_SEED=$seed"
    DSE_CHAOS_SEED=$seed cargo test -q --offline --test resilience > /dev/null
done

echo "==> chaos soak gate: daemon guard suite, fault-injected sockets, seeds x threads"
# The soak drives live TCP sessions through seeded fault-injecting
# streams (drops, partial writes, stalls), kills and reboots the
# engine, and asserts recovered reports are byte-identical to a
# fault-free oracle with no acknowledged decision lost — at every
# seed/thread-count combination.
for seed in 3 11 1999; do
    for threads in 1 2 8; do
        echo "    DSE_CHAOS_SEED=$seed DSE_THREADS=$threads"
        DSE_CHAOS_SEED=$seed DSE_THREADS=$threads \
            cargo test -q --offline --test guard > /dev/null
    done
done

echo "==> determinism gate: full suite at DSE_THREADS=1 and DSE_THREADS=8"
# Debug builds also arm the pool's no-leak assertion: par::scope asserts
# live workers never exceed the configured pool after every drained scope.
for threads in 1 8; do
    echo "    DSE_THREADS=$threads"
    DSE_THREADS=$threads cargo test -q --offline --workspace > /dev/null
done

echo "==> perf gate (soft): bench medians vs BENCH_baseline.json"
if [ -f BENCH_baseline.json ]; then
    DSE_BENCH_FAST=1 cargo run --release --offline -p bench --bin baseline -- \
        --compare BENCH_baseline.json \
        || echo "    warning: bench medians regressed past the gate (soft gate, not fatal)"
else
    echo "    warning: BENCH_baseline.json missing, skipping comparison"
fi

echo "==> static analysis of all shipped design spaces (must be error-free)"
cargo run --release --offline --example diagnose

echo "==> solver gate: >=10^6-combination synthetic space under the propagation engine (budget 90s)"
SOLVE_START=$(date +%s)
cargo run --release --offline --example diagnose -- --synthetic --stats > /dev/null
SOLVE_ELAPSED=$(( $(date +%s) - SOLVE_START ))
if [ "$SOLVE_ELAPSED" -gt 90 ]; then
    echo "    solver gate took ${SOLVE_ELAPSED}s (budget 90s)"
    exit 1
fi
echo "    synthetic space diagnosed in ${SOLVE_ELAPSED}s"

echo "==> explorer store gate: differential property suite under both engines"
for engine in scan columnar; do
    echo "    DSE_EXPLORER_ENGINE=$engine"
    DSE_EXPLORER_ENGINE=$engine cargo test -q --offline --test explorer_store > /dev/null
done

echo "==> core-store scale gate: 1M-core generator build + query (budget 120s)"
SCALE_START=$(date +%s)
cargo run --release --offline --example store_scale -- --cores 1000000 > /dev/null
SCALE_ELAPSED=$(( $(date +%s) - SCALE_START ))
if [ "$SCALE_ELAPSED" -gt 120 ]; then
    echo "    scale gate took ${SCALE_ELAPSED}s (budget 120s)"
    exit 1
fi
echo "    1M-core store built and queried in ${SCALE_ELAPSED}s"

echo "==> wire gate: counting allocator, codec parity, both wire engines"
# The zero-copy wire path must stay allocation-free in steady state at
# any pool size (the metered regions never cross the pool, so the
# counts must hold at DSE_THREADS=1 and =8), and the borrowed
# reader/writer must stay byte-identical to the tree-codec oracle on
# golden and fuzzed streams.
for threads in 1 8; do
    echo "    DSE_THREADS=$threads wire_alloc"
    DSE_THREADS=$threads cargo test -q --offline --test wire_alloc > /dev/null
done
echo "    json_wire (codec + transcript differentials)"
cargo test -q --offline --test json_wire > /dev/null
echo "    server suite under DSE_WIRE_ENGINE=tree (oracle path stays green)"
DSE_WIRE_ENGINE=tree cargo test -q --offline --test server > /dev/null

echo "==> server smoke gate: scripted conversation vs golden transcript"
SMOKE_DIR=$(mktemp -d)
./target/release/examples/serve --journal-dir "$SMOKE_DIR/journals" \
    > "$SMOKE_DIR/serve.out" 2>/dev/null &
SERVE_PID=$!
tries=0
while ! grep -q "^listening on " "$SMOKE_DIR/serve.out" 2>/dev/null; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "    server did not come up"
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
SMOKE_ADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/serve.out")
./target/release/examples/dse_client "$SMOKE_ADDR" \
    < tests/golden/server_smoke.script > "$SMOKE_DIR/transcript.txt"
# The script ends with a shutdown request: the daemon must drain cleanly.
wait "$SERVE_PID"
diff -u tests/golden/server_smoke.golden "$SMOKE_DIR/transcript.txt"
rm -rf "$SMOKE_DIR"
echo "    transcript matches golden, clean shutdown"

echo "==> regenerating tables_output.txt"
cargo run --release --offline -p bench --bin tables -- all > tables_output.txt

echo "verify: OK"
