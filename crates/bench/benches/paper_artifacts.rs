//! One benchmark per reproduced paper artifact: regenerating each
//! table/figure end to end (the `tables` harness body).

fn main() {
    bench::suites::paper_artifacts().finish();
}
