//! Processor cost models converting operation counts to execution time.

use std::fmt;


use crate::counter::OpCounts;

/// A simple in-order processor cost model: cycles per operation class, a
/// clock frequency, and a language/implementation overhead factor.
///
/// The presets are calibrated so that the 1024-bit modular multiplication
/// of the paper's Fig. 6 lands where the paper reports it: hand-scheduled
/// assembly around ~1 ms-per-thousand-bits territory (≈0.8–1.0 ms for a
/// CIHS multiplication at 1024 bits) and compiled C 5–7× slower.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorModel {
    name: String,
    freq_mhz: f64,
    cycles_mul: f64,
    cycles_add: f64,
    cycles_load: f64,
    cycles_store: f64,
    cycles_loop: f64,
    /// Multiplier on the total cycle count covering compiler-induced
    /// spills, poor scheduling and call overhead (1.0 = hand assembly).
    overhead: f64,
}

impl ProcessorModel {
    /// Builds a custom model.
    ///
    /// # Panics
    ///
    /// Panics if the frequency or overhead is not positive.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        freq_mhz: f64,
        cycles_mul: f64,
        cycles_add: f64,
        cycles_load: f64,
        cycles_store: f64,
        cycles_loop: f64,
        overhead: f64,
    ) -> Self {
        assert!(freq_mhz > 0.0, "frequency must be positive");
        assert!(overhead >= 1.0, "overhead factor must be at least 1.0");
        ProcessorModel {
            name: name.into(),
            freq_mhz,
            cycles_mul,
            cycles_add,
            cycles_load,
            cycles_store,
            cycles_loop,
            overhead,
        }
    }

    /// Pentium-60-class model for hand-scheduled assembly: 10-cycle word
    /// multiply, single-cycle ALU and cache-hit memory operations.
    pub fn pentium60_asm() -> Self {
        ProcessorModel::new("Pentium-60 ASM", 60.0, 10.0, 1.0, 1.0, 1.0, 2.0, 1.0)
    }

    /// Pentium-60-class model for compiled C: same machine, ~6× overhead
    /// from register spills and unoptimized loop code (matching the C/ASM
    /// ratio in the paper's Fig. 6).
    pub fn pentium60_c() -> Self {
        ProcessorModel::new("Pentium-60 C", 60.0, 10.0, 1.0, 1.0, 1.0, 2.0, 6.0)
    }

    /// A generic embedded RISC core at `freq_mhz` (single-cycle ALU,
    /// 4-cycle multiply) — the paper's "embedded RISC processor" platform
    /// option under the software branch.
    pub fn embedded_risc(freq_mhz: f64) -> Self {
        ProcessorModel::new(
            format!("RISC @{freq_mhz} MHz"),
            freq_mhz,
            4.0,
            1.0,
            2.0,
            2.0,
            2.0,
            1.2,
        )
    }

    /// A generic embedded DSP: single-cycle MAC makes word multiplies
    /// cheap — the paper's "embedded digital signal processor" option.
    pub fn embedded_dsp(freq_mhz: f64) -> Self {
        ProcessorModel::new(
            format!("DSP @{freq_mhz} MHz"),
            freq_mhz,
            1.0,
            1.0,
            1.0,
            1.0,
            1.0,
            1.2,
        )
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Clock frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// Total cycles for a ledger of operation counts.
    pub fn cycles(&self, counts: &OpCounts) -> f64 {
        let raw = counts.mul as f64 * self.cycles_mul
            + counts.add as f64 * self.cycles_add
            + counts.load as f64 * self.cycles_load
            + counts.store as f64 * self.cycles_store
            + counts.loop_iter as f64 * self.cycles_loop;
        raw * self.overhead
    }

    /// Execution time in microseconds for a ledger.
    pub fn time_us(&self, counts: &OpCounts) -> f64 {
        self.cycles(counts) / self.freq_mhz
    }
}

impl fmt::Display for ProcessorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} MHz)", self.name, self.freq_mhz)
    }
}

foundation::impl_json_struct!(ProcessorModel {
    name,
    freq_mhz,
    cycles_mul,
    cycles_add,
    cycles_load,
    cycles_store,
    cycles_loop,
    overhead,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts() -> OpCounts {
        OpCounts {
            mul: 1000,
            add: 2000,
            load: 3000,
            store: 1000,
            loop_iter: 1000,
        }
    }

    #[test]
    fn c_is_slower_than_asm_by_the_overhead_factor() {
        let c = ProcessorModel::pentium60_c().time_us(&sample_counts());
        let asm = ProcessorModel::pentium60_asm().time_us(&sample_counts());
        assert!((c / asm - 6.0).abs() < 1e-9);
    }

    #[test]
    fn faster_clock_means_less_time() {
        let slow = ProcessorModel::embedded_risc(50.0).time_us(&sample_counts());
        let fast = ProcessorModel::embedded_risc(200.0).time_us(&sample_counts());
        assert!((slow / fast - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dsp_mac_beats_risc_on_mul_heavy_loads() {
        let counts = OpCounts {
            mul: 10_000,
            ..OpCounts::default()
        };
        let dsp = ProcessorModel::embedded_dsp(100.0).time_us(&counts);
        let risc = ProcessorModel::embedded_risc(100.0).time_us(&counts);
        assert!(dsp < risc);
    }

    #[test]
    #[should_panic(expected = "overhead factor")]
    fn sub_unity_overhead_panics() {
        let _ = ProcessorModel::new("bad", 60.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.5);
    }
}
