//! Fig. 12: the evaluation space for 64-bit Montgomery multiplications
//! built from 64-bit slices — designs #1–#6, the leaf-level trade-offs
//! (radix, adder structure, multiplier structure).

use dse::eval::{EvalPoint, EvaluationSpace, FigureOfMerit};
use hwmodel::designs::paper_designs;
use techlib::Technology;

use crate::fmt;

/// One scatter point.
#[derive(Debug, Clone)]
pub struct Fig12Point {
    /// Core label (`#4_64` style).
    pub label: String,
    /// Area in µm².
    pub area_um2: f64,
    /// Latency of one 64-bit multiplication in ns.
    pub delay_ns: f64,
    /// Clock period in ns.
    pub clock_ns: f64,
}

/// Operand length and slice width of the figure.
pub const EOL: u32 = 64;

/// Runs the Fig.-12 sweep (Montgomery families #1–#6 at 64-bit slices).
pub fn run(tech: &Technology) -> Vec<Fig12Point> {
    paper_designs()
        .iter()
        .take(6)
        .map(|family| {
            let arch = family.architecture(EOL).expect("64-bit slices");
            let est = arch.estimate(EOL, tech);
            Fig12Point {
                label: family.core_label(EOL),
                area_um2: est.area_um2,
                delay_ns: est.latency_ns,
                clock_ns: est.clock_ns,
            }
        })
        .collect()
}

/// The points as an evaluation space.
pub fn evaluation_space(points: &[Fig12Point]) -> EvaluationSpace {
    points
        .iter()
        .map(|p| {
            EvalPoint::new(p.label.clone())
                .with(FigureOfMerit::AreaUm2, p.area_um2)
                .with(FigureOfMerit::DelayNs, p.delay_ns)
        })
        .collect()
}

/// Renders the scatter as a table.
pub fn render(tech: &Technology) -> String {
    let points = run(tech);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                fmt::num(p.area_um2),
                fmt::num(p.delay_ns),
                fmt::num(p.clock_ns),
            ]
        })
        .collect();
    format!(
        "Fig. 12 — evaluation space for {EOL}-bit Montgomery multiplications, {EOL}-bit slices\n\n{}",
        fmt::table(&["core", "area (µm²)", "delay (ns)", "clk (ns)"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_label(points: &[Fig12Point], label: &str) -> Fig12Point {
        points.iter().find(|p| p.label == label).unwrap().clone()
    }

    #[test]
    fn six_montgomery_points() {
        let points = run(&Technology::g10_035());
        assert_eq!(points.len(), 6);
        assert!(points.iter().all(|p| p.label.ends_with("_64")));
    }

    #[test]
    fn radix4_designs_have_lower_latency_than_radix2_counterparts() {
        let points = run(&Technology::g10_035());
        // #4 (r4 CSA MUL) and #5 (r4 CSA MUX) beat #2 (r2 CSA) on delay.
        let d2 = by_label(&points, "#2_64").delay_ns;
        assert!(by_label(&points, "#4_64").delay_ns < d2);
        assert!(by_label(&points, "#5_64").delay_ns < d2);
    }

    #[test]
    fn radix2_designs_are_smallest() {
        let points = run(&Technology::g10_035());
        let a1 = by_label(&points, "#1_64").area_um2;
        for other in ["#3_64", "#4_64", "#5_64", "#6_64"] {
            assert!(by_label(&points, other).area_um2 > a1, "{other}");
        }
    }

    #[test]
    fn mux_beats_array_on_clock_at_equal_adder() {
        let points = run(&Technology::g10_035());
        assert!(by_label(&points, "#5_64").clock_ns < by_label(&points, "#4_64").clock_ns);
        assert!(by_label(&points, "#6_64").clock_ns < by_label(&points, "#3_64").clock_ns);
    }

    #[test]
    fn figure_ranges_match_the_paper_loosely() {
        // Paper axes: area ~3e4..7e4 µm², delay ~100..400 ns.
        let points = run(&Technology::g10_035());
        for p in &points {
            assert!(
                (1.5e4..=1.2e5).contains(&p.area_um2),
                "{}: {}",
                p.label,
                p.area_um2
            );
            assert!(
                (80.0..=700.0).contains(&p.delay_ns),
                "{}: {}",
                p.label,
                p.delay_ns
            );
        }
    }

    #[test]
    fn there_are_real_tradeoffs() {
        // No single design dominates all others.
        let points = run(&Technology::g10_035());
        let space = evaluation_space(&points);
        let front = space.pareto_front(&[FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs]);
        assert!(front.len() >= 2, "front: {front:?}");
    }
}
