//! Fig. 9: the evaluation space for the Brickell (#8) and Montgomery (#2)
//! design families at 768-bit operands across all slicing strategies —
//! the figure that justifies making "Algorithm" a generalized issue.

use dse::eval::{EvalPoint, EvaluationSpace, FigureOfMerit};
use hwmodel::designs::{paper_designs, TABLE1_SLICE_WIDTHS};
use techlib::Technology;

use crate::fmt;

/// One scatter point.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Core label (`#2_64` style).
    pub label: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Area in µm².
    pub area_um2: f64,
    /// Delay of one 768-bit multiplication in ns.
    pub delay_ns: f64,
}

/// The operand length of the figure.
pub const EOL: u32 = 768;

/// Runs the Fig.-9 sweep (families #2 and #8, all slice widths dividing
/// the EOL).
pub fn run(tech: &Technology) -> Vec<Fig9Point> {
    let designs = paper_designs();
    let mut out = Vec::new();
    for family in [&designs[1], &designs[7]] {
        for &w in &TABLE1_SLICE_WIDTHS {
            if !EOL.is_multiple_of(w) {
                continue;
            }
            let arch = family.architecture(w).expect("valid width");
            let est = arch.estimate(EOL, tech);
            out.push(Fig9Point {
                label: family.core_label(w),
                algorithm: family.algorithm().to_string(),
                area_um2: est.area_um2,
                delay_ns: est.latency_ns,
            });
        }
    }
    out
}

/// The points as an evaluation space (for Pareto/cluster queries).
pub fn evaluation_space(points: &[Fig9Point]) -> EvaluationSpace {
    points
        .iter()
        .map(|p| {
            EvalPoint::new(p.label.clone())
                .with(FigureOfMerit::AreaUm2, p.area_um2)
                .with(FigureOfMerit::DelayNs, p.delay_ns)
        })
        .collect()
}

/// Renders the scatter as a table.
pub fn render(tech: &Technology) -> String {
    let points = run(tech);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.algorithm.clone(),
                fmt::num(p.area_um2),
                fmt::num(p.delay_ns),
            ]
        })
        .collect();
    format!(
        "Fig. 9 — evaluation space for Brickell (#8) and Montgomery (#2), {EOL}-bit operands\n\n{}",
        fmt::table(&["core", "algorithm", "area (µm²)", "delay (ns)"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn montgomery_consistently_dominates_brickell() {
        // The paper: "the relative superiority (in area and performance) of
        // the Montgomery algorithm ... is consistent, and is significant".
        let points = run(&Technology::g10_035());
        for m in points.iter().filter(|p| p.algorithm == "Montgomery") {
            let b = points
                .iter()
                .find(|p| {
                    p.algorithm == "Brickell"
                        && p.label.split('_').nth(1) == m.label.split('_').nth(1)
                })
                .expect("matching slicing");
            assert!(b.delay_ns > m.delay_ns, "{}: delay", m.label);
            assert!(b.area_um2 > m.area_um2, "{}: area", m.label);
        }
    }

    #[test]
    fn delay_magnitudes_match_the_figure() {
        // Paper axes: Montgomery ≈ 1.6–2.6 µs, Brickell ≈ 2.4–3.6 µs.
        let points = run(&Technology::g10_035());
        for p in &points {
            let us = p.delay_ns / 1000.0;
            match p.algorithm.as_str() {
                "Montgomery" => assert!((1.2..=4.5).contains(&us), "{}: {us}", p.label),
                _ => assert!((2.0..=6.5).contains(&us), "{}: {us}", p.label),
            }
        }
    }

    #[test]
    fn area_magnitudes_match_the_figure() {
        // Paper axis: ~4e5 to ~1.1e6 µm².
        let points = run(&Technology::g10_035());
        for p in &points {
            assert!(
                (1.5e5..=1.6e6).contains(&p.area_um2),
                "{}: {}",
                p.label,
                p.area_um2
            );
        }
    }

    #[test]
    fn pareto_front_is_all_montgomery() {
        let points = run(&Technology::g10_035());
        let space = evaluation_space(&points);
        let front = space.pareto_front(&[FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs]);
        for i in front {
            assert!(space.points()[i].label().starts_with("#2"));
        }
    }

    #[test]
    fn all_five_slicings_appear_per_family() {
        let points = run(&Technology::g10_035());
        assert_eq!(points.len(), 10); // 5 widths × 2 families (768 divisible by all)
    }
}
