//! Adder structures: area/critical-path models and the carry-save
//! functional primitive.
//!
//! The choice between carry-look-ahead and carry-save adders is the
//! dominant clock-rate lever in the paper's Table 1 (CSA clocks stay flat
//! with width, CLA clocks grow), and CC4 encodes "Montgomery with large
//! operands must use CSA" as a dominance constraint.

use std::fmt;

use bignum::UBig;
use techlib::{CellKind, Technology};

/// The adder structure used for the wide additions in a datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum AdderKind {
    /// Ripple-carry: smallest, carry chain linear in width.
    RippleCarry,
    /// Carry-look-ahead with 4-bit groups: delay logarithmic in width.
    CarryLookAhead,
    /// Carry-save (3:2 compressor row): constant delay, but the result is
    /// a redundant (sum, carry) pair needing a final conversion.
    CarrySave,
}

impl AdderKind {
    /// All kinds, for iteration.
    pub const ALL: [AdderKind; 3] = [
        AdderKind::RippleCarry,
        AdderKind::CarryLookAhead,
        AdderKind::CarrySave,
    ];

    /// Whether the adder produces a redundant (sum, carry) result.
    pub fn is_redundant(self) -> bool {
        matches!(self, AdderKind::CarrySave)
    }

    /// Area of one `width`-bit adder instance in gate equivalents.
    ///
    /// * Ripple-carry and carry-save: one full adder per bit.
    /// * Carry-look-ahead: full adders plus the group/section lookahead
    ///   tree (≈12 GE per 4-bit group, per level).
    pub fn area_ge(self, width: u32, tech: &Technology) -> f64 {
        let fa = tech.cell_model(CellKind::FullAdder).area_ge;
        match self {
            AdderKind::RippleCarry | AdderKind::CarrySave => width as f64 * fa,
            AdderKind::CarryLookAhead => {
                let mut lookahead_blocks = 0.0;
                let mut groups = (width as f64 / 4.0).ceil();
                while groups >= 1.0 {
                    lookahead_blocks += groups;
                    if groups == 1.0 {
                        break;
                    }
                    groups = (groups / 4.0).ceil();
                }
                width as f64 * fa + lookahead_blocks * 12.0
            }
        }
    }

    /// Critical path of one `width`-bit addition, in τ.
    ///
    /// * Ripple-carry: carry chain through `width − 1` cells plus the final
    ///   sum stage.
    /// * Carry-look-ahead: P/G generation, two gate levels per lookahead
    ///   level, a wire/fanout load term linear in width, and the sum XOR.
    /// * Carry-save: a single full-adder sum stage regardless of width.
    pub fn delay_tau(self, width: u32, tech: &Technology) -> f64 {
        let fa = tech.cell_model(CellKind::FullAdder);
        match self {
            AdderKind::RippleCarry => {
                (width.saturating_sub(1)) as f64 * fa.carry_delay_tau + fa.delay_tau
            }
            AdderKind::CarryLookAhead => {
                let levels = lookahead_levels(width);
                let xor = tech.cell_model(CellKind::Xor2).delay_tau;
                // P/G gen + 2 gate levels per lookahead level + fanout load
                // + sum XOR.
                xor + levels as f64 * 2.3 + 0.03 * width as f64 + xor
            }
            AdderKind::CarrySave => fa.delay_tau,
        }
    }
}

/// Number of 4-ary lookahead levels needed for `width` bits.
pub(crate) fn lookahead_levels(width: u32) -> u32 {
    let mut groups = width.div_ceil(4);
    let mut levels = 1;
    while groups > 1 {
        groups = groups.div_ceil(4);
        levels += 1;
    }
    levels
}

impl fmt::Display for AdderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AdderKind::RippleCarry => "ripple-carry",
            AdderKind::CarryLookAhead => "carry-look-ahead",
            AdderKind::CarrySave => "carry-save",
        };
        f.write_str(s)
    }
}

/// One carry-save compression step on arbitrary-width values: reduces
/// three addends to a redundant (sum, carry) pair with
/// `sum + carry == x + y + z`.
///
/// This is the bit-level behaviour of a row of full adders: per bit,
/// `s = x ⊕ y ⊕ z` and `c = majority(x, y, z)` shifted left by one.
///
/// # Examples
///
/// ```
/// use bignum::UBig;
/// use hwmodel::adder::csa3;
///
/// let (s, c) = csa3(&UBig::from(7u64), &UBig::from(5u64), &UBig::from(3u64));
/// assert_eq!(&s + &c, UBig::from(15u64));
/// ```
pub fn csa3(x: &UBig, y: &UBig, z: &UBig) -> (UBig, UBig) {
    let bits = x.bit_len().max(y.bit_len()).max(z.bit_len());
    let mut sum = UBig::zero();
    let mut carry = UBig::zero();
    for i in 0..bits {
        let (xb, yb, zb) = (x.bit(i), y.bit(i), z.bit(i));
        let s = xb ^ yb ^ zb;
        let c = (xb & yb) | (xb & zb) | (yb & zb);
        if s {
            sum.set_bit(i, true);
        }
        if c {
            carry.set_bit(i + 1, true);
        }
    }
    (sum, carry)
}

foundation::impl_json_enum!(AdderKind { RippleCarry, CarryLookAhead, CarrySave });

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::g10_035()
    }

    #[test]
    fn csa_delay_is_width_independent() {
        let t = tech();
        let d8 = AdderKind::CarrySave.delay_tau(8, &t);
        let d128 = AdderKind::CarrySave.delay_tau(128, &t);
        assert_eq!(d8, d128);
    }

    #[test]
    fn cla_delay_grows_with_width_but_sublinearly() {
        let t = tech();
        let d8 = AdderKind::CarryLookAhead.delay_tau(8, &t);
        let d128 = AdderKind::CarryLookAhead.delay_tau(128, &t);
        assert!(d128 > d8);
        assert!(d128 < 4.0 * d8, "CLA should scale much better than ripple");
    }

    #[test]
    fn ripple_is_linear_and_slowest_at_width() {
        let t = tech();
        let rca = AdderKind::RippleCarry.delay_tau(64, &t);
        let cla = AdderKind::CarryLookAhead.delay_tau(64, &t);
        let csa = AdderKind::CarrySave.delay_tau(64, &t);
        assert!(rca > cla && cla > csa);
    }

    #[test]
    fn cla_area_exceeds_csa_area() {
        let t = tech();
        for w in [8u32, 16, 32, 64, 128] {
            assert!(
                AdderKind::CarryLookAhead.area_ge(w, &t) > AdderKind::CarrySave.area_ge(w, &t),
                "w = {w}"
            );
        }
    }

    #[test]
    fn lookahead_levels_are_correct() {
        assert_eq!(lookahead_levels(4), 1);
        assert_eq!(lookahead_levels(8), 2); // two groups need a second level
        assert_eq!(lookahead_levels(16), 2);
        assert_eq!(lookahead_levels(64), 3);
        assert_eq!(lookahead_levels(256), 4);
    }

    #[test]
    fn csa3_small_exhaustive() {
        for x in 0..8u64 {
            for y in 0..8u64 {
                for z in 0..8u64 {
                    let (s, c) = csa3(&UBig::from(x), &UBig::from(y), &UBig::from(z));
                    assert_eq!((&s + &c).to_u64(), Some(x + y + z));
                }
            }
        }
    }

    #[test]
    fn csa3_preserves_sum() {
        foundation::check::run("csa3_preserves_sum", |g| {
            let (x, y, z) = (
                UBig::from_limbs(g.vec_u32(6)),
                UBig::from_limbs(g.vec_u32(6)),
                UBig::from_limbs(g.vec_u32(6)),
            );
            let (s, c) = csa3(&x, &y, &z);
            assert_eq!(&s + &c, &(&x + &y) + &z);
        });
    }

    #[test]
    fn redundancy_flag() {
        assert!(AdderKind::CarrySave.is_redundant());
        assert!(!AdderKind::CarryLookAhead.is_redundant());
        assert!(!AdderKind::RippleCarry.is_redundant());
    }
}
