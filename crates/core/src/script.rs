//! Session scripts: persistable, replayable conceptual-design state.
//!
//! The paper's layer descends from a design-process-management formalism
//! (Jacome & Director); the concrete facility that heritage demands is the
//! ability to capture a designer's exploration as data — to archive it,
//! hand it to a colleague, or replay it against a revised layer or a
//! refreshed reuse library.


use crate::error::DseError;
use crate::hierarchy::{CdoId, DesignSpace};
use crate::property::PropertyKind;
use crate::session::ExplorationSession;
use crate::value::Value;

/// One recorded designer action.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SessionAction {
    /// A requirement value was entered.
    SetRequirement {
        /// The requirement's name.
        property: String,
        /// The entered value.
        value: Value,
        /// The designer's rationale, if recorded.
        note: Option<String>,
    },
    /// A design issue (or description slot) was decided.
    Decide {
        /// The issue's name.
        issue: String,
        /// The chosen option.
        value: Value,
        /// The designer's rationale, if recorded.
        note: Option<String>,
    },
}

/// A replayable exploration transcript.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionScript {
    actions: Vec<SessionAction>,
}

impl SessionScript {
    /// An empty script.
    pub fn new() -> Self {
        SessionScript::default()
    }

    /// The recorded actions, in order.
    pub fn actions(&self) -> &[SessionAction] {
        &self.actions
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Captures the current state of a session as a script (undo-ed and
    /// superseded actions are not recorded — the script reproduces the
    /// session's *final* state, not its keystrokes).
    pub fn capture(session: &ExplorationSession<'_>) -> Self {
        let actions = session
            .log()
            .iter()
            .map(|d| match d.kind {
                PropertyKind::Requirement => SessionAction::SetRequirement {
                    property: d.property.clone(),
                    value: d.value.clone(),
                    note: d.note.clone(),
                },
                _ => SessionAction::Decide {
                    issue: d.property.clone(),
                    value: d.value.clone(),
                    note: d.note.clone(),
                },
            })
            .collect();
        SessionScript { actions }
    }

    /// Replays the script against a design space, producing a live
    /// session.
    ///
    /// # Errors
    ///
    /// Any action that is no longer legal (the layer changed, a constraint
    /// now fires) aborts the replay with the underlying error — exactly
    /// the signal a designer needs after a layer revision.
    pub fn replay<'a>(
        &self,
        space: &'a DesignSpace,
        root: CdoId,
    ) -> Result<ExplorationSession<'a>, DseError> {
        let mut session = ExplorationSession::new(space, root);
        for action in &self.actions {
            match action {
                SessionAction::SetRequirement {
                    property,
                    value,
                    note,
                } => {
                    session.set_requirement(property, value.clone())?;
                    if let Some(note) = note {
                        session.annotate(property, note.clone())?;
                    }
                }
                SessionAction::Decide { issue, value, note } => {
                    session.decide(issue, value.clone())?;
                    if let Some(note) = note {
                        session.annotate(issue, note.clone())?;
                    }
                }
            }
        }
        Ok(session)
    }
}

foundation::impl_json_enum!(SessionAction {
    SetRequirement { property, value, note },
    Decide { issue, value, note },
});
foundation::impl_json_struct!(SessionScript { actions });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::Property;
    use crate::value::Domain;

    fn space() -> (DesignSpace, CdoId) {
        let mut s = DesignSpace::new("script-test");
        let root = s.add_root("Block", "");
        s.add_property(
            root,
            Property::requirement("Width", Domain::int_range(1, 128), None, ""),
        )
        .unwrap();
        s.add_property(
            root,
            Property::generalized_issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        s.specialize(root, "Style").unwrap();
        (s, root)
    }

    #[test]
    fn capture_replay_roundtrip() {
        let (s, root) = space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("Width", Value::from(64)).unwrap();
        ses.decide("Style", Value::from("B")).unwrap();

        let script = SessionScript::capture(&ses);
        assert_eq!(script.len(), 2);
        let replayed = script.replay(&s, root).unwrap();
        assert_eq!(replayed.bindings(), ses.bindings());
        assert_eq!(replayed.focus(), ses.focus());
    }

    #[test]
    fn undone_actions_are_not_captured() {
        let (s, root) = space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("Width", Value::from(64)).unwrap();
        ses.decide("Style", Value::from("A")).unwrap();
        ses.undo().unwrap();
        let script = SessionScript::capture(&ses);
        assert_eq!(script.len(), 1);
        assert!(matches!(
            &script.actions()[0],
            SessionAction::SetRequirement { property, .. } if property == "Width"
        ));
    }

    #[test]
    fn replay_fails_loudly_when_the_layer_changed() {
        let (s, root) = space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("Width", Value::from(64)).unwrap();
        ses.decide("Style", Value::from("A")).unwrap();
        let script = SessionScript::capture(&ses);

        // A revised layer without the "A" option.
        let mut revised = DesignSpace::new("revised");
        let r2 = revised.add_root("Block", "");
        revised
            .add_property(
                r2,
                Property::requirement("Width", Domain::int_range(1, 128), None, ""),
            )
            .unwrap();
        revised
            .add_property(
                r2,
                Property::generalized_issue("Style", Domain::options(["B", "C"]), ""),
            )
            .unwrap();
        revised.specialize(r2, "Style").unwrap();
        let err = script.replay(&revised, r2).unwrap_err();
        assert!(matches!(err, DseError::ValueOutsideDomain { .. }));
    }

    #[test]
    fn notes_ride_along_with_scripts() {
        let (s, root) = space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("Width", Value::from(64)).unwrap();
        ses.annotate("Width", "bus width of the host SoC").unwrap();
        let script = SessionScript::capture(&ses);
        let replayed = script.replay(&s, root).unwrap();
        assert_eq!(replayed.note("Width"), Some("bus width of the host SoC"));
    }

    #[test]
    fn scripts_serialize() {
        let (s, root) = space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("Width", Value::from(32)).unwrap();
        let script = SessionScript::capture(&ses);
        let json = foundation::json::encode(&script);
        let back: SessionScript = foundation::json::decode(&json).unwrap();
        assert_eq!(script, back);
    }

    #[test]
    fn empty_script_replays_to_fresh_session() {
        let (s, root) = space();
        let script = SessionScript::new();
        assert!(script.is_empty());
        let ses = script.replay(&s, root).unwrap();
        assert!(ses.bindings().is_empty());
        assert_eq!(ses.focus(), root);
    }
}
