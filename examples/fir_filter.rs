//! The DSP domain: authoring and exploring a FIR-filter design space
//! layer — the same framework, a third application domain.
//!
//! ```text
//! cargo run --example fir_filter
//! ```

use design_space_layer::dse::eval::FigureOfMerit;
use design_space_layer::dse::value::Value;
use design_space_layer::dse_library::{fir, Explorer};
use design_space_layer::hwmodel::fir::{reference_fir, FirArchitecture};
use design_space_layer::techlib::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer = fir::build_layer()?;
    let library = fir::build_library(&Technology::g10_035());
    println!("FIR library: {} cores\n", library.len());

    // Requirements: a 32-tap, 12-bit filter at 25 Msps.
    let mut exp = Explorer::new(&layer.space, layer.fir, &library);
    exp.session.set_requirement("Taps", Value::from(32))?;
    exp.session.set_requirement("DataWidth", Value::from(12))?;
    exp.session
        .set_requirement("SampleRateMsps", Value::from(25.0))?;

    // The layer's CC9 rejects the serial family outright at this rate.
    match exp.session.decide("Parallelism", Value::from("serial")) {
        Err(e) => println!("serial family rejected: {e}"),
        Ok(()) => unreachable!("CC9 must fire"),
    }

    // Compare the surviving families' evaluation regions before deciding.
    for family in ["parallel", "semi-parallel"] {
        let mut probe = Explorer::new(&layer.space, layer.fir, &library);
        probe.session.set_requirement("Taps", Value::from(32))?;
        probe
            .session
            .set_requirement("DataWidth", Value::from(12))?;
        probe
            .session
            .set_requirement("SampleRateMsps", Value::from(25.0))?;
        probe.session.decide("Parallelism", Value::from(family))?;
        if let Some((lo, hi)) = probe.merit_range(&FigureOfMerit::AreaUm2) {
            println!("{family:<14} area range {lo:>9.0} .. {hi:>9.0} um^2");
        }
    }

    // Commit to semi-parallel: the smallest structure meeting the rate.
    exp.session
        .decide("Parallelism", Value::from("semi-parallel"))?;
    let core = exp.surviving_cores()[0];
    println!("\nselected: {core}");

    // Validate the selection functionally: low-pass-ish coefficients.
    let arch = FirArchitecture::new(32, 12, 12, 4)?;
    let coeffs: Vec<i64> = (0..32).map(|k| 32 - (k as i64 - 16).abs() * 2).collect();
    let input: Vec<i64> = (0..48)
        .map(|i| if i % 8 < 4 { 900 } else { -900 })
        .collect();
    let (output, cycles) = arch.simulate(&input, &coeffs)?;
    assert_eq!(output, reference_fir(&input, &coeffs));
    println!(
        "filtered {} samples in {} cycles ({} cycles/sample) — matches reference convolution",
        input.len(),
        cycles,
        arch.cycles_per_sample()
    );
    Ok(())
}
