//! Low-level multi-precision algorithms on [`UBig`](crate::UBig) values.
//!
//! The routines here are deliberately written at the limb level (32-bit
//! words with 64-bit intermediates) in the same style as the word-serial
//! software implementations modelled by the `swmodel` crate, so that the
//! operation counts used by the processor cost model correspond to real
//! work performed by real code.

mod add_sub;
mod div;
mod mul;

pub use add_sub::{add, sub};
pub use div::div_rem;
pub use mul::{mul, mul_karatsuba, mul_schoolbook};

#[cfg(test)]
mod tests {
    use crate::UBig;
    use proptest::prelude::*;

    /// Strategy: random UBig up to ~256 bits with interesting edge cases.
    pub(crate) fn ubig() -> impl Strategy<Value = UBig> {
        prop::collection::vec(any::<u32>(), 0..9).prop_map(UBig::from_limbs)
    }

    proptest! {
        #[test]
        fn add_commutes(a in ubig(), b in ubig()) {
            prop_assert_eq!(&a + &b, &b + &a);
        }

        #[test]
        fn add_associates(a in ubig(), b in ubig(), c in ubig()) {
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        }

        #[test]
        fn add_then_sub_roundtrips(a in ubig(), b in ubig()) {
            prop_assert_eq!(&(&a + &b) - &b, a);
        }

        #[test]
        fn sub_underflow_is_none(a in ubig(), b in ubig()) {
            if a < b {
                prop_assert!(a.checked_sub(&b).is_none());
            } else {
                prop_assert!(a.checked_sub(&b).is_some());
            }
        }

        #[test]
        fn mul_commutes(a in ubig(), b in ubig()) {
            prop_assert_eq!(&a * &b, &b * &a);
        }

        #[test]
        fn mul_distributes_over_add(a in ubig(), b in ubig(), c in ubig()) {
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        }

        #[test]
        fn mul_identity_and_zero(a in ubig()) {
            prop_assert_eq!(&a * &UBig::one(), a.clone());
            prop_assert!((&a * &UBig::zero()).is_zero());
        }

        #[test]
        fn karatsuba_matches_schoolbook(a in ubig(), b in ubig()) {
            prop_assert_eq!(
                super::mul_karatsuba(&a, &b),
                super::mul_schoolbook(&a, &b)
            );
        }

        #[test]
        fn div_rem_reconstructs(a in ubig(), b in ubig()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(&(&q * &b) + &r, a);
        }

        #[test]
        fn mod_pow_matches_iterated_mul(a in ubig(), m in ubig(), e in 0u32..12) {
            prop_assume!(!m.is_zero());
            let fast = a.mod_pow(&UBig::from(e as u64), &m);
            let mut slow = UBig::one().rem(&m);
            for _ in 0..e {
                slow = slow.mod_mul(&a, &m);
            }
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn u64_cross_check_exhaustive_small() {
        for a in (0u64..200).step_by(7) {
            for b in (0u64..200).step_by(11) {
                let (ba, bb) = (UBig::from(a), UBig::from(b));
                assert_eq!((&ba + &bb).to_u64(), Some(a + b));
                assert_eq!((&ba * &bb).to_u64(), Some(a * b));
                if b != 0 {
                    let (q, r) = ba.div_rem(&bb);
                    assert_eq!(q.to_u64(), Some(a / b));
                    assert_eq!(r.to_u64(), Some(a % b));
                }
            }
        }
    }
}
