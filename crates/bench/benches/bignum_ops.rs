//! Microbenchmarks of the `bignum` substrate: the arithmetic every other
//! layer of the reproduction stands on.

use bignum::{uniform_below, MontgomeryContext, UBig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn operands(bits: u32, seed: u64) -> (UBig, UBig, UBig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = uniform_below(&UBig::power_of_two(bits), &mut rng);
    m.set_bit(bits - 1, true);
    m.set_bit(0, true);
    let a = uniform_below(&m, &mut rng);
    let b = uniform_below(&m, &mut rng);
    (a, b, m)
}

fn bench_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum/mul");
    for bits in [256u32, 1024, 4096] {
        let (a, b, _) = operands(bits, 1);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| std::hint::black_box(&a) * std::hint::black_box(&b));
        });
    }
    group.finish();
}

fn bench_div_rem(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum/div_rem");
    for bits in [256u32, 1024] {
        let (a, b, m) = operands(bits, 2);
        let prod = &a * &b;
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| std::hint::black_box(&prod).div_rem(std::hint::black_box(&m)));
        });
    }
    group.finish();
}

fn bench_mont_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum/mont_mul");
    for bits in [256u32, 1024] {
        let (a, b, m) = operands(bits, 3);
        let ctx = MontgomeryContext::new(&m).expect("odd modulus");
        let (abar, bbar) = (ctx.to_mont(&a), ctx.to_mont(&b));
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| ctx.mont_mul(std::hint::black_box(&abar), std::hint::black_box(&bbar)));
        });
    }
    group.finish();
}

fn bench_mod_pow(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum/mod_pow");
    group.sample_size(10);
    for bits in [256u32, 512] {
        let (a, e, m) = operands(bits, 4);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| std::hint::black_box(&a).mod_pow(&e, &m));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mul,
    bench_div_rem,
    bench_mont_mul,
    bench_mod_pow
);
criterion_main!(benches);
