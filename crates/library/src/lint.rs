//! Library/layer consistency linting.
//!
//! The design space layer indexes cores through their design-option
//! bindings, so a core whose bindings contradict the layer's declared
//! domains (a radix of 3, an unknown adder structure, …) would silently
//! disappear from every exploration. The lint makes such mismatches loud:
//! a design environment should run it whenever it imports a third-party
//! library under its layer.

use dse::hierarchy::{CdoId, DesignSpace};
use dse::property::PropertyKind;

use crate::reuse::ReuseLibrary;

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct LintFinding {
    /// The offending core.
    pub core: String,
    /// The property involved.
    pub property: String,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} — {}", self.core, self.property, self.message)
    }
}

/// Checks every core's bindings against the properties visible at `cdo`
/// (the class the library is indexed under):
///
/// * a binding for a property the layer does not know is flagged (likely
///   a typo that would make filtering silently miss it),
/// * a binding outside the property's declared domain is flagged,
/// * a binding for a *requirement* is flagged (cores embody decisions,
///   not application requirements).
pub fn lint_library(space: &DesignSpace, cdo: CdoId, library: &ReuseLibrary) -> Vec<LintFinding> {
    // Collect every property visible anywhere in the subtree rooted at
    // `cdo` (cores may bind leaf-level issues).
    let mut visible = Vec::new();
    let mut stack = vec![cdo];
    while let Some(id) = stack.pop() {
        for (_, p) in space.effective_properties(id) {
            if !visible.iter().any(|(n, _)| *n == p.name()) {
                visible.push((p.name(), p));
            }
        }
        stack.extend(space.node(id).children().iter().copied());
    }

    let mut findings = Vec::new();
    for core in library.cores() {
        for (name, value) in core.bindings() {
            match visible.iter().find(|(n, _)| n == name) {
                None => findings.push(LintFinding {
                    core: core.name().to_owned(),
                    property: name.clone(),
                    message: "binds a property the layer does not declare".to_owned(),
                }),
                Some((_, prop)) => {
                    if prop.kind() == PropertyKind::Requirement {
                        findings.push(LintFinding {
                            core: core.name().to_owned(),
                            property: name.clone(),
                            message: "binds an application requirement".to_owned(),
                        });
                    } else if !prop.domain().contains(value) {
                        findings.push(LintFinding {
                            core: core.name().to_owned(),
                            property: name.clone(),
                            message: format!(
                                "value {value} is outside the declared domain {}",
                                prop.domain()
                            ),
                        });
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_record::CoreRecord;
    use crate::crypto;
    use techlib::Technology;

    #[test]
    fn shipped_crypto_library_lints_clean() {
        let layer = crypto::build_layer().unwrap();
        let lib = crypto::build_library(&Technology::g10_035(), 768);
        let findings = lint_library(&layer.space, layer.omm, &lib);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn out_of_domain_binding_is_flagged() {
        let layer = crypto::build_layer().unwrap();
        let mut lib = ReuseLibrary::new("broken");
        lib.push(
            CoreRecord::new("bad-radix", "vendor", "")
                .bind("ImplementationStyle", "Hardware")
                .bind("Radix", 3), // not a power of two
        );
        let findings = lint_library(&layer.space, layer.omm, &lib);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].property, "Radix");
        assert!(findings[0].message.contains("outside the declared domain"));
    }

    #[test]
    fn unknown_property_is_flagged() {
        let layer = crypto::build_layer().unwrap();
        let mut lib = ReuseLibrary::new("typo");
        lib.push(CoreRecord::new("typo-core", "vendor", "").bind("Algoritm", "Montgomery"));
        let findings = lint_library(&layer.space, layer.omm, &lib);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("does not declare"));
        assert!(findings[0].to_string().contains("typo-core"));
    }

    #[test]
    fn requirement_binding_is_flagged() {
        let layer = crypto::build_layer().unwrap();
        let mut lib = ReuseLibrary::new("confused");
        lib.push(CoreRecord::new("req-core", "vendor", "").bind("EOL", 768));
        let findings = lint_library(&layer.space, layer.omm, &lib);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("application requirement"));
    }

    #[test]
    fn leaf_level_bindings_are_visible_from_the_root() {
        // AdderStructure is declared at the Montgomery/Brickell leaves,
        // yet cores bound under the OMM root must lint clean.
        let layer = crypto::build_layer().unwrap();
        let mut lib = ReuseLibrary::new("leaf");
        lib.push(CoreRecord::new("leaf-core", "vendor", "").bind("AdderStructure", "carry-save"));
        assert!(lint_library(&layer.space, layer.omm, &lib).is_empty());
    }
}
