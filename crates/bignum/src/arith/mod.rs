//! Low-level multi-precision algorithms on [`UBig`](crate::UBig) values.
//!
//! The routines here are deliberately written at the limb level (32-bit
//! words with 64-bit intermediates) in the same style as the word-serial
//! software implementations modelled by the `swmodel` crate, so that the
//! operation counts used by the processor cost model correspond to real
//! work performed by real code.

mod add_sub;
mod div;
mod mul;

pub use add_sub::{add, sub};
pub use div::div_rem;
pub use mul::{mul, mul_karatsuba, mul_schoolbook};

#[cfg(test)]
mod tests {
    use crate::UBig;
    use foundation::check::{self, Gen};

    /// Generator: random UBig up to ~256 bits with interesting edge cases
    /// (the short-limb lengths cover zero and single-limb values often).
    fn ubig(g: &mut Gen) -> UBig {
        UBig::from_limbs(g.vec_u32(9))
    }

    #[test]
    fn add_commutes() {
        check::run("add_commutes", |g| {
            let (a, b) = (ubig(g), ubig(g));
            assert_eq!(&a + &b, &b + &a);
        });
    }

    #[test]
    fn add_associates() {
        check::run("add_associates", |g| {
            let (a, b, c) = (ubig(g), ubig(g), ubig(g));
            assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        });
    }

    #[test]
    fn add_then_sub_roundtrips() {
        check::run("add_then_sub_roundtrips", |g| {
            let (a, b) = (ubig(g), ubig(g));
            assert_eq!(&(&a + &b) - &b, a);
        });
    }

    #[test]
    fn sub_underflow_is_none() {
        check::run("sub_underflow_is_none", |g| {
            let (a, b) = (ubig(g), ubig(g));
            if a < b {
                assert!(a.checked_sub(&b).is_none());
            } else {
                assert!(a.checked_sub(&b).is_some());
            }
        });
    }

    #[test]
    fn mul_commutes() {
        check::run("mul_commutes", |g| {
            let (a, b) = (ubig(g), ubig(g));
            assert_eq!(&a * &b, &b * &a);
        });
    }

    #[test]
    fn mul_distributes_over_add() {
        check::run("mul_distributes_over_add", |g| {
            let (a, b, c) = (ubig(g), ubig(g), ubig(g));
            assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        });
    }

    #[test]
    fn mul_identity_and_zero() {
        check::run("mul_identity_and_zero", |g| {
            let a = ubig(g);
            assert_eq!(&a * &UBig::one(), a.clone());
            assert!((&a * &UBig::zero()).is_zero());
        });
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        check::run("karatsuba_matches_schoolbook", |g| {
            let (a, b) = (ubig(g), ubig(g));
            assert_eq!(super::mul_karatsuba(&a, &b), super::mul_schoolbook(&a, &b));
        });
    }

    #[test]
    fn div_rem_reconstructs() {
        check::run("div_rem_reconstructs", |g| {
            let (a, mut b) = (ubig(g), ubig(g));
            if b.is_zero() {
                b = UBig::one();
            }
            let (q, r) = a.div_rem(&b);
            assert!(r < b);
            assert_eq!(&(&q * &b) + &r, a);
        });
    }

    #[test]
    fn mod_pow_matches_iterated_mul() {
        check::run("mod_pow_matches_iterated_mul", |g| {
            let (a, mut m) = (ubig(g), ubig(g));
            let e = g.u32_in(0, 12);
            if m.is_zero() {
                m = UBig::one();
            }
            let fast = a.mod_pow(&UBig::from(e as u64), &m);
            let mut slow = UBig::one().rem(&m);
            for _ in 0..e {
                slow = slow.mod_mul(&a, &m);
            }
            assert_eq!(fast, slow);
        });
    }

    #[test]
    fn u64_cross_check_exhaustive_small() {
        for a in (0u64..200).step_by(7) {
            for b in (0u64..200).step_by(11) {
                let (ba, bb) = (UBig::from(a), UBig::from(b));
                assert_eq!((&ba + &bb).to_u64(), Some(a + b));
                assert_eq!((&ba * &bb).to_u64(), Some(a * b));
                if let (Some(qq), Some(rr)) = (a.checked_div(b), a.checked_rem(b)) {
                    let (q, r) = ba.div_rem(&bb);
                    assert_eq!(q.to_u64(), Some(qq));
                    assert_eq!(r.to_u64(), Some(rr));
                }
            }
        }
    }
}
