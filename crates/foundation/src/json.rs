//! A self-contained JSON codec: value type, parser, serializer, and the
//! [`ToJson`]/[`FromJson`] traits that replace the serde derives.
//!
//! The encoding conventions mirror serde's externally-tagged default
//! closely enough that the emitted files stay human-readable:
//!
//! * structs → objects keyed by field name;
//! * unit enum variants → their name as a string;
//! * tuple enum variants → `{"Variant": [field, ...]}`;
//! * struct enum variants → `{"Variant": {"field": ..., ...}}`;
//! * maps → objects (non-string keys are embedded as their compact JSON
//!   encoding, and recovered on the way back in).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Integers and floats are kept apart so that `u64`/`i64` round-trip
/// exactly; [`FromJson`] for float types accepts either.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Error from parsing or decoding JSON.
///
/// Parse errors carry the 1-based `line`/`col` of the offending byte;
/// decode (shape-mismatch) errors report position `0:0`.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    msg: String,
    /// 1-based line of a parse error, 0 for decode errors.
    pub line: usize,
    /// 1-based column of a parse error, 0 for decode errors.
    pub col: usize,
}

impl JsonError {
    /// A decode (shape) error with no source position.
    pub fn decode(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            line: 0,
            col: 0,
        }
    }

    /// The standard "expected X, got Y" decode error.
    pub fn type_mismatch(ty: &str, want: &str, got: &Json) -> Self {
        JsonError::decode(format!("{ty}: expected {want}, got {}", got.kind_name()))
    }

    fn parse(msg: impl Into<String>, line: usize, col: usize) -> Self {
        JsonError {
            msg: msg.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {} column {}", self.msg, self.line, self.col)
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// The value's kind, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "int",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// `Some` for `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some` for `Int`, and for `Float` with an exactly-integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(x) if x.fract() == 0.0 && x.abs() < 9.0e18 => Some(*x as i64),
            _ => None,
        }
    }

    /// `Some` for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// `Some` for `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `Some` for `Array`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `Some` for `Object`.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Parses a JSON document. The whole input must be consumed.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser::new(text);
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Two-space-indented serialization.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral floats, so the
                    // reader can't silently lose the number's float-ness.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

/// Compact serialization (`to_string()` comes with it via `ToString`).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError::parse(msg, self.line, self.pos - self.line_start + 1)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(members)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a low surrogate must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 in string"));
                    }
                    match std::str::from_utf8(&self.bytes[start..start + len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape (need 4 hex digits)")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        match self.peek() {
            Some(b'0') => {
                self.bump();
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::Float(x)),
            Err(_) => Err(self.err("number out of range")),
        }
    }
}

/// Serialize into a [`Json`] tree. The replacement for `serde::Serialize`.
pub trait ToJson {
    /// The value as a JSON tree.
    fn to_json(&self) -> Json;
}

/// Rebuild from a [`Json`] tree. The replacement for `serde::Deserialize`.
pub trait FromJson: Sized {
    /// Decodes the value, reporting shape mismatches as errors.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Compact-encodes any [`ToJson`] value.
pub fn encode<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Pretty-encodes any [`ToJson`] value.
pub fn encode_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses and decodes in one step.
pub fn decode<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

// ---------------------------------------------------------------------------
// Trait impls for the primitive vocabulary the workspace uses.

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::type_mismatch("bool", "bool", v))
    }
}

macro_rules! json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| JsonError::type_mismatch(stringify!($ty), "integer", v))?;
                <$ty>::try_from(i).map_err(|_| {
                    JsonError::decode(format!("{i} out of range for {}", stringify!($ty)))
                })
            }
        }
    )+};
}

json_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! json_big_uint {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                match i64::try_from(*self) {
                    Ok(i) => Json::Int(i),
                    Err(_) => Json::Float(*self as f64),
                }
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| JsonError::type_mismatch(stringify!($ty), "integer", v))?;
                <$ty>::try_from(i).map_err(|_| {
                    JsonError::decode(format!("{i} out of range for {}", stringify!($ty)))
                })
            }
        }
    )+};
}

json_big_uint!(u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::type_mismatch("f64", "number", v))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|x| x as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::type_mismatch("String", "string", v))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::type_mismatch("Vec", "array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::type_mismatch("tuple", "2-element array", v)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::type_mismatch("tuple", "3-element array", v)),
        }
    }
}

impl<K: ToJson + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_json() {
                        Json::Str(s) => s,
                        other => other.to_string(),
                    };
                    (key, v.to_json())
                })
                .collect(),
        )
    }
}

impl<K: FromJson + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| JsonError::type_mismatch("map", "object", v))?;
        let mut out = BTreeMap::new();
        for (k, val) in obj {
            // String-like keys decode directly; structured keys were embedded
            // as their compact JSON encoding.
            let key = match K::from_json(&Json::Str(k.clone())) {
                Ok(key) => key,
                Err(first) => match Json::parse(k) {
                    Ok(parsed) => K::from_json(&parsed)?,
                    Err(_) => return Err(first),
                },
            };
            out.insert(key, V::from_json(val)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-replacement macros.

/// Looks up a struct field, treating a missing member as `null` (so
/// `Option` fields may be omitted, as with serde's `default`).
pub fn field<T: FromJson>(
    obj: &[(String, Json)],
    name: &str,
    ty: &str,
) -> Result<T, JsonError> {
    let value = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Json::Null);
    T::from_json(value).map_err(|e| JsonError::decode(format!("{ty}.{name}: {e}")))
}

/// Pulls the next element of a tuple-variant payload.
pub fn seq_next<T: FromJson>(
    it: &mut std::slice::Iter<'_, Json>,
    ctx: &str,
) -> Result<T, JsonError> {
    let v = it
        .next()
        .ok_or_else(|| JsonError::decode(format!("{ctx}: missing tuple element")))?;
    T::from_json(v).map_err(|e| JsonError::decode(format!("{ctx}: {e}")))
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields, as an
/// object keyed by field name — the replacement for
/// `#[derive(Serialize, Deserialize)]` on structs.
///
/// ```
/// struct P { x: i64, label: String }
/// foundation::impl_json_struct!(P { x, label });
/// # use foundation::json::{decode, encode};
/// let p: P = decode(&encode(&P { x: 3, label: "a".into() })).unwrap();
/// assert_eq!(p.x, 3);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Object(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                let obj = v.as_object().ok_or_else(|| {
                    $crate::json::JsonError::type_mismatch(stringify!($ty), "object", v)
                })?;
                Ok($ty {
                    $($field: $crate::json::field(obj, stringify!($field), stringify!($ty))?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a single-field tuple struct as
/// the transparent encoding of its inner value.
#[macro_export]
macro_rules! impl_json_newtype {
    ($ty:ident) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok($ty($crate::json::FromJson::from_json(v)?))
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum, using serde's
/// externally-tagged shape: unit variants as strings, tuple variants as
/// `{"Variant": [..]}`, struct variants as `{"Variant": {..}}`. Tuple
/// variants take placeholder binder names (one per field):
///
/// ```
/// # #[derive(PartialEq, Debug)]
/// enum E { A, Pair(i64, i64), At { x: i64 } }
/// foundation::impl_json_enum!(E { A, Pair(a, b), At { x } });
/// # use foundation::json::{decode, encode};
/// assert_eq!(decode::<E>(&encode(&E::Pair(1, 2))).unwrap(), E::Pair(1, 2));
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $( $var:ident
        $( ( $($tf:ident),+ $(,)? ) )?
        $( { $($sf:ident),+ $(,)? } )?
    ),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $(
                        $ty::$var $( ( $($tf),+ ) )? $( { $($sf),+ } )? => {
                            #[allow(unused_mut, unused_assignments)]
                            let mut payload: Option<$crate::json::Json> = None;
                            $({
                                let arr: Vec<$crate::json::Json> =
                                    vec![$($crate::json::ToJson::to_json($tf)),+];
                                payload = Some($crate::json::Json::Array(arr));
                            })?
                            $({
                                let fields: Vec<(String, $crate::json::Json)> = vec![$((
                                    stringify!($sf).to_string(),
                                    $crate::json::ToJson::to_json($sf),
                                )),+];
                                payload = Some($crate::json::Json::Object(fields));
                            })?
                            match payload {
                                None => $crate::json::Json::Str(stringify!($var).to_string()),
                                Some(p) => $crate::json::Json::Object(vec![(
                                    stringify!($var).to_string(),
                                    p,
                                )]),
                            }
                        }
                    )+
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                match v {
                    $crate::json::Json::Str(s) => {
                        $($crate::__impl_json_enum_from_str!(
                            $ty, $var, s, $( ( $($tf),+ ) )? $( { $($sf),+ } )?
                        );)+
                        Err($crate::json::JsonError::decode(format!(
                            "unknown {} variant {s:?}",
                            stringify!($ty)
                        )))
                    }
                    $crate::json::Json::Object(obj) if obj.len() == 1 => {
                        let (tag, payload) = &obj[0];
                        $($crate::__impl_json_enum_from_payload!(
                            $ty, $var, tag, payload, $( ( $($tf),+ ) )? $( { $($sf),+ } )?
                        );)+
                        Err($crate::json::JsonError::decode(format!(
                            "unknown {} variant {tag:?}",
                            stringify!($ty)
                        )))
                    }
                    other => Err($crate::json::JsonError::type_mismatch(
                        stringify!($ty),
                        "string or single-key object",
                        other,
                    )),
                }
            }
        }
    };
}

/// Internal: the unit-variant arm of [`impl_json_enum!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __impl_json_enum_from_str {
    ($ty:ident, $var:ident, $s:ident,) => {
        if $s == stringify!($var) {
            return Ok($ty::$var);
        }
    };
    ($ty:ident, $var:ident, $s:ident, ( $($tf:ident),+ )) => {};
    ($ty:ident, $var:ident, $s:ident, { $($sf:ident),+ }) => {};
}

/// Internal: the payload-variant arm of [`impl_json_enum!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __impl_json_enum_from_payload {
    ($ty:ident, $var:ident, $tag:ident, $payload:ident,) => {};
    ($ty:ident, $var:ident, $tag:ident, $payload:ident, ( $($tf:ident),+ )) => {
        if $tag == stringify!($var) {
            let arr = $payload.as_array().ok_or_else(|| {
                $crate::json::JsonError::type_mismatch(
                    stringify!($ty),
                    "array payload",
                    $payload,
                )
            })?;
            let want = [$(stringify!($tf)),+].len();
            if arr.len() != want {
                return Err($crate::json::JsonError::decode(format!(
                    "{}::{} expects {want} fields, got {}",
                    stringify!($ty),
                    stringify!($var),
                    arr.len()
                )));
            }
            let mut it = arr.iter();
            return Ok($ty::$var(
                $($crate::json::seq_next(&mut it, stringify!($tf))?),+
            ));
        }
    };
    ($ty:ident, $var:ident, $tag:ident, $payload:ident, { $($sf:ident),+ }) => {
        if $tag == stringify!($var) {
            let fields = $payload.as_object().ok_or_else(|| {
                $crate::json::JsonError::type_mismatch(
                    stringify!($ty),
                    "object payload",
                    $payload,
                )
            })?;
            return Ok($ty::$var {
                $($sf: $crate::json::field(fields, stringify!($sf), stringify!($ty))?,)+
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-1.5e-2").unwrap(), Json::Float(-0.015));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_collections() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nbreak \"quoted\" back\\slash \t µ 😀 \u{1}";
        let encoded = Json::Str(original.into()).to_string();
        assert_eq!(Json::parse(&encoded).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse(r#""µ 😀""#).unwrap(),
            Json::Str("µ 😀".into())
        );
    }

    #[test]
    fn error_positions_are_reported() {
        let e = Json::parse("{\"a\": 1,\n  nope}").unwrap_err();
        assert_eq!((e.line, e.col), (2, 3));
        let e = Json::parse("[1, 2").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("01").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn numbers_keep_their_kind() {
        let v = Json::parse("[1, 1.0, 9223372036854775807, 1e20]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0], Json::Int(1));
        assert_eq!(a[1], Json::Float(1.0));
        assert_eq!(a[2], Json::Int(i64::MAX));
        assert!(matches!(a[3], Json::Float(_)));
        // The serializer keeps floats recognizable.
        assert_eq!(Json::Float(1.0).to_string(), "1.0");
        assert_eq!(Json::Int(1).to_string(), "1");
    }

    #[test]
    fn pretty_output_reparses() {
        let v = Json::parse(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        n: u32,
        tag: String,
        opt: Option<f64>,
    }
    impl_json_struct!(Demo { n, tag, opt });

    #[derive(Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(f64, f64),
        Poly { sides: u32, label: String },
    }
    impl_json_enum!(Shape {
        Dot,
        Line(a, b),
        Poly { sides, label }
    });

    // Ord for the map-key test only: order by encoded form.
    impl Eq for Shape {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Ord for Shape {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            encode(self).cmp(&encode(other))
        }
    }
    impl PartialOrd for Shape {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    #[test]
    fn struct_macro_roundtrips() {
        let d = Demo {
            n: 9,
            tag: "t".into(),
            opt: None,
        };
        assert_eq!(decode::<Demo>(&encode(&d)).unwrap(), d);
        // A missing Option member decodes as None.
        assert_eq!(
            decode::<Demo>(r#"{"n": 9, "tag": "t"}"#).unwrap(),
            Demo { n: 9, tag: "t".into(), opt: None }
        );
        // A missing required member is an error naming the field.
        let e = decode::<Demo>(r#"{"tag": "t"}"#).unwrap_err();
        assert!(e.to_string().contains("Demo.n"), "{e}");
    }

    #[test]
    fn enum_macro_roundtrips_all_shapes() {
        for s in [
            Shape::Dot,
            Shape::Line(1.5, -2.0),
            Shape::Poly {
                sides: 6,
                label: "hex".into(),
            },
        ] {
            let text = encode(&s);
            assert_eq!(decode::<Shape>(&text).unwrap(), s, "{text}");
        }
        assert_eq!(encode(&Shape::Dot), "\"Dot\"");
        assert!(decode::<Shape>("\"Nope\"").is_err());
        assert!(decode::<Shape>(r#"{"Line": [1]}"#).is_err());
    }

    #[test]
    fn maps_with_structured_keys_roundtrip() {
        let mut m: BTreeMap<Shape, u32> = BTreeMap::new();
        m.insert(Shape::Dot, 1);
        m.insert(
            Shape::Poly {
                sides: 3,
                label: "tri".into(),
            },
            2,
        );
        let back: BTreeMap<Shape, u32> = decode(&encode(&m)).unwrap();
        assert_eq!(back, m);
    }
}
