//! The benchmark/experiment harness: regenerates every table and figure
//! of the paper's evaluation (see `DESIGN.md` for the experiment index
//! and `EXPERIMENTS.md` for the paper-vs-measured record).
//!
//! Run everything with
//!
//! ```text
//! cargo run -p bench --bin tables -- all
//! ```
//!
//! or a single artifact with e.g. `-- table1`, `-- fig9`,
//! `-- ablation-cc2`.

pub mod experiments;
pub mod fmt;
pub mod suites;
