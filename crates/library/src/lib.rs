#![warn(missing_docs)]
//! Reuse-library substrate and the shipped domain layers.
//!
//! The design space layer sits *on top of* reuse libraries (the paper's
//! Fig. 1): cores live in libraries maintained by IP providers, and the
//! layer indexes them through the areas of design decision. This crate
//! provides:
//!
//! * [`CoreRecord`] / [`ReuseLibrary`] — reusable designs with their
//!   design-option bindings and figures of merit, JSON-serializable so
//!   layers and libraries can be exchanged between design environments,
//! * [`Explorer`] — an exploration session joined with one or more reuse
//!   libraries: every decision transparently filters the surviving cores
//!   and exposes their evaluation-space ranges,
//! * [`crypto`] — the paper's Section-5 cryptography layer (Figs. 5, 7,
//!   8, 10, 11, 13) with its library of hardware cores (from `hwmodel`)
//!   and software routines (from `swmodel`),
//! * [`idct`] — the IDCT layer of the motivating example (Figs. 2–4),
//!   in both the abstraction-based and the generalization-based
//!   organisation, for the Fig. 2-vs-Fig. 3 comparison,
//! * [`estimators`] — [`dse::estimate::Estimator`] implementations backed
//!   by the `hwmodel`/`swmodel` substrates (the paper's CC3 tool).
//!
//! # Example
//!
//! ```
//! use dse_library::crypto;
//! use dse::prelude::*;
//!
//! # fn main() -> Result<(), dse::DseError> {
//! let layer = crypto::build_layer()?;
//! let library = crypto::build_library(&techlib::Technology::g10_035(), 768);
//! let mut exp = dse_library::Explorer::new(&layer.space, layer.omm, &library);
//! exp.session.set_requirement("EOL", Value::from(768))?;
//! exp.session.set_requirement("MaxLatencyUs", Value::from(8.0))?;
//! exp.session.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))?;
//! let before = exp.surviving_cores().len();
//! exp.session.decide("ImplementationStyle", Value::from("Hardware"))?;
//! assert!(exp.surviving_cores().len() < before);
//! # Ok(())
//! # }
//! ```

mod core_record;
pub mod core_store;
pub mod crypto;
pub mod estimators;
mod explorer;
pub mod fir;
pub mod idct;
pub mod lint;
mod loader;
mod reuse;
pub mod synthetic;

pub use core_record::CoreRecord;
pub use core_store::{roster_from_indices, roster_indices, CoreStore};
pub use explorer::{Explorer, ExplorerEngine};
pub use lint::lint_library;
pub use loader::{load_all_layers, load_layer, LoadedLayer, PAPER_EOL};
pub use reuse::{LibraryError, ReuseLibrary};
