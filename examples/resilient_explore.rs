//! The Section-5 walkthrough under hostile conditions: every estimation
//! tool is wrapped in a seeded fault injector (panics, transient
//! failures, fuel exhaustion, NaN and garbage outputs), yet the
//! exploration completes, every figure carries its provenance, and a
//! journaled session survives a simulated crash mid-append.
//!
//! ```text
//! cargo run --example resilient_explore
//! ```

use design_space_layer::coproc::spec::KocSpec;
use design_space_layer::coproc::walkthrough;
use design_space_layer::dse::prelude::*;
use design_space_layer::dse::robust::fault::silence_injected_panics;
use design_space_layer::dse::estimate::EstimatorRegistry;
use design_space_layer::dse_library::load_layer;
use design_space_layer::dse_library::estimators::{
    full_registry, BehaviorDelayEstimator, CoarseDelayEstimator,
};
use design_space_layer::dse_library::CoreRecord;
use design_space_layer::techlib::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    silence_injected_panics();
    let spec = KocSpec::paper();
    let tech = Technology::g10_035();

    // 1. The walkthrough with healthy tools: figures come back
    //    provenance-tagged as Estimated.
    let clean = walkthrough::run(&spec, &tech)?;
    println!("fault-free walkthrough:");
    for (name, fig) in &clean.estimates {
        println!("  {name:<16} = {fig}");
    }
    println!("  degradation: {}\n", clean.degradation.label());

    // 2. The same walkthrough with tools behind seeded fault injectors.
    //    The supervisor contains each failure and walks the fallback
    //    ladder: detailed tool -> coarse tool -> the derived property's
    //    declared range. The exploration itself — pruning, selection,
    //    functional verification — is untouched either way.
    let always = FaultPlan::new(0xC0FFEE, 16, FaultRates::uniform(0.2));

    // 2a. Only the detailed tool crashes: the coarse tool answers.
    let mut partial = EstimatorRegistry::new();
    partial.register(Box::new(
        always.wrap(Box::new(BehaviorDelayEstimator::new(tech.clone()))),
    ));
    partial.register(Box::new(CoarseDelayEstimator::new(tech.clone())));
    let report = walkthrough::run_supervised(&spec, &tech, partial)?;
    println!("detailed tool faulting on every call (seed {:#x}):", always.seed());
    for (name, fig) in &report.estimates {
        println!("  {name:<16} = {fig}");
    }
    println!("  degradation: {}", report.degradation.label());

    // 2b. Every tool faulting on every call: the declared range of the
    //     derived property is the last-resort answer.
    let registry = always.wrap_registry(full_registry(tech.clone()));
    let chaotic = walkthrough::run_supervised(&spec, &tech, registry)?;
    println!("all tools faulting on every call:");
    for (name, fig) in &chaotic.estimates {
        println!("  {name:<16} = {fig}");
    }
    println!("  degradation: {}", chaotic.degradation.label());
    assert_eq!(
        clean.selected.as_ref().map(CoreRecord::name),
        chaotic.selected.as_ref().map(CoreRecord::name),
        "faults may degrade figures but never the selection"
    );
    println!(
        "  selected {} (same core as the fault-free run), verified: {}\n",
        chaotic.selected.as_ref().expect("satisfiable spec").name(),
        chaotic.functionally_verified
    );

    // 3. Crash-safe sessions: decisions go through a journal; tearing
    //    the final record (a crash mid-append) loses exactly that record
    //    and recovery replays the rest to the identical state. The layer
    //    comes from the shared loader — the same list the diagnose gate
    //    and the server daemon use, so binaries can't drift.
    let layer = load_layer("crypto", &tech)?.expect("crypto layer is shipped");
    let mut js = JournaledSession::new(&layer.space, layer.root);
    js.set_requirement("EOL", Value::from(spec.eol as i64))?;
    js.set_requirement("MaxLatencyUs", Value::from(spec.max_latency_us))?;
    js.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))?;
    js.decide("ImplementationStyle", Value::from("Hardware"))?;
    js.decide("Algorithm", Value::from("Montgomery"))?;
    let journal_text = js.journal().to_jsonl();
    println!(
        "journaled session: {} records, {} bindings",
        js.journal().len(),
        js.session().bindings().len()
    );

    let torn = format!("{journal_text}{{\"Decide\":{{\"name\":\"AdderSt");
    let (recovered, report) = JournaledSession::recover(&layer.space, layer.root, &torn)?;
    println!("simulated crash mid-append; recovery:");
    for d in report.diagnostics.diagnostics() {
        println!("  {d}");
    }
    assert_eq!(recovered.session(), js.session());
    println!(
        "  recovered to the exact pre-crash state ({} records intact)",
        recovered.journal().len()
    );

    // ... and the recovered session keeps exploring where it left off.
    let (mut session, _) = recovered.into_parts();
    session.decide("AdderStructure", Value::from("carry-save"))?;
    println!(
        "  resumed exploration: AdderStructure decided, {} bindings total",
        session.bindings().len()
    );
    Ok(())
}
