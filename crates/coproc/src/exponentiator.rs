//! The exponentiation control structure: left-to-right binary
//! square-and-multiply over a multiplier engine.

use bignum::UBig;

use crate::engine::{EngineKind, ModMulEngine};
use crate::error::CoprocError;
use crate::method::ExpMethod;

/// A cost/result report for one exponentiation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpReport {
    /// The computed `base^exp mod m`.
    pub result: UBig,
    /// Modular multiplications performed (squares + multiplies +
    /// domain conversions).
    pub multiplications: u64,
    /// Engine cycles (0 if the engine does not track cycles).
    pub cycles: u64,
    /// Engine time estimate in µs (0 if untracked).
    pub time_us: f64,
}

/// The modular-exponentiation coprocessor: a multiplier engine plus the
/// square-and-multiply controller.
#[derive(Debug)]
pub struct ModExp<E> {
    engine: E,
}

impl<E: ModMulEngine> ModExp<E> {
    /// Builds the coprocessor around an engine.
    pub fn new(engine: E) -> Self {
        ModExp { engine }
    }

    /// Borrows the engine (e.g. to inspect accumulated cost).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Consumes the coprocessor, returning the engine.
    pub fn into_engine(self) -> E {
        self.engine
    }

    /// Computes `base^exp mod m`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid moduli (per the engine) or an
    /// unreduced base.
    pub fn mod_pow(&mut self, base: &UBig, exp: &UBig, m: &UBig) -> Result<UBig, CoprocError> {
        Ok(self.mod_pow_report(base, exp, m)?.result)
    }

    /// Computes `base^exp mod m` with a full cost report (binary method).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid moduli (per the engine) or an
    /// unreduced base.
    pub fn mod_pow_report(
        &mut self,
        base: &UBig,
        exp: &UBig,
        m: &UBig,
    ) -> Result<ExpReport, CoprocError> {
        self.mod_pow_with_method(base, exp, m, ExpMethod::Binary)
    }

    /// Computes `base^exp mod m` with the selected exponentiation method.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid moduli (per the engine), an unreduced
    /// base, or an invalid window size.
    pub fn mod_pow_with_method(
        &mut self,
        base: &UBig,
        exp: &UBig,
        m: &UBig,
        method: ExpMethod,
    ) -> Result<ExpReport, CoprocError> {
        if !method.is_valid() {
            return Err(CoprocError::Engine(format!(
                "invalid exponentiation method {method}"
            )));
        }
        if *m <= UBig::one() {
            return Err(CoprocError::InvalidModulus(
                "modulus must be at least 2".to_owned(),
            ));
        }
        if base >= m {
            return Err(CoprocError::UnreducedOperand);
        }
        self.engine.reset_cost();
        let kind = self.engine.kind(m)?;
        let mut mults = 0u64;

        // The unit element and the domain image of the base; for
        // Montgomery engines also the final conversion.
        let (one_elem, base_elem, convert_out) = match kind {
            EngineKind::Direct => (UBig::one().rem(m), base.clone(), false),
            EngineKind::Montgomery { shift } => {
                // Host-side precomputation (done once per modulus in a real
                // system): R mod m and R² mod m.
                let r = UBig::power_of_two(shift).rem(m);
                let r2 = UBig::power_of_two(2 * shift).rem(m);
                let base_bar = self.engine.raw_mul(base, &r2, m)?;
                mults += 1;
                (r, base_bar, true)
            }
        };

        let k = method.window_bits();
        // Window table: powers 0..2^k of the base (in the engine's
        // representation). Binary degenerates to [1, base].
        let mut table = vec![one_elem.clone(), base_elem.clone()];
        for i in 2..(1usize << k) {
            let next = self.engine.raw_mul(&table[i - 1], &base_elem, m)?;
            table.push(next);
            mults += 1;
        }

        let bits = exp.bit_len();
        let windows = bits.div_ceil(k);
        let mut acc = one_elem;
        for w in (0..windows).rev() {
            if w != windows - 1 {
                for _ in 0..k {
                    acc = self.engine.raw_mul(&acc, &acc, m)?;
                    mults += 1;
                }
            }
            let digit = exp.digit(w, k) as usize;
            if digit != 0 {
                acc = self.engine.raw_mul(&acc, &table[digit], m)?;
                mults += 1;
            }
        }

        let result = if convert_out {
            let out = self.engine.raw_mul(&acc, &UBig::one(), m)?;
            mults += 1;
            out
        } else {
            acc
        };

        let (cycles, time_us) = self.engine.cost();
        Ok(ExpReport {
            result,
            multiplications: mults,
            cycles,
            time_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{HardwareEngine, ReferenceEngine, SoftwareEngine};
    use bignum::{random_prime, uniform_below};
    use hwmodel::paper_designs;
    use foundation::rng::{SeedableRng, StdRng};
    use swmodel::{MontgomeryVariant, ProcessorModel, SoftwareRoutine};

    #[test]
    fn reference_engine_matches_bignum() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = random_prime(96, &mut rng);
        let base = uniform_below(&m, &mut rng);
        let exp = uniform_below(&UBig::power_of_two(64), &mut rng);
        let mut coproc = ModExp::new(ReferenceEngine::new());
        assert_eq!(
            coproc.mod_pow(&base, &exp, &m).unwrap(),
            base.mod_pow(&exp, &m)
        );
    }

    #[test]
    fn every_hardware_design_exponentiates_correctly() {
        let mut rng = StdRng::seed_from_u64(12);
        let m = random_prime(48, &mut rng);
        let base = uniform_below(&m, &mut rng);
        let exp = UBig::from(0xB00Fu64);
        let expect = base.mod_pow(&exp, &m);
        for d in paper_designs() {
            let arch = d.architecture(16).unwrap();
            let mut coproc = ModExp::new(HardwareEngine::new(arch, 3.0));
            let report = coproc.mod_pow_report(&base, &exp, &m).unwrap();
            assert_eq!(report.result, expect, "{}", d.name());
            assert!(report.cycles > 0);
            assert!(report.time_us > 0.0);
        }
    }

    #[test]
    fn software_engines_exponentiate_correctly() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = random_prime(64, &mut rng);
        let base = uniform_below(&m, &mut rng);
        let exp = UBig::from(1234567u64);
        let expect = base.mod_pow(&exp, &m);
        for v in MontgomeryVariant::ALL {
            let eng = SoftwareEngine::new(SoftwareRoutine::new(v, ProcessorModel::pentium60_c()));
            let mut coproc = ModExp::new(eng);
            assert_eq!(coproc.mod_pow(&base, &exp, &m).unwrap(), expect, "{v}");
        }
    }

    #[test]
    fn multiplication_count_matches_square_and_multiply() {
        let m = UBig::from(1000003u64);
        let exp = UBig::from(0b1011u64); // 4 bits, weight 3
        let mut coproc = ModExp::new(ReferenceEngine::new());
        let report = coproc.mod_pow_report(&UBig::from(5u64), &exp, &m).unwrap();
        // 3 squares (the leading window's squarings on acc = 1 are
        // skipped) + 3 multiplies (one per set bit) + 2 domain conversions.
        assert_eq!(report.multiplications, 3 + 3 + 2);
    }

    #[test]
    fn edge_cases() {
        let m = UBig::from(97u64);
        let mut coproc = ModExp::new(ReferenceEngine::new());
        // exp = 0 → 1.
        assert_eq!(
            coproc
                .mod_pow(&UBig::from(5u64), &UBig::zero(), &m)
                .unwrap(),
            UBig::one()
        );
        // base = 0 → 0 for positive exponents.
        assert!(coproc
            .mod_pow(&UBig::zero(), &UBig::from(5u64), &m)
            .unwrap()
            .is_zero());
        // Unreduced base rejected.
        assert_eq!(
            coproc
                .mod_pow(&UBig::from(97u64), &UBig::one(), &m)
                .unwrap_err(),
            CoprocError::UnreducedOperand
        );
        // Tiny modulus rejected.
        assert!(coproc
            .mod_pow(&UBig::zero(), &UBig::one(), &UBig::one())
            .is_err());
    }

    #[test]
    fn windowed_methods_agree_with_binary_on_all_engine_types() {
        let mut rng = StdRng::seed_from_u64(14);
        let m = random_prime(48, &mut rng);
        let base = uniform_below(&m, &mut rng);
        let exp = uniform_below(&UBig::power_of_two(40), &mut rng);
        let expect = base.mod_pow(&exp, &m);
        for method in [
            ExpMethod::Binary,
            ExpMethod::Window(2),
            ExpMethod::Window(4),
        ] {
            // Reference engine.
            let mut r = ModExp::new(ReferenceEngine::new());
            assert_eq!(
                r.mod_pow_with_method(&base, &exp, &m, method)
                    .unwrap()
                    .result,
                expect,
                "reference, {method}"
            );
            // A Montgomery datapath and a Brickell (direct) datapath.
            for idx in [1usize, 7] {
                let arch = paper_designs()[idx].architecture(16).unwrap();
                let mut c = ModExp::new(HardwareEngine::new(arch, 3.0));
                assert_eq!(
                    c.mod_pow_with_method(&base, &exp, &m, method)
                        .unwrap()
                        .result,
                    expect,
                    "#{}, {method}",
                    idx + 1
                );
            }
        }
    }

    #[test]
    fn windowing_cuts_multiplications_for_long_exponents() {
        let mut rng = StdRng::seed_from_u64(15);
        let m = random_prime(64, &mut rng);
        let base = uniform_below(&m, &mut rng);
        let exp = uniform_below(&UBig::power_of_two(512), &mut rng);
        let mut coproc = ModExp::new(ReferenceEngine::new());
        let binary = coproc
            .mod_pow_with_method(&base, &exp, &m, ExpMethod::Binary)
            .unwrap();
        let windowed = coproc
            .mod_pow_with_method(&base, &exp, &m, ExpMethod::Window(4))
            .unwrap();
        assert_eq!(binary.result, windowed.result);
        assert!(
            windowed.multiplications < binary.multiplications,
            "window {} vs binary {}",
            windowed.multiplications,
            binary.multiplications
        );
    }

    #[test]
    fn invalid_window_is_rejected() {
        let mut coproc = ModExp::new(ReferenceEngine::new());
        let err = coproc
            .mod_pow_with_method(
                &UBig::from(2u64),
                &UBig::from(3u64),
                &UBig::from(101u64),
                ExpMethod::Window(9),
            )
            .unwrap_err();
        assert!(matches!(err, CoprocError::Engine(_)));
    }

    #[test]
    fn brickell_engine_handles_even_modulus() {
        // The whole point of keeping Brickell in the design space.
        let arch = paper_designs()[7].architecture(8).unwrap();
        let mut coproc = ModExp::new(HardwareEngine::new(arch, 4.0));
        let m = UBig::from(1000u64);
        let got = coproc
            .mod_pow(&UBig::from(123u64), &UBig::from(45u64), &m)
            .unwrap();
        assert_eq!(got, UBig::from(123u64).mod_pow(&UBig::from(45u64), &m));
    }
}
