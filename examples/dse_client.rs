//! A scriptable line-in/line-out client for the exploration daemon.
//!
//! ```text
//! cargo run --example dse_client -- HOST:PORT [--pretty]
//! ```
//!
//! Reads one JSON request per line from stdin, writes the daemon's
//! response for each to stdout, in order. With `--pretty`, responses
//! are re-rendered as indented JSON (for humans); without it they stay
//! single-line (for transcripts and `diff`).
//!
//! Blank lines and lines starting with `#` are skipped, so a scripted
//! conversation can be a commented file:
//!
//! ```text
//! # open, decide, evaluate, report, close
//! {"op":"open","session":"demo","snapshot":"crypto"}
//! {"op":"decide","session":"demo","name":"EOL","value":768}
//! {"op":"eval","session":"demo"}
//! {"op":"report","session":"demo"}
//! {"op":"close","session":"demo"}
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use design_space_layer::foundation::json::{encode_pretty, Json};
use design_space_layer::foundation::net;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr: Option<String> = None;
    let mut pretty = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--pretty" => pretty = true,
            "--help" | "-h" => {
                println!("usage: dse_client HOST:PORT [--pretty]");
                return Ok(());
            }
            other if addr.is_none() => addr = Some(other.to_owned()),
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let addr = addr.ok_or("usage: dse_client HOST:PORT [--pretty]")?;

    let stream = TcpStream::connect(&addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let stdout = std::io::stdout();

    for line in std::io::stdin().lock().lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        net::write_line(&mut writer, line)?;
        let response = net::read_line_bounded(&mut reader, net::MAX_WIRE_BYTES)?
            .ok_or("server closed the connection")?;
        let mut out = stdout.lock();
        if pretty {
            match Json::parse(&response) {
                Ok(json) => writeln!(out, "{}", encode_pretty(&json))?,
                Err(_) => writeln!(out, "{response}")?,
            }
        } else {
            writeln!(out, "{response}")?;
        }
    }
    Ok(())
}
