//! Fig. 13 + Section 5: the constraint-driven selection walkthrough —
//! requirements in, pruning trace and verified core selection out.

use coproc::spec::KocSpec;
use coproc::walkthrough;
use dse::eval::FigureOfMerit;
use techlib::Technology;

use crate::fmt;

/// Renders the walkthrough trace and the selection outcome.
pub fn render() -> String {
    let spec = KocSpec::paper();
    let tech = Technology::g10_035();
    let report = walkthrough::run(&spec, &tech).expect("walkthrough runs");

    let rows: Vec<Vec<String>> = report
        .steps
        .iter()
        .map(|s| {
            let fmt_range = |r: Option<(f64, f64)>| match r {
                Some((lo, hi)) => format!("{} .. {}", fmt::num(lo), fmt::num(hi)),
                None => "—".to_owned(),
            };
            vec![
                s.action.clone(),
                s.surviving.to_string(),
                fmt_range(s.delay_range_ns),
                fmt_range(s.area_range_um2),
            ]
        })
        .collect();

    let mut out = format!(
        "Section 5 — selection walkthrough for the Koç coprocessor spec\n\
         (EOL = {} bits, modmul latency ≤ {} µs, modulus odd: {})\n\n{}",
        spec.eol,
        spec.max_latency_us,
        spec.modulo_odd_guaranteed,
        fmt::table(
            &[
                "step",
                "surviving cores",
                "delay range (ns)",
                "area range (µm²)"
            ],
            &rows
        )
    );

    out.push_str(&format!(
        "\ncandidates meeting Req5: {}\n",
        report
            .candidates
            .iter()
            .map(|c| c.name().to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    match &report.selected {
        Some(core) => {
            out.push_str(&format!(
                "selected: {} (area {} µm², delay {} µs)\n",
                core.name(),
                fmt::num(core.merit_value(&FigureOfMerit::AreaUm2).unwrap_or(0.0)),
                fmt::num(core.merit_value(&FigureOfMerit::TimeUs).unwrap_or(0.0)),
            ));
            out.push_str(&format!(
                "functionally verified against bignum: {}\n",
                report.functionally_verified
            ));
            if let Some(t) = report.modexp_projection_us {
                out.push_str(&format!(
                    "projected {}-bit modular exponentiation: {} ms\n",
                    spec.eol,
                    fmt::num(t / 1000.0)
                ));
            }
        }
        None => out.push_str("no core meets the specification\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkthrough_report_is_complete() {
        let s = render();
        assert!(s.contains("requirements entered"));
        assert!(s.contains("software family rejected (CC6)"));
        assert!(s.contains("selected: #"));
        assert!(s.contains("functionally verified against bignum: true"));
    }
}
