//! Table 1: the eight modular-multiplier design families, estimated at
//! every slice width with EOL = slice width (a single slice), as in the
//! paper's table.

use hwmodel::designs::{paper_designs, DesignFamily, TABLE1_SLICE_WIDTHS};
use hwmodel::HwEstimate;
use techlib::Technology;

use crate::fmt;

/// One design family's estimates across the slice widths.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The family (design number, structure).
    pub family: DesignFamily,
    /// `(slice_width, estimate)` pairs.
    pub estimates: Vec<(u32, HwEstimate)>,
}

/// Runs the Table-1 sweep.
pub fn run(tech: &Technology) -> Vec<Table1Row> {
    paper_designs()
        .into_iter()
        .map(|family| {
            let estimates = TABLE1_SLICE_WIDTHS
                .iter()
                .filter_map(|&w| {
                    let arch = family.architecture(w).ok()?;
                    let est = arch.try_estimate(w, tech).ok()?;
                    Some((w, est))
                })
                .collect();
            Table1Row { family, estimates }
        })
        .collect()
}

/// Renders the paper-style table (area µm² / latency ns / clk ns per
/// width).
pub fn render(tech: &Technology) -> String {
    let rows = run(tech);
    let mut header: Vec<String> = vec![
        "#".into(),
        "radix".into(),
        "alg".into(),
        "adder".into(),
        "mult".into(),
    ];
    for w in TABLE1_SLICE_WIDTHS {
        header.push(format!("area@{w}"));
        header.push(format!("lat@{w}"));
        header.push(format!("clk@{w}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![
                r.family.name(),
                r.family.radix().to_string(),
                match r.family.algorithm() {
                    hwmodel::Algorithm::Montgomery => "M".to_owned(),
                    hwmodel::Algorithm::Brickell => "B".to_owned(),
                },
                r.family.adder().to_string(),
                r.family.multiplier().to_string(),
            ];
            for (_, est) in &r.estimates {
                cells.push(fmt::num(est.area_um2));
                cells.push(fmt::num(est.latency_ns));
                cells.push(fmt::num(est.clock_ns));
            }
            cells
        })
        .collect();
    format!(
        "Table 1 — alternative modular-multiplier designs ({tech}; EOL = slice width)\n\n{}",
        fmt::table(&header_refs, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::AdderKind;

    #[test]
    fn all_eight_families_at_all_five_widths() {
        let rows = run(&Technology::g10_035());
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.estimates.len() == 5));
    }

    #[test]
    fn csa_clock_flat_cla_clock_grows_within_the_table() {
        let rows = run(&Technology::g10_035());
        let clk = |row: &Table1Row, w: u32| {
            row.estimates
                .iter()
                .find(|(sw, _)| *sw == w)
                .unwrap()
                .1
                .clock_ns
        };
        for row in &rows {
            let (c8, c128) = (clk(row, 8), clk(row, 128));
            match row.family.adder() {
                AdderKind::CarrySave => {
                    assert!(c128 < 1.3 * c8, "{}: CSA {c8} → {c128}", row.family.name())
                }
                AdderKind::CarryLookAhead => {
                    assert!(c128 > 1.3 * c8, "{}: CLA {c8} → {c128}", row.family.name())
                }
                _ => {}
            }
        }
    }

    #[test]
    fn render_contains_all_design_numbers() {
        let s = render(&Technology::g10_035());
        for i in 1..=8 {
            assert!(s.contains(&format!("#{i}")), "missing #{i}");
        }
        assert!(s.contains("area@128"));
    }
}
