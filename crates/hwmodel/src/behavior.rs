//! Algorithm-level behavioural descriptions and early delay estimation.
//!
//! The paper's CC3 establishes the utilization context of an early
//! estimation tool, `BehaviorDelayEstimator`, that ranks alternative
//! algorithm-level behavioural descriptions by their maximum combinational
//! delay *before* any RT/logic/physical information exists. This module
//! provides that tool: a behavioural description is a small operation DAG,
//! and the estimator reports the delay of its critical path priced with
//! the technology's structural models.

use std::fmt;

use techlib::{CellKind, Technology};

use crate::adder::AdderKind;

/// The operation kinds an algorithm-level description is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpKind {
    /// Wide addition (priced as a carry-look-ahead adder).
    Add,
    /// Wide subtraction (same structure as addition).
    Sub,
    /// `digit × wide` multiplication; the digit width is the op's `aux`.
    DigitMul,
    /// Comparison against the modulus.
    Compare,
    /// Right/left shift by a constant (wiring only).
    Shift,
    /// Conditional select.
    Select,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::DigitMul => "digit-mul",
            OpKind::Compare => "compare",
            OpKind::Shift => "shift",
            OpKind::Select => "select",
        };
        f.write_str(s)
    }
}

/// One operation node in a behavioural description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorOp {
    /// Operation kind.
    pub kind: OpKind,
    /// Operand width in bits.
    pub width: u32,
    /// Kind-specific parameter (digit bits for [`OpKind::DigitMul`]).
    pub aux: u32,
    /// Indices of the ops whose results this op consumes.
    pub depends_on: Vec<usize>,
}

/// An algorithm-level behavioural description: a DAG of operations
/// representing one loop iteration (the combinational work between two
/// register boundaries).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BehaviorGraph {
    name: String,
    ops: Vec<BehaviorOp>,
}

impl BehaviorGraph {
    /// Creates an empty description.
    pub fn new(name: impl Into<String>) -> Self {
        BehaviorGraph {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// The description's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an operation; returns its index for later dependencies.
    ///
    /// # Panics
    ///
    /// Panics if a dependency index is out of range (dependencies must
    /// refer to already-added ops, which also guarantees acyclicity).
    pub fn push(&mut self, kind: OpKind, width: u32, aux: u32, depends_on: &[usize]) -> usize {
        for &d in depends_on {
            assert!(d < self.ops.len(), "dependency {d} does not exist yet");
        }
        self.ops.push(BehaviorOp {
            kind,
            width,
            aux,
            depends_on: depends_on.to_vec(),
        });
        self.ops.len() - 1
    }

    /// The operations in insertion (topological) order.
    pub fn ops(&self) -> &[BehaviorOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the description is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The paper's `BehaviorDelayEstimator`: maximum combinational delay of
    /// the description in ns under `tech`, i.e. the longest
    /// dependency-chain delay through the DAG.
    pub fn max_combinational_delay_ns(&self, tech: &Technology) -> f64 {
        self.try_max_combinational_delay_ns(tech, || true)
            .expect("an always-true meter cannot abort")
    }

    /// Cooperative variant of
    /// [`max_combinational_delay_ns`](Self::max_combinational_delay_ns):
    /// `step` is consulted once per operation node (plus once per
    /// consumed dependency edge) and a `false` return aborts the walk
    /// with `None`. Supervised estimation tools pass a meter that
    /// charges a deterministic fuel budget, so a runaway description is
    /// cut off after a bounded number of steps instead of a timeout.
    pub fn try_max_combinational_delay_ns(
        &self,
        tech: &Technology,
        mut step: impl FnMut() -> bool,
    ) -> Option<f64> {
        let mut arrival = vec![0.0f64; self.ops.len()];
        let mut max = 0.0f64;
        for (i, op) in self.ops.iter().enumerate() {
            if !step() {
                return None;
            }
            let mut start = 0.0f64;
            for &d in &op.depends_on {
                if !step() {
                    return None;
                }
                start = start.max(arrival[d]);
            }
            let t = start + op_delay_ns(op, tech);
            arrival[i] = t;
            max = max.max(t);
        }
        Some(max)
    }

    /// Total operation count by kind — the "number of operations"
    /// discriminator the paper mentions for comparing algorithms.
    pub fn count(&self, kind: OpKind) -> usize {
        self.ops.iter().filter(|o| o.kind == kind).count()
    }
}

fn op_delay_ns(op: &BehaviorOp, tech: &Technology) -> f64 {
    match op.kind {
        OpKind::Add | OpKind::Sub => {
            tech.tau_to_ns(AdderKind::CarryLookAhead.delay_tau(op.width, tech))
        }
        OpKind::DigitMul => {
            let k = op.aux.max(1);
            let and = tech.cell_delay_ns(CellKind::And2);
            let fa = tech.cell_delay_ns(CellKind::FullAdder);
            and + (k - 1) as f64 * fa
        }
        OpKind::Compare => tech.tau_to_ns(AdderKind::CarryLookAhead.delay_tau(op.width, tech)),
        OpKind::Shift => 0.0,
        OpKind::Select => tech.cell_delay_ns(CellKind::Mux2),
    }
}

/// The Montgomery iteration (Fig. 10, lines 3–4) as a behavioural
/// description: two digit products, two additions, the quotient digit and
/// the exact shift.
pub fn montgomery_iteration(eol: u32, digit_bits: u32) -> BehaviorGraph {
    let mut g = BehaviorGraph::new(format!("montgomery-r{}-{}b", 1u64 << digit_bits, eol));
    let ab = g.push(OpKind::DigitMul, eol, digit_bits, &[]);
    let acc1 = g.push(OpKind::Add, eol, 0, &[ab]);
    let q = g.push(OpKind::DigitMul, 2 * digit_bits, digit_bits, &[acc1]);
    let qm = g.push(OpKind::DigitMul, eol, digit_bits, &[q]);
    let acc2 = g.push(OpKind::Add, eol, 0, &[acc1, qm]);
    g.push(OpKind::Shift, eol, digit_bits, &[acc2]);
    g
}

/// The Brickell iteration: shift-accumulate plus interleaved reduction.
///
/// After the shift-accumulate the radix-2 running value can reach `3M`, so
/// the reduction needs *two sequential* compare-and-subtract stages — the
/// structural reason Brickell's iteration is slower than Montgomery's,
/// whose quotient digit commits without any full-width comparison.
pub fn brickell_iteration(eol: u32, digit_bits: u32) -> BehaviorGraph {
    let mut g = BehaviorGraph::new(format!("brickell-r{}-{}b", 1u64 << digit_bits, eol));
    let sh = g.push(OpKind::Shift, eol, digit_bits, &[]);
    let ab = g.push(OpKind::DigitMul, eol, digit_bits, &[]);
    let acc = g.push(OpKind::Add, eol, 0, &[sh, ab]);
    let mut stage = acc;
    for _ in 0..2 {
        let cmp = g.push(OpKind::Compare, eol, 0, &[stage]);
        let sub = g.push(OpKind::Sub, eol, 0, &[stage]);
        stage = g.push(OpKind::Select, eol, 0, &[cmp, sub]);
    }
    g
}

/// The naive paper-and-pencil method: full product then a full-width
/// reduction — the inferior alternative the paper's layer eliminates.
pub fn paper_and_pencil(eol: u32) -> BehaviorGraph {
    let mut g = BehaviorGraph::new(format!("paper-and-pencil-{eol}b"));
    // Full product: eol digit-products accumulated by an adder tree of
    // depth log2(eol), on 2·eol-bit values.
    let pp = g.push(OpKind::DigitMul, 2 * eol, 1, &[]);
    let mut last = pp;
    let levels = 32 - eol.leading_zeros();
    for _ in 0..levels {
        last = g.push(OpKind::Add, 2 * eol, 0, &[last]);
    }
    // Reduction: a chain of compare/subtract on the double-width value.
    let cmp = g.push(OpKind::Compare, 2 * eol, 0, &[last]);
    g.push(OpKind::Sub, 2 * eol, 0, &[cmp]);
    g
}

foundation::impl_json_enum!(OpKind { Add, Sub, DigitMul, Compare, Shift, Select });
foundation::impl_json_struct!(BehaviorOp { kind, width, aux, depends_on });
foundation::impl_json_struct!(BehaviorGraph { name, ops });

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::g10_035()
    }

    #[test]
    fn critical_path_respects_dependencies() {
        let mut g = BehaviorGraph::new("two-parallel-vs-chain");
        let a = g.push(OpKind::Add, 64, 0, &[]);
        let _b = g.push(OpKind::Add, 64, 0, &[]); // parallel to a
        let parallel = g.max_combinational_delay_ns(&tech());
        g.push(OpKind::Add, 64, 0, &[a]);
        let chained = g.max_combinational_delay_ns(&tech());
        assert!((chained / parallel - 2.0).abs() < 1e-9);
    }

    #[test]
    fn estimator_ranks_montgomery_above_paper_and_pencil() {
        // CC3's purpose: at the algorithm level, Montgomery's iteration has
        // a far shorter combinational path than the naive method.
        let t = tech();
        let mont = montgomery_iteration(768, 1).max_combinational_delay_ns(&t);
        let naive = paper_and_pencil(768).max_combinational_delay_ns(&t);
        assert!(naive > 2.0 * mont, "naive {naive} vs montgomery {mont}");
    }

    #[test]
    fn estimator_ranks_montgomery_at_or_below_brickell() {
        let t = tech();
        let mont = montgomery_iteration(768, 1).max_combinational_delay_ns(&t);
        let brick = brickell_iteration(768, 1).max_combinational_delay_ns(&t);
        assert!(mont < brick, "montgomery {mont} vs brickell {brick}");
    }

    #[test]
    fn op_counts_discriminate_algorithms() {
        let mont = montgomery_iteration(64, 1);
        let brick = brickell_iteration(64, 1);
        assert_eq!(mont.count(OpKind::DigitMul), 3);
        assert_eq!(brick.count(OpKind::Compare), 2);
        assert_eq!(mont.count(OpKind::Compare), 0);
    }

    #[test]
    fn shift_is_free() {
        let mut g = BehaviorGraph::new("shift-only");
        g.push(OpKind::Shift, 128, 4, &[]);
        assert_eq!(g.max_combinational_delay_ns(&tech()), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependency_panics() {
        let mut g = BehaviorGraph::new("bad");
        g.push(OpKind::Add, 8, 0, &[3]);
    }

    #[test]
    fn empty_graph_has_zero_delay() {
        let g = BehaviorGraph::new("empty");
        assert!(g.is_empty());
        assert_eq!(g.max_combinational_delay_ns(&tech()), 0.0);
    }

    #[test]
    fn metered_walk_aborts_when_the_meter_trips() {
        let g = montgomery_iteration(768, 1);
        let t = tech();
        let full = g.max_combinational_delay_ns(&t);
        let mut budget = 3u32;
        let aborted = g.try_max_combinational_delay_ns(&t, || {
            if budget == 0 {
                return false;
            }
            budget -= 1;
            true
        });
        assert!(aborted.is_none(), "a tripped meter aborts the walk");
        assert_eq!(g.try_max_combinational_delay_ns(&t, || true), Some(full));
    }

    #[test]
    fn wider_operands_are_slower() {
        let t = tech();
        let narrow = montgomery_iteration(64, 1).max_combinational_delay_ns(&t);
        let wide = montgomery_iteration(1024, 1).max_combinational_delay_ns(&t);
        assert!(wide > narrow);
    }
}
