//! Quickstart: author a small design space layer, connect a reuse
//! library, and explore it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use design_space_layer::dse::prelude::*;
use design_space_layer::dse_library::{CoreRecord, Explorer, ReuseLibrary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author a layer: one class of design objects ("Adder") with a
    //    requirement, a generalized design issue and a consistency
    //    constraint.
    let mut space = DesignSpace::new("quickstart");
    let adder = space.add_root("Adder", "all adder implementations");
    space.add_property(
        adder,
        Property::requirement(
            "WordSize",
            Domain::int_range(1, 1024),
            Some(Unit::bits()),
            "operand width the application needs",
        ),
    )?;
    space.add_property(
        adder,
        Property::generalized_issue(
            "LogicStyle",
            Domain::options(["ripple-carry", "carry-look-ahead", "carry-save"]),
            "the dominant delay lever",
        ),
    )?;
    space.specialize(adder, "LogicStyle")?;
    // Wide ripple-carry adders are dominated: a CC eliminates them.
    space.add_constraint(
        adder,
        ConsistencyConstraint::new(
            "CC-ripple",
            "ripple carry is inferior beyond 16 bits",
            ["WordSize".to_owned()],
            ["LogicStyle".to_owned()],
            Relation::Dominance(Pred::all([
                Pred::cmp(CmpOp::Ge, Expr::prop("WordSize"), Expr::constant(16)),
                Pred::is("LogicStyle", "ripple-carry"),
            ])),
        ),
    )?;

    // 2. Populate a reuse library with a few cores.
    let mut library = ReuseLibrary::new("adder cores");
    for (name, style, area, delay) in [
        ("rca8", "ripple-carry", 60.0, 8.0),
        ("cla32", "carry-look-ahead", 420.0, 3.1),
        ("cla64", "carry-look-ahead", 900.0, 3.8),
        ("csa64", "carry-save", 520.0, 1.0),
    ] {
        library.push(
            CoreRecord::new(name, "quickstart", "")
                .bind("LogicStyle", style)
                .merit(FigureOfMerit::AreaUm2, area)
                .merit(FigureOfMerit::DelayNs, delay),
        );
    }

    // 3. Explore: requirements in, decisions prune the space and the
    //    surviving cores transparently follow.
    let mut exp = Explorer::new(&space, adder, &library);
    println!("cores before any decision: {}", exp.surviving_cores().len());

    exp.session.set_requirement("WordSize", Value::from(64))?;
    // The CC rejects the dominated option outright:
    let rejected = exp
        .session
        .decide("LogicStyle", Value::from("ripple-carry"));
    println!("ripple-carry at 64 bits: {}", rejected.unwrap_err());

    exp.session
        .decide("LogicStyle", Value::from("carry-look-ahead"))?;
    println!(
        "after LogicStyle = carry-look-ahead, focus is {:?}",
        exp.session.space().path_string(exp.session.focus())
    );
    for core in exp.surviving_cores() {
        println!("  surviving: {core}");
    }
    if let Some((lo, hi)) = exp.merit_range(&FigureOfMerit::DelayNs) {
        println!("delay range over survivors: {lo:.1} .. {hi:.1} ns");
    }

    // 4. The layer documents itself.
    println!("\n--- self-documentation ---\n");
    println!("{}", design_space_layer::dse::doc::render_markdown(&space));
    Ok(())
}
