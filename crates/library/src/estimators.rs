//! Estimation tools wired into the layer (the paper's CC3 context).
//!
//! When the pruned design-space region contains no suitable core, the
//! layer still assists conceptual design through early estimation. These
//! [`Estimator`] implementations are backed by the same substrates that
//! price the library cores, so estimates and core figures are mutually
//! consistent.

use dse::estimate::{EstimateError, Estimator};
use dse::expr::Bindings;
use dse::robust::Fuel;
use hwmodel::behavior::{brickell_iteration, montgomery_iteration};
use swmodel::{MontgomeryVariant, ProcessorModel, SoftwareRoutine};
use techlib::{CellKind, Technology};

/// The paper's `BehaviorDelayEstimator`: ranks algorithm-level behavioural
/// descriptions by maximum combinational delay (CC3's
/// `MaxCombDelay_R = BehaviorDelayEstimator(B)`).
///
/// Inputs: `Algorithm` (`"Montgomery"`/`"Brickell"`), `EOL`, and
/// optionally `Radix` (default 2).
#[derive(Debug)]
pub struct BehaviorDelayEstimator {
    tech: Technology,
}

impl BehaviorDelayEstimator {
    /// Builds the estimator against a technology target.
    pub fn new(tech: Technology) -> Self {
        BehaviorDelayEstimator { tech }
    }
}

impl Estimator for BehaviorDelayEstimator {
    fn name(&self) -> &str {
        "BehaviorDelayEstimator"
    }

    fn metric(&self) -> &str {
        "max combinational delay (ns)"
    }

    fn fallbacks(&self) -> Vec<String> {
        vec!["CoarseDelayEstimator".to_owned()]
    }

    fn estimate_with_fuel(&self, inputs: &Bindings, fuel: &Fuel) -> Result<f64, EstimateError> {
        // One step per operand bit: building the iteration DAG and its
        // arrival-time sweep is linear in EOL.
        let eol = inputs.get("EOL").and_then(|v| v.as_i64()).unwrap_or(1).max(1) as u64;
        fuel.spend(eol)?;
        self.estimate(inputs)
    }

    fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
        let algorithm = inputs
            .get("Algorithm")
            .ok_or_else(|| EstimateError::MissingInput("Algorithm".to_owned()))?
            .as_text()
            .ok_or_else(|| EstimateError::NotApplicable("Algorithm must be text".to_owned()))?
            .to_owned();
        let eol = inputs
            .get("EOL")
            .ok_or_else(|| EstimateError::MissingInput("EOL".to_owned()))?
            .as_i64()
            .ok_or_else(|| EstimateError::NotApplicable("EOL must be an integer".to_owned()))?
            as u32;
        let radix = inputs.get("Radix").and_then(|v| v.as_i64()).unwrap_or(2) as u64;
        let k = radix.trailing_zeros().max(1);
        let graph = match algorithm.as_str() {
            "Montgomery" => montgomery_iteration(eol, k),
            "Brickell" => brickell_iteration(eol, k),
            other => {
                return Err(EstimateError::NotApplicable(format!(
                    "no behavioural description for algorithm {other:?}"
                )))
            }
        };
        Ok(graph.max_combinational_delay_ns(&self.tech))
    }
}

/// Software execution-time estimator: the analytic Koç operation counts
/// priced on a processor model.
///
/// Inputs: `EOL`, `Variant` (`"SOS"`…`"CIHS"`), `Language` (`"C"`/`"ASM"`).
#[derive(Debug)]
pub struct SoftwareTimeEstimator;

impl Estimator for SoftwareTimeEstimator {
    fn name(&self) -> &str {
        "SoftwareTimeEstimator"
    }

    fn metric(&self) -> &str {
        "execution time (µs)"
    }

    fn fallbacks(&self) -> Vec<String> {
        vec!["CoarseTimeEstimator".to_owned()]
    }

    fn estimate_with_fuel(&self, inputs: &Bindings, fuel: &Fuel) -> Result<f64, EstimateError> {
        // The analytic model meters itself: one step per inner-loop word
        // product (quadratic in the word count), so runaway operand
        // lengths hit the fuel wall instead of stalling the session.
        let (routine, eol) = parse_software_inputs(inputs)?;
        routine
            .try_estimate_mont_mul_us(eol, || fuel.spend(1).is_ok())
            .ok_or(EstimateError::FuelExhausted {
                limit: fuel.limit(),
            })
    }

    fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
        let (routine, eol) = parse_software_inputs(inputs)?;
        Ok(routine.estimate_mont_mul_us(eol))
    }
}

fn parse_software_inputs(inputs: &Bindings) -> Result<(SoftwareRoutine, u32), EstimateError> {
    let eol = inputs
        .get("EOL")
        .ok_or_else(|| EstimateError::MissingInput("EOL".to_owned()))?
        .as_i64()
        .ok_or_else(|| EstimateError::NotApplicable("EOL must be an integer".to_owned()))?
        as u32;
    let variant_name = inputs
        .get("Variant")
        .ok_or_else(|| EstimateError::MissingInput("Variant".to_owned()))?
        .as_text()
        .unwrap_or_default()
        .to_owned();
    let variant = MontgomeryVariant::ALL
        .into_iter()
        .find(|v| v.to_string() == variant_name)
        .ok_or_else(|| {
            EstimateError::NotApplicable(format!("unknown variant {variant_name:?}"))
        })?;
    let language = inputs
        .get("Language")
        .ok_or_else(|| EstimateError::MissingInput("Language".to_owned()))?
        .as_text()
        .unwrap_or_default()
        .to_owned();
    let cpu = match language.as_str() {
        "ASM" => ProcessorModel::pentium60_asm(),
        "C" => ProcessorModel::pentium60_c(),
        other => {
            return Err(EstimateError::NotApplicable(format!(
                "unknown language {other:?}"
            )))
        }
    };
    Ok((SoftwareRoutine::new(variant, cpu), eol))
}

/// Coarse closed-form stand-in for [`BehaviorDelayEstimator`]: one
/// AND/full-adder stage per radix bit plus a logarithmic accumulation
/// depth, priced on the same cell library. O(1) work (a single fuel
/// step), algorithm-agnostic — the supervisor's declared fallback when
/// the detailed DAG sweep panics, times out or runs out of fuel.
#[derive(Debug)]
pub struct CoarseDelayEstimator {
    tech: Technology,
}

impl CoarseDelayEstimator {
    /// Builds the coarse estimator against a technology target.
    pub fn new(tech: Technology) -> Self {
        CoarseDelayEstimator { tech }
    }
}

impl Estimator for CoarseDelayEstimator {
    fn name(&self) -> &str {
        "CoarseDelayEstimator"
    }

    fn metric(&self) -> &str {
        "max combinational delay (ns, coarse)"
    }

    fn estimate_with_fuel(&self, inputs: &Bindings, fuel: &Fuel) -> Result<f64, EstimateError> {
        fuel.spend(1)?;
        self.estimate(inputs)
    }

    fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
        let eol = inputs
            .get("EOL")
            .ok_or_else(|| EstimateError::MissingInput("EOL".to_owned()))?
            .as_i64()
            .ok_or_else(|| EstimateError::NotApplicable("EOL must be an integer".to_owned()))?;
        if eol < 1 {
            return Err(EstimateError::NotApplicable(format!(
                "EOL must be positive, got {eol}"
            )));
        }
        let radix = inputs.get("Radix").and_then(|v| v.as_i64()).unwrap_or(2) as u64;
        let k = radix.trailing_zeros().max(1) as f64;
        let and = self.tech.cell_delay_ns(CellKind::And2);
        let fa = self.tech.cell_delay_ns(CellKind::FullAdder);
        Ok(and + fa * (2.0 * k + (eol as f64).log2()))
    }
}

/// Coarse closed-form stand-in for [`SoftwareTimeEstimator`]: the
/// canonical `2s² + s` word-multiply count of a Montgomery multiplication
/// priced at a flat per-multiply cycle cost, independent of variant and
/// language. O(1) work; the declared fallback for the detailed analytic
/// model.
#[derive(Debug)]
pub struct CoarseTimeEstimator;

impl Estimator for CoarseTimeEstimator {
    fn name(&self) -> &str {
        "CoarseTimeEstimator"
    }

    fn metric(&self) -> &str {
        "execution time (µs, coarse)"
    }

    fn estimate_with_fuel(&self, inputs: &Bindings, fuel: &Fuel) -> Result<f64, EstimateError> {
        fuel.spend(1)?;
        self.estimate(inputs)
    }

    fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
        let eol = inputs
            .get("EOL")
            .ok_or_else(|| EstimateError::MissingInput("EOL".to_owned()))?
            .as_i64()
            .ok_or_else(|| EstimateError::NotApplicable("EOL must be an integer".to_owned()))?;
        if eol < 1 {
            return Err(EstimateError::NotApplicable(format!(
                "EOL must be positive, got {eol}"
            )));
        }
        let s = (eol as f64 / 32.0).ceil();
        let word_muls = 2.0 * s * s + s;
        // ~10 cycles per 32×32 multiply-accumulate at 60 MHz.
        Ok(word_muls * 10.0 / 60.0)
    }
}

/// The full estimator suite — primaries plus their declared fallbacks —
/// registered into one registry, ready to hand to a
/// [`Supervisor`](dse::robust::Supervisor).
pub fn full_registry(tech: Technology) -> dse::estimate::EstimatorRegistry {
    let mut reg = dse::estimate::EstimatorRegistry::new();
    reg.register(Box::new(BehaviorDelayEstimator::new(tech.clone())));
    reg.register(Box::new(CoarseDelayEstimator::new(tech)));
    reg.register(Box::new(SoftwareTimeEstimator));
    reg.register(Box::new(CoarseTimeEstimator));
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse::estimate::EstimatorRegistry;
    use dse::value::Value;

    fn bindings(pairs: &[(&str, Value)]) -> Bindings {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn behavior_estimator_ranks_montgomery_below_brickell() {
        let est = BehaviorDelayEstimator::new(Technology::g10_035());
        let mont = est
            .estimate(&bindings(&[
                ("Algorithm", Value::from("Montgomery")),
                ("EOL", Value::from(768)),
            ]))
            .unwrap();
        let brick = est
            .estimate(&bindings(&[
                ("Algorithm", Value::from("Brickell")),
                ("EOL", Value::from(768)),
            ]))
            .unwrap();
        assert!(mont < brick, "montgomery {mont} vs brickell {brick}");
    }

    #[test]
    fn behavior_estimator_reports_missing_inputs() {
        let est = BehaviorDelayEstimator::new(Technology::g10_035());
        assert_eq!(
            est.estimate(&Bindings::new()).unwrap_err(),
            EstimateError::MissingInput("Algorithm".to_owned())
        );
        assert!(matches!(
            est.estimate(&bindings(&[
                ("Algorithm", Value::from("PaperAndPencil")),
                ("EOL", Value::from(64)),
            ]))
            .unwrap_err(),
            EstimateError::NotApplicable(_)
        ));
    }

    #[test]
    fn software_estimator_orders_languages() {
        let est = SoftwareTimeEstimator;
        let asm = est
            .estimate(&bindings(&[
                ("EOL", Value::from(1024)),
                ("Variant", Value::from("CIHS")),
                ("Language", Value::from("ASM")),
            ]))
            .unwrap();
        let c = est
            .estimate(&bindings(&[
                ("EOL", Value::from(1024)),
                ("Variant", Value::from("CIHS")),
                ("Language", Value::from("C")),
            ]))
            .unwrap();
        assert!(c > 4.0 * asm);
    }

    #[test]
    fn fuel_budget_bounds_the_detailed_estimators() {
        let est = BehaviorDelayEstimator::new(Technology::g10_035());
        let inputs = bindings(&[
            ("Algorithm", Value::from("Montgomery")),
            ("EOL", Value::from(768)),
        ]);
        // Plenty of fuel: same answer as the bare call, 768 steps spent.
        let fuel = Fuel::new(10_000);
        let v = est.estimate_with_fuel(&inputs, &fuel).unwrap();
        assert_eq!(v, est.estimate(&inputs).unwrap());
        assert_eq!(fuel.spent(), 768);
        // Too little fuel: structured exhaustion, not a hang.
        let starved = Fuel::new(100);
        assert!(matches!(
            est.estimate_with_fuel(&inputs, &starved).unwrap_err(),
            EstimateError::FuelExhausted { limit: 100 }
        ));
        // The software model prices quadratically: 1024 bits = 32 words
        // = 1024 steps.
        let sw_fuel = Fuel::new(10_000);
        SoftwareTimeEstimator
            .estimate_with_fuel(
                &bindings(&[
                    ("EOL", Value::from(1024)),
                    ("Variant", Value::from("CIHS")),
                    ("Language", Value::from("C")),
                ]),
                &sw_fuel,
            )
            .unwrap();
        assert_eq!(sw_fuel.spent(), 1024);
    }

    #[test]
    fn coarse_estimators_are_cheap_and_in_the_same_ballpark() {
        let tech = Technology::g10_035();
        let inputs = bindings(&[
            ("Algorithm", Value::from("Montgomery")),
            ("EOL", Value::from(768)),
            ("Radix", Value::from(4)),
        ]);
        let detailed = BehaviorDelayEstimator::new(tech.clone())
            .estimate(&inputs)
            .unwrap();
        let coarse_est = CoarseDelayEstimator::new(tech);
        let fuel = Fuel::new(10);
        let coarse = coarse_est.estimate_with_fuel(&inputs, &fuel).unwrap();
        assert_eq!(fuel.spent(), 1, "coarse tool is O(1)");
        assert!(coarse > 0.0 && coarse.is_finite());
        // Within an order of magnitude of the detailed DAG sweep.
        assert!(
            coarse < 10.0 * detailed && detailed < 10.0 * coarse,
            "coarse {coarse} vs detailed {detailed}"
        );

        let sw = CoarseTimeEstimator.estimate(&inputs).unwrap();
        assert!(sw > 0.0 && sw.is_finite());
        assert!(matches!(
            CoarseTimeEstimator
                .estimate(&bindings(&[("EOL", Value::from(-3))]))
                .unwrap_err(),
            EstimateError::NotApplicable(_)
        ));
    }

    #[test]
    fn fallback_chains_are_declared_and_resolvable() {
        let reg = full_registry(Technology::g10_035());
        for (primary, fallback) in [
            ("BehaviorDelayEstimator", "CoarseDelayEstimator"),
            ("SoftwareTimeEstimator", "CoarseTimeEstimator"),
        ] {
            let declared = reg.get(primary).unwrap().fallbacks();
            assert_eq!(declared, vec![fallback.to_owned()]);
            assert!(
                reg.get(fallback).is_some(),
                "declared fallback {fallback} must be registered"
            );
            assert!(reg.get(fallback).unwrap().fallbacks().is_empty());
        }
    }

    #[test]
    fn registry_integration() {
        let mut reg = EstimatorRegistry::new();
        reg.register(Box::new(BehaviorDelayEstimator::new(Technology::g10_035())));
        reg.register(Box::new(SoftwareTimeEstimator));
        let v = reg
            .run(
                "BehaviorDelayEstimator",
                &bindings(&[
                    ("Algorithm", Value::from("Montgomery")),
                    ("EOL", Value::from(64)),
                    ("Radix", Value::from(4)),
                ]),
            )
            .unwrap();
        assert!(v > 0.0);
        assert_eq!(reg.names().len(), 2);
    }
}
