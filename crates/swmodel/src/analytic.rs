//! Closed-form operation-count models (dominant terms).
//!
//! Koç–Acar–Kaliski analyse their variants analytically before measuring
//! them; this module plays the same role. The dominant `s²` coefficients
//! below are derived from the instrumented loop structures in
//! [`variants`](crate::variants), and the test suite checks that the
//! closed forms track the instrumented ledgers.


use crate::counter::OpCounts;
use crate::variants::MontgomeryVariant;

/// Closed-form dominant-term counts for one Montgomery product on an
/// `s`-word modulus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticCounts {
    /// Modulus size in words.
    pub s: u64,
    /// Word multiplications (exactly `2s² + s` for every variant).
    pub mul: f64,
    /// Word additions.
    pub add: f64,
    /// Memory reads.
    pub load: f64,
    /// Memory writes.
    pub store: f64,
    /// Loop iterations.
    pub loop_iter: f64,
}

impl AnalyticCounts {
    /// Rounds the analytic model into an [`OpCounts`] ledger.
    pub fn as_op_counts(&self) -> OpCounts {
        OpCounts {
            mul: self.mul.round() as u64,
            add: self.add.round() as u64,
            load: self.load.round() as u64,
            store: self.store.round() as u64,
            loop_iter: self.loop_iter.round() as u64,
        }
    }
}

/// Dominant-term operation counts for `variant` on an `s`-word modulus.
///
/// Every variant multiplies exactly `2s² + s` times; they differ in
/// addition count, memory traffic and loop overhead:
///
/// | variant | add | load | store | loops |
/// |---------|-----|------|-------|-------|
/// | SOS     | 4s² | 6s²  | 2s²   | 2s²   |
/// | CIOS    | 4s² | 6s²  | 2s²   | 2s²   |
/// | FIOS    | 4.2s²| 5.2s²| 3.2s²| s²    |
/// | FIPS    | 6s² | 4s²  | ~2.5s | 2s²   |
/// | CIHS    | 5.7s²| 7.2s²| 3.2s²| 2s²   |
pub fn analytic_counts(variant: MontgomeryVariant, s: u64) -> AnalyticCounts {
    let s2 = (s * s) as f64;
    let sf = s as f64;
    let (add, load, store, loop_iter) = match variant {
        MontgomeryVariant::Sos => (4.0 * s2, 6.0 * s2, 2.0 * s2, 2.0 * s2),
        MontgomeryVariant::Cios => (4.0 * s2, 6.0 * s2, 2.0 * s2, 2.0 * s2),
        MontgomeryVariant::Fios => (4.2 * s2, 5.2 * s2, 3.2 * s2, s2),
        MontgomeryVariant::Fips => (6.0 * s2, 4.0 * s2, 0.5 * sf, 2.0 * s2),
        MontgomeryVariant::Cihs => (5.7 * s2, 7.2 * s2, 3.2 * s2, 2.0 * s2),
    };
    AnalyticCounts {
        s,
        mul: 2.0 * s2 + sf,
        add: add + 2.0 * sf,
        load: load + 3.0 * sf,
        store: store + 2.0 * sf,
        loop_iter: loop_iter + sf,
    }
}

foundation::impl_json_struct!(AnalyticCounts { s, mul, add, load, store, loop_iter });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::WordMontgomery;
    use bignum::{uniform_below, UBig};
    use foundation::rng::{SeedableRng, StdRng};

    #[test]
    fn analytic_tracks_instrumented_counts() {
        let mut rng = StdRng::seed_from_u64(301);
        for bits in [256u32, 1024] {
            let mut m = uniform_below(&UBig::power_of_two(bits), &mut rng);
            m.set_bit(bits - 1, true);
            m.set_bit(0, true);
            let ctx = WordMontgomery::new(&m).unwrap();
            let s = ctx.words() as u64;
            let a = uniform_below(&m, &mut rng);
            let b = uniform_below(&m, &mut rng);
            for v in MontgomeryVariant::ALL {
                let mut counts = OpCounts::new();
                ctx.mont_mul(&a, &b, v, &mut counts).unwrap();
                let model = analytic_counts(v, s);
                assert_eq!(counts.mul, model.mul as u64, "{v} mul at {bits}b");
                for (name, got, want) in [
                    ("add", counts.add as f64, model.add),
                    ("load", counts.load as f64, model.load),
                    ("store", counts.store as f64, model.store),
                    ("loop", counts.loop_iter as f64, model.loop_iter),
                ] {
                    let ratio = got / want;
                    assert!(
                        (0.7..=1.4).contains(&ratio),
                        "{v} {name} at {bits}b: instrumented {got} vs analytic {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn cios_is_the_lightest_overall() {
        // Weighted by Pentium-class costs, CIOS should be at or near the
        // minimum — the reason it is everyone's default.
        let cost = |c: AnalyticCounts| c.mul * 10.0 + c.add + c.load + c.store + c.loop_iter * 2.0;
        let cios = cost(analytic_counts(MontgomeryVariant::Cios, 32));
        for v in MontgomeryVariant::ALL {
            let other = cost(analytic_counts(v, 32));
            assert!(
                cios <= other * 1.25,
                "{v}: CIOS {cios} should be near-minimal vs {other}"
            );
        }
    }

    #[test]
    fn rounding_is_sane() {
        let c = analytic_counts(MontgomeryVariant::Fios, 10).as_op_counts();
        assert_eq!(c.mul, 210);
        assert!(c.add > 0 && c.load > 0);
    }
}
