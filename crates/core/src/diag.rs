//! The unified diagnostics framework shared by the static analyzer
//! ([`crate::analyze`]) and the library lints in `dse-library`.
//!
//! Every finding is a [`Diagnostic`]: a stable code (`DSL001`…), a
//! severity, a [`Span`] locating the finding inside a design space (CDO
//! path, plus the property / constraint / core involved), and a
//! human-readable message. Diagnostics render like compiler output via
//! `Display` and serialize to JSON through the `foundation` codec, so a
//! design environment can consume them programmatically.

use std::fmt;

use foundation::json::{FromJson, Json, JsonError, ToJson};

/// How serious a diagnostic is.
///
/// Ordering: `Note < Warning < Error`, so `max()` over a report yields
/// the severity that should drive an exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — a hint the layer author may act on.
    Note,
    /// Suspicious but not definitively wrong.
    Warning,
    /// The space is malformed; sessions over it may misbehave.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stable diagnostic codes.
///
/// `DSL0xx` codes come from the static space analyzer; `DSL1xx` codes
/// come from the reuse-library lint in `dse-library`; `DSL2xx` codes
/// come from the resilience layer ([`crate::robust`]). Codes are
/// append-only: a published code never changes meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum DiagCode {
    /// A constraint's relation references properties outside its declared
    /// independent/dependent sets (`ConsistencyConstraint::well_formed`
    /// fails).
    MalformedConstraint,
    /// A constraint references a property that is neither declared in the
    /// CDO hierarchy (ancestors or subtree) nor produced by a
    /// quantitative/estimator relation in scope.
    UnresolvedReference,
    /// The derivation graph built from quantitative / estimator-context
    /// relations contains a dependency cycle.
    DerivationCycle,
    /// The same property is derived by more than one quantitative or
    /// estimator-context relation in the same scope.
    MultiplyDerived,
    /// A constraint is a contradiction: every combination of its
    /// referenced enumerable options violates it.
    Contradiction,
    /// A design-issue option no feasible combination can ever select —
    /// the applicable constraints eliminate it outright.
    DeadOption,
    /// A property re-declared along the generalization chain, silently
    /// shadowing the ancestor's declaration.
    ShadowedProperty,
    /// A child CDO that can never be reached: its spawning option is
    /// statically eliminated, or its spawning issue does not exist.
    UnreachableChild,
    /// A dominance (CC4) relation that statically eliminates a subset of
    /// option combinations — a useful pre-pass before session evaluation.
    DominanceHint,
    /// A generalized-issue option with no spawned child CDO to descend
    /// into.
    UnspecializedOption,
    /// A predicate compares a property against a literal outside the
    /// property's declared domain (the comparison can never be true).
    LiteralOutsideDomain,
    /// A reuse-library core binds a property the layer does not declare.
    CoreUnknownProperty,
    /// A core binding lies outside the property's declared domain.
    CoreOutsideDomain,
    /// A core binds an application requirement (cores embody decisions,
    /// not requirements).
    CoreBindsRequirement,
    /// A conflict proven by constraint propagation, carrying the
    /// "because" chain: the minimal constraints + decisions that make
    /// the contradiction inevitable.
    PropagationConflict,
    /// A joint option domain too large for the exhaustive enumerator
    /// (or past the propagation engine's search budget); the check was
    /// skipped, not guessed at.
    DomainTooLarge,
    /// A decision journal's final record was truncated (crash
    /// mid-append); recovery dropped exactly that torn tail.
    TornJournalTail,
    /// A wire request was not a parseable protocol object (bad JSON,
    /// missing `op`, wrong field types, or an oversized line).
    MalformedRequest,
    /// A wire request named an operation the protocol does not define.
    UnknownOp,
    /// A wire request named a design-space snapshot the server does not
    /// serve.
    UnknownSnapshot,
    /// A wire request named a session id that is not open (and, for
    /// `open --resume`, has no journal to recover).
    UnknownSession,
    /// An `open` named a session id that is already open (re-open with
    /// `resume` to recover a journaled one instead).
    SessionExists,
    /// The session layer rejected the operation (constraint violation,
    /// ordering violation, unknown property, …) — the transported form
    /// of a [`crate::error::DseError`].
    SessionRejected,
    /// The server could not persist or recover the session's journal
    /// (I/O failure, corrupt journal body, or a record that no longer
    /// replays).
    JournalFault,
    /// The server is draining for shutdown and refuses new work.
    ServerDraining,
    /// The server shed the request at admission (connection cap, batch
    /// cap, or session cap exceeded); the response carries a
    /// `retry_after_ms` hint and the client should back off and retry.
    Overloaded,
    /// The request's cooperative `deadline_ms` budget was exhausted
    /// before the operation completed; no state was committed.
    DeadlineExceeded,
}

impl DiagCode {
    /// Every published code, in code order.
    pub const ALL: &'static [DiagCode] = &[
        DiagCode::MalformedConstraint,
        DiagCode::UnresolvedReference,
        DiagCode::DerivationCycle,
        DiagCode::MultiplyDerived,
        DiagCode::Contradiction,
        DiagCode::DeadOption,
        DiagCode::ShadowedProperty,
        DiagCode::UnreachableChild,
        DiagCode::DominanceHint,
        DiagCode::UnspecializedOption,
        DiagCode::LiteralOutsideDomain,
        DiagCode::CoreUnknownProperty,
        DiagCode::CoreOutsideDomain,
        DiagCode::CoreBindsRequirement,
        DiagCode::PropagationConflict,
        DiagCode::DomainTooLarge,
        DiagCode::TornJournalTail,
        DiagCode::MalformedRequest,
        DiagCode::UnknownOp,
        DiagCode::UnknownSnapshot,
        DiagCode::UnknownSession,
        DiagCode::SessionExists,
        DiagCode::SessionRejected,
        DiagCode::JournalFault,
        DiagCode::ServerDraining,
        DiagCode::Overloaded,
        DiagCode::DeadlineExceeded,
    ];

    /// The stable `DSLnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::MalformedConstraint => "DSL001",
            DiagCode::UnresolvedReference => "DSL002",
            DiagCode::DerivationCycle => "DSL003",
            DiagCode::MultiplyDerived => "DSL004",
            DiagCode::Contradiction => "DSL005",
            DiagCode::DeadOption => "DSL006",
            DiagCode::ShadowedProperty => "DSL007",
            DiagCode::UnreachableChild => "DSL008",
            DiagCode::DominanceHint => "DSL009",
            DiagCode::UnspecializedOption => "DSL010",
            DiagCode::LiteralOutsideDomain => "DSL011",
            DiagCode::CoreUnknownProperty => "DSL101",
            DiagCode::CoreOutsideDomain => "DSL102",
            DiagCode::CoreBindsRequirement => "DSL103",
            DiagCode::PropagationConflict => "DSL110",
            DiagCode::DomainTooLarge => "DSL111",
            DiagCode::TornJournalTail => "DSL201",
            DiagCode::MalformedRequest => "DSL301",
            DiagCode::UnknownOp => "DSL302",
            DiagCode::UnknownSnapshot => "DSL303",
            DiagCode::UnknownSession => "DSL304",
            DiagCode::SessionExists => "DSL305",
            DiagCode::SessionRejected => "DSL306",
            DiagCode::JournalFault => "DSL307",
            DiagCode::ServerDraining => "DSL308",
            DiagCode::Overloaded => "DSL309",
            DiagCode::DeadlineExceeded => "DSL310",
        }
    }

    /// Parses a `DSLnnn` code string.
    pub fn from_code(s: &str) -> Option<DiagCode> {
        DiagCode::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// One-line meaning, used in the code table and `--explain`-style
    /// output.
    pub fn describe(self) -> &'static str {
        match self {
            DiagCode::MalformedConstraint => {
                "constraint relation references properties outside its indep/dep sets"
            }
            DiagCode::UnresolvedReference => {
                "constraint references a property the hierarchy never declares or derives"
            }
            DiagCode::DerivationCycle => "quantitative/estimator derivation graph has a cycle",
            DiagCode::MultiplyDerived => "property derived by more than one relation in scope",
            DiagCode::Contradiction => {
                "constraint eliminates every combination of its enumerable options"
            }
            DiagCode::DeadOption => "design-issue option no feasible combination can select",
            DiagCode::ShadowedProperty => {
                "property re-declared along the generalization chain shadows an ancestor"
            }
            DiagCode::UnreachableChild => "child CDO whose spawning option is statically eliminated",
            DiagCode::DominanceHint => "dominance relation statically eliminates some combinations",
            DiagCode::UnspecializedOption => "generalized-issue option has no spawned child CDO",
            DiagCode::LiteralOutsideDomain => {
                "predicate compares a property against a literal outside its domain"
            }
            DiagCode::CoreUnknownProperty => "core binds a property the layer does not declare",
            DiagCode::CoreOutsideDomain => "core binding is outside the declared domain",
            DiagCode::CoreBindsRequirement => "core binds an application requirement",
            DiagCode::PropagationConflict => {
                "propagation proved a conflict; the because-chain names the minimal cause"
            }
            DiagCode::DomainTooLarge => {
                "joint option domain too large for the engine; check skipped, not guessed"
            }
            DiagCode::TornJournalTail => {
                "decision journal's final record was truncated and dropped during recovery"
            }
            DiagCode::MalformedRequest => "wire request is not a parseable protocol object",
            DiagCode::UnknownOp => "wire request names an operation the protocol does not define",
            DiagCode::UnknownSnapshot => "wire request names a snapshot the server does not serve",
            DiagCode::UnknownSession => "wire request names a session that is not open",
            DiagCode::SessionExists => "open names a session id that is already open",
            DiagCode::SessionRejected => "session layer rejected the operation",
            DiagCode::JournalFault => "session journal could not be persisted or recovered",
            DiagCode::ServerDraining => "server is draining for shutdown and refuses new work",
            DiagCode::Overloaded => {
                "server shed the request at admission; back off retry_after_ms and retry"
            }
            DiagCode::DeadlineExceeded => {
                "request's cooperative deadline budget ran out; nothing was committed"
            }
        }
    }

    /// The severity this code carries by default.
    pub fn default_severity(self) -> Severity {
        match self {
            DiagCode::MalformedConstraint
            | DiagCode::UnresolvedReference
            | DiagCode::DerivationCycle
            | DiagCode::Contradiction
            | DiagCode::CoreUnknownProperty
            | DiagCode::CoreOutsideDomain => Severity::Error,
            DiagCode::MultiplyDerived
            | DiagCode::DeadOption
            | DiagCode::ShadowedProperty
            | DiagCode::UnreachableChild
            | DiagCode::UnspecializedOption
            | DiagCode::LiteralOutsideDomain
            | DiagCode::CoreBindsRequirement
            | DiagCode::TornJournalTail => Severity::Warning,
            DiagCode::MalformedRequest
            | DiagCode::UnknownOp
            | DiagCode::UnknownSnapshot
            | DiagCode::UnknownSession
            | DiagCode::SessionExists
            | DiagCode::SessionRejected
            | DiagCode::JournalFault
            | DiagCode::ServerDraining
            | DiagCode::Overloaded
            | DiagCode::DeadlineExceeded => Severity::Error,
            DiagCode::DominanceHint
            | DiagCode::PropagationConflict
            | DiagCode::DomainTooLarge => Severity::Note,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points inside a design space.
///
/// The `path` is the dotted CDO path (`"Operator.Modular.Multiplier"`);
/// the optional fields narrow the finding to a property, constraint or
/// reuse-library core.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Span {
    /// Dotted CDO path, empty when the finding is space-global.
    pub path: String,
    /// The property involved, if any.
    pub property: Option<String>,
    /// The constraint involved, if any.
    pub constraint: Option<String>,
    /// The reuse-library core involved, if any.
    pub core: Option<String>,
}

impl Span {
    /// A span at a CDO path.
    pub fn at(path: impl Into<String>) -> Span {
        Span {
            path: path.into(),
            ..Span::default()
        }
    }

    /// Narrows the span to a property.
    pub fn property(mut self, name: impl Into<String>) -> Span {
        self.property = Some(name.into());
        self
    }

    /// Narrows the span to a constraint.
    pub fn constraint(mut self, name: impl Into<String>) -> Span {
        self.constraint = Some(name.into());
        self
    }

    /// Narrows the span to a reuse-library core.
    pub fn core(mut self, name: impl Into<String>) -> Span {
        self.core = Some(name.into());
        self
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if !self.path.is_empty() {
            write!(f, "{}", self.path)?;
            wrote = true;
        }
        for (label, value) in [
            ("core", &self.core),
            ("constraint", &self.constraint),
            ("property", &self.property),
        ] {
            if let Some(v) = value {
                if wrote {
                    f.write_str(", ")?;
                }
                write!(f, "{label} {v}")?;
                wrote = true;
            }
        }
        if !wrote {
            f.write_str("<space>")?;
        }
        Ok(())
    }
}

/// One finding: code + severity + location + message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Severity (defaults to the code's, but callers may override).
    pub severity: Severity,
    /// Where the finding points.
    pub span: Span,
    /// Human-readable explanation of this specific instance.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity.
    pub fn new(code: DiagCode, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            span,
            message: message.into(),
        }
    }

    /// Overrides the severity.
    pub fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    /// Whether this finding is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

/// An ordered collection of diagnostics, as produced by one analyzer or
/// lint run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Wraps a finding list.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Report {
        Report { diagnostics }
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// All findings, in emission order (errors first after
    /// [`sort`](Self::sort)).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Note-severity findings.
    pub fn notes(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Note)
    }

    /// Whether the report has no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether the report has at least one error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the report is empty (same as [`is_clean`](Self::is_clean)).
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Sorts findings by severity (errors first), then code, then span
    /// path — a stable presentation order.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(&b.code))
                .then(a.span.path.cmp(&b.span.path))
        });
    }

    /// Merges another report into this one.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} note(s)",
            self.errors().count(),
            self.warnings().count(),
            self.notes().count()
        )
    }
}

impl ToJson for DiagCode {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_owned())
    }
}

impl FromJson for DiagCode {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => DiagCode::from_code(s)
                .ok_or_else(|| JsonError::decode(format!("unknown diagnostic code {s:?}"))),
            other => Err(JsonError::type_mismatch("DiagCode", "string", other)),
        }
    }
}

foundation::impl_json_enum!(Severity { Note, Warning, Error });
foundation::impl_json_struct!(Span { path, property, constraint, core });
foundation::impl_json_struct!(Diagnostic { code, severity, span, message });
foundation::impl_json_struct!(Report { diagnostics });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &c in DiagCode::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().starts_with("DSL"));
            assert!(!c.describe().is_empty());
            assert_eq!(DiagCode::from_code(c.as_str()), Some(c));
        }
        assert_eq!(DiagCode::from_code("DSL999"), None);
        assert_eq!(DiagCode::DerivationCycle.as_str(), "DSL003");
    }

    #[test]
    fn severity_orders_note_warning_error() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn display_renders_like_a_compiler() {
        let d = Diagnostic::new(
            DiagCode::DerivationCycle,
            Span::at("Operator.Multiplier").constraint("CC2"),
            "EOL → Latency → EOL",
        );
        assert_eq!(
            d.to_string(),
            "error[DSL003] Operator.Multiplier, constraint CC2: EOL → Latency → EOL"
        );
        let empty = Diagnostic::new(DiagCode::DominanceHint, Span::default(), "m");
        assert!(empty.to_string().contains("<space>"));
    }

    #[test]
    fn report_partitions_and_sorts() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            DiagCode::DominanceHint,
            Span::at("B"),
            "hint",
        ));
        r.push(Diagnostic::new(
            DiagCode::DerivationCycle,
            Span::at("A"),
            "cycle",
        ));
        r.push(Diagnostic::new(DiagCode::DeadOption, Span::at("C"), "dead"));
        assert_eq!(r.len(), 3);
        assert!(!r.is_clean());
        assert!(r.has_errors());
        r.sort();
        assert_eq!(r.diagnostics()[0].code, DiagCode::DerivationCycle);
        assert_eq!(r.diagnostics()[2].code, DiagCode::DominanceHint);
        let rendered = r.to_string();
        assert!(rendered.contains("1 error(s), 1 warning(s), 1 note(s)"));
    }

    #[test]
    fn json_roundtrip() {
        let d = Diagnostic::new(
            DiagCode::DeadOption,
            Span::at("Multiplier.Hardware").property("Algorithm"),
            "option Montgomery is dead",
        )
        .with_severity(Severity::Error);
        let text = foundation::json::encode(&d);
        assert!(text.contains("\"DSL006\""));
        let back: Diagnostic = foundation::json::decode(&text).unwrap();
        assert_eq!(back, d);

        let r = Report::from_diagnostics(vec![d]);
        let back: Report = foundation::json::decode(&foundation::json::encode(&r)).unwrap();
        assert_eq!(back, r);
    }
}
