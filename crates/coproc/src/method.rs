//! Exponentiation methods: the coprocessor-level design issue.
//!
//! The paper notes that the modular-multiplier exploration "could have
//! been part of the design space exploration performed for the main
//! architectural component, i.e., the modular exponentiation coprocessor".
//! The coprocessor's own headline issue is the exponentiation method:
//! binary square-and-multiply versus 2ᵏ-ary windowing, trading table
//! storage (and precomputation multiplications) for fewer per-bit
//! multiplications.

use std::fmt;


/// The exponent-scanning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpMethod {
    /// Left-to-right binary square-and-multiply.
    Binary,
    /// 2ᵏ-ary windowing with the given window size (2–8 bits).
    Window(u32),
}

impl ExpMethod {
    /// The window size (1 for binary).
    pub fn window_bits(self) -> u32 {
        match self {
            ExpMethod::Binary => 1,
            ExpMethod::Window(k) => k,
        }
    }

    /// Validates the method's parameters.
    pub fn is_valid(self) -> bool {
        match self {
            ExpMethod::Binary => true,
            ExpMethod::Window(k) => (2..=8).contains(&k),
        }
    }

    /// Expected total modular multiplications for a `bits`-bit exponent —
    /// the quantitative relation the coprocessor layer's CC7 carries.
    pub fn expected_multiplications(self, bits: u32) -> u64 {
        bignum::expected_counts(bits, self.window_bits()).total()
    }

    /// Number of operand-wide table registers the method needs beyond the
    /// accumulator (storage cost of windowing).
    pub fn table_registers(self) -> u64 {
        match self {
            ExpMethod::Binary => 1, // the base itself
            ExpMethod::Window(k) => 1u64 << k,
        }
    }
}

impl fmt::Display for ExpMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpMethod::Binary => write!(f, "binary"),
            ExpMethod::Window(k) => write!(f, "{}-ary window", 1u64 << k),
        }
    }
}

foundation::impl_json_enum!(ExpMethod { Binary, Window(bits) });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_rules() {
        assert!(ExpMethod::Binary.is_valid());
        assert!(ExpMethod::Window(4).is_valid());
        assert!(!ExpMethod::Window(1).is_valid());
        assert!(!ExpMethod::Window(9).is_valid());
    }

    #[test]
    fn windowing_reduces_expected_multiplications_at_kilobit_sizes() {
        let binary = ExpMethod::Binary.expected_multiplications(1024);
        let w4 = ExpMethod::Window(4).expected_multiplications(1024);
        assert!(w4 < binary, "{w4} < {binary}");
    }

    #[test]
    fn storage_grows_exponentially() {
        assert_eq!(ExpMethod::Binary.table_registers(), 1);
        assert_eq!(ExpMethod::Window(2).table_registers(), 4);
        assert_eq!(ExpMethod::Window(6).table_registers(), 64);
    }

    #[test]
    fn display_names() {
        assert_eq!(ExpMethod::Binary.to_string(), "binary");
        assert_eq!(ExpMethod::Window(4).to_string(), "16-ary window");
    }
}
