//! Self-documentation: render a layer to Markdown.
//!
//! The paper stresses that the design space representation is
//! "self-documented and highly compartmentalized". This module turns a
//! [`DesignSpace`] into a human-readable report: the hierarchy tree, and
//! per-CDO sections listing properties (with kinds, domains, defaults and
//! units), consistency constraints (with their Indep/Dep sets and
//! relations) and behavioural descriptions.

use std::fmt::Write as _;

use crate::hierarchy::{CdoId, DesignSpace};

/// Renders the whole layer as Markdown.
pub fn render_markdown(space: &DesignSpace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Design Space Layer: {}\n", space.name());
    let _ = writeln!(out, "## Hierarchy\n");
    let _ = writeln!(out, "```");
    for &root in space.roots() {
        render_tree(space, root, 0, &mut out);
    }
    let _ = writeln!(out, "```");

    let _ = writeln!(out, "\n## Classes of design objects\n");
    for &root in space.roots() {
        render_cdo_sections(space, root, &mut out);
    }
    out
}

fn render_tree(space: &DesignSpace, id: CdoId, depth: usize, out: &mut String) {
    let node = space.node(id);
    let indent = "  ".repeat(depth);
    let marker = match node.spawned_by() {
        Some((issue, value)) => format!("  [{issue} = {value}]"),
        None => String::new(),
    };
    let _ = writeln!(out, "{indent}{}{marker}", node.name());
    for &c in node.children() {
        render_tree(space, c, depth + 1, out);
    }
}

fn render_cdo_sections(space: &DesignSpace, id: CdoId, out: &mut String) {
    let node = space.node(id);
    let has_content = !node.own_properties().is_empty()
        || !node.own_constraints().is_empty()
        || !node.behaviors().is_empty();
    if has_content {
        let _ = writeln!(out, "### {}\n", space.path_string(id));
        if !node.doc().is_empty() {
            let _ = writeln!(out, "{}\n", node.doc());
        }
        if !node.own_properties().is_empty() {
            let _ = writeln!(out, "**Properties**\n");
            for p in node.own_properties() {
                let _ = writeln!(out, "- {p} — {}", p.doc());
            }
            let _ = writeln!(out);
        }
        if !node.own_constraints().is_empty() {
            let _ = writeln!(out, "**Consistency constraints**\n");
            for c in node.own_constraints() {
                let _ = writeln!(out, "```\n{c}\n```");
            }
        }
        if !node.behaviors().is_empty() {
            let _ = writeln!(out, "**Behavioural descriptions**\n");
            for b in node.behaviors() {
                let _ = writeln!(out, "```\n{b}\n```");
            }
        }
    }
    for &c in node.children() {
        render_cdo_sections(space, c, out);
    }
}

/// Renders the hierarchy as a Graphviz `dot` digraph: taxonomic edges
/// solid, generalized-issue edges labelled with their `issue = option`
/// binding.
pub fn render_dot(space: &DesignSpace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", space.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
    for (id, node) in space.iter() {
        let shape = if node.generalized_issue().is_some() {
            ", peripheries=2"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"{shape}];",
            id.index(),
            node.name().replace('"', "'")
        );
        if let Some(parent) = node.parent() {
            match node.spawned_by() {
                Some((issue, value)) => {
                    let _ = writeln!(
                        out,
                        "  n{} -> n{} [label=\"{issue} = {value}\", style=dashed];",
                        parent.index(),
                        id.index()
                    );
                }
                None => {
                    let _ = writeln!(out, "  n{} -> n{};", parent.index(), id.index());
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ConsistencyConstraint, Relation};
    use crate::expr::Pred;
    use crate::property::Property;
    use crate::value::{Domain, Value};

    #[test]
    fn render_covers_hierarchy_properties_and_constraints() {
        let mut s = DesignSpace::new("demo");
        let root = s.add_root("Multiplier", "modular multipliers");
        s.add_property(
            root,
            Property::generalized_issue(
                "Style",
                Domain::options(["Hardware", "Software"]),
                "hw/sw",
            ),
        )
        .unwrap();
        s.specialize(root, "Style").unwrap();
        s.add_constraint(
            root,
            ConsistencyConstraint::new(
                "CC1",
                "demo constraint",
                vec!["A".to_owned()],
                vec!["B".to_owned()],
                Relation::InconsistentOptions(Pred::is("A", Value::from("x"))),
            ),
        ).unwrap();
        let md = render_markdown(&s);
        assert!(md.contains("# Design Space Layer: demo"));
        assert!(md.contains("Multiplier"));
        assert!(md.contains("[Style = Hardware]"));
        assert!(md.contains("Style [generalized design issue]"));
        assert!(md.contains("CC1: demo constraint"));
        assert!(md.contains("Indep_Set = {A}"));
    }

    #[test]
    fn empty_space_renders_headers_only() {
        let s = DesignSpace::new("empty");
        let md = render_markdown(&s);
        assert!(md.contains("# Design Space Layer: empty"));
        assert!(md.contains("## Hierarchy"));
    }

    #[test]
    fn dot_renders_both_edge_kinds() {
        let mut s = DesignSpace::new("dot");
        let root = s.add_root("Multiplier", "");
        let _tax = s.add_child(root, "Taxonomic", "");
        s.add_property(
            root,
            Property::generalized_issue("Style", Domain::options(["Hardware"]), ""),
        )
        .unwrap();
        s.specialize(root, "Style").unwrap();
        let dot = render_dot(&s);
        assert!(dot.starts_with("digraph \"dot\""));
        assert!(dot.contains("n0 -> n1;"), "taxonomic edge: {dot}");
        assert!(dot.contains("label=\"Style = Hardware\", style=dashed"));
        assert!(dot.contains("peripheries=2"), "generalizing node marked");
        assert!(dot.trim_end().ends_with('}'));
    }
}
