//! Differential proof that the zero-copy wire codec and the original
//! tree codec are the same codec.
//!
//! The borrowed pull-parser (`json::Reader`) and the tree-free
//! serializer (`json::Writer`) replace the `Json`-tree codec on the
//! server hot path, with the tree codec retained as the oracle (the
//! `DSE_WIRE_ENGINE` pattern). These tests pin the two implementations
//! together from three directions:
//!
//! 1. seeded random `Json` trees round-trip through (old parser → new
//!    writer) and (new reader → old serializer) byte-identically;
//! 2. 2000 seeded corrupt lines are rejected by **both** parsers, each
//!    carrying a source position, and on lines where one parser
//!    accepts, the other accepts the same value;
//! 3. two engines — one on the borrowed wire path, one forced onto the
//!    tree oracle — answer the golden smoke conversation and a seeded
//!    random protocol stream with byte-identical responses.

use design_space_layer::foundation::json::{self, Json, Reader};
use design_space_layer::foundation::rng::{Rng, SeedableRng, StdRng};

// ---- seeded tree generator ---------------------------------------------

fn random_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..12);
    let mut s = String::new();
    for _ in 0..len {
        match rng.gen_range(0u32..10) {
            // Plain ASCII dominates, as it does on the wire.
            0..=5 => s.push(rng.gen_range(0x20u8..0x7f) as char),
            6 => s.push(['"', '\\', '/'][rng.gen_range(0usize..3)]),
            7 => s.push(['\n', '\t', '\r', '\u{8}', '\u{c}'][rng.gen_range(0usize..5)]),
            8 => s.push(['\u{0}', '\u{1f}', '\u{7f}'][rng.gen_range(0usize..3)]),
            _ => s.push(['é', '→', '𝄞', 'ß'][rng.gen_range(0usize..4)]),
        }
    }
    s
}

fn random_float(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u32..5) {
        0 => 0.0,
        1 => -0.5,
        2 => 8.0,
        3 => rng.gen_range(-1.0e9..1.0e9),
        _ => rng.gen_range(-1.0..1.0) * 1.0e-7,
    }
}

fn random_tree(rng: &mut StdRng, depth: usize) -> Json {
    let top = if depth >= 4 { 5 } else { 7 };
    match rng.gen_range(0u32..top) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(0u32..2) == 1),
        2 => Json::Int(rng.gen_range(i64::MIN..=i64::MAX)),
        3 => Json::Float(random_float(rng)),
        4 => Json::Str(random_string(rng)),
        5 => Json::Array(
            (0..rng.gen_range(0usize..5))
                .map(|_| random_tree(rng, depth + 1))
                .collect(),
        ),
        _ => Json::Object(
            (0..rng.gen_range(0usize..5))
                .map(|i| (format!("k{i}_{}", random_string(rng)), random_tree(rng, depth + 1)))
                .collect(),
        ),
    }
}

#[test]
fn random_trees_roundtrip_byte_identically_between_codecs() {
    let mut rng = StdRng::seed_from_u64(0x11E0_C0DE);
    for case in 0..500 {
        let tree = random_tree(&mut rng, 0);
        let old = json::encode(&tree);

        // Tree-free writer serializes the same tree to the same bytes.
        let mut new = Vec::new();
        json::write_json(&mut new, &tree);
        assert_eq!(old.as_bytes(), &new[..], "case {case}: writer diverged");

        // Old parser → new writer round-trips to the input bytes.
        let via_old = Json::parse(&old).expect("old parser accepts its own output");
        let mut rewritten = Vec::new();
        json::write_json(&mut rewritten, &via_old);
        assert_eq!(old.as_bytes(), &rewritten[..], "case {case}: old→new roundtrip");

        // New reader → old serializer round-trips to the input bytes.
        let via_new = Reader::parse_document(old.as_bytes())
            .expect("new reader accepts the old serializer's output");
        assert_eq!(old, json::encode(&via_new), "case {case}: new→old roundtrip");
        assert_eq!(via_old, via_new, "case {case}: parsed values diverged");
    }
}

// ---- malformed-input parity --------------------------------------------

/// Mutates a valid document into a (usually) corrupt line.
fn corrupt(rng: &mut StdRng, base: &str) -> Option<String> {
    let mut bytes = base.as_bytes().to_vec();
    match rng.gen_range(0u32..4) {
        0 if !bytes.is_empty() => {
            bytes.truncate(rng.gen_range(0usize..bytes.len()));
        }
        1 if !bytes.is_empty() => {
            let i = rng.gen_range(0usize..bytes.len());
            bytes[i] = [b'{', b'}', b'[', b']', b',', b':', b'"', b'\\', b'e', b'0', b'+']
                [rng.gen_range(0usize..11)];
        }
        2 => {
            let i = rng.gen_range(0usize..=bytes.len());
            bytes.insert(
                i,
                [b'{', b'}', b',', b':', b'"', b'x'][rng.gen_range(0usize..6)],
            );
        }
        _ => {
            let i = rng.gen_range(0usize..=bytes.len());
            bytes.insert(i, b',');
        }
    }
    // Both parsers take `&str`; mutations that break UTF-8 are framing
    // errors, rejected before either parser runs.
    String::from_utf8(bytes).ok()
}

#[test]
fn both_parsers_reject_the_same_corrupt_lines_with_a_position() {
    let mut rng = StdRng::seed_from_u64(0xBAD_1E5);
    let mut rejected = 0usize;
    let mut generated = 0usize;
    while rejected < 2000 {
        generated += 1;
        assert!(
            generated < 40_000,
            "corruption generator stopped producing rejections \
             ({rejected} after {generated} lines)"
        );
        let base = json::encode(&random_tree(&mut rng, 0));
        let Some(line) = corrupt(&mut rng, &base) else {
            continue;
        };
        let old = Json::parse(&line);
        let new = Reader::parse_document(line.as_bytes());
        match (old, new) {
            (Err(eo), Err(en)) => {
                assert!(
                    eo.line >= 1 && eo.col >= 1,
                    "old parser rejected {line:?} without a position: {eo}"
                );
                assert!(
                    en.line >= 1 && en.col >= 1,
                    "new parser rejected {line:?} without a position: {en}"
                );
                rejected += 1;
            }
            // A mutation can still be valid JSON; then both must accept
            // the same value.
            (Ok(a), Ok(b)) => assert_eq!(a, b, "parsers accepted {line:?} differently"),
            (Ok(_), Err(e)) => panic!("only the new parser rejected {line:?}: {e}"),
            (Err(e), Ok(_)) => panic!("only the old parser rejected {line:?}: {e}"),
        }
    }
}

// ---- engine-level differential transcript ------------------------------

fn engine_pair() -> (dse_server::Engine, dse_server::Engine) {
    // `wire_tree` latches at build time, so flipping the env var around
    // construction yields one engine per path.
    std::env::set_var(dse_server::engine::WIRE_ENGINE_ENV, "tree");
    let tree = dse_server::EngineBuilder::new(techlib::Technology::g10_035())
        .with_shipped_layers()
        .build()
        .expect("tree engine builds");
    std::env::remove_var(dse_server::engine::WIRE_ENGINE_ENV);
    let fast = dse_server::EngineBuilder::new(techlib::Technology::g10_035())
        .with_shipped_layers()
        .build()
        .expect("fast engine builds");
    (tree, fast)
}

fn assert_transcripts_match(lines: &[String]) {
    let (tree, fast) = engine_pair();
    for (i, line) in lines.iter().enumerate() {
        let expected = tree.handle_line_tree(line);
        let got = fast.handle_line(line);
        assert_eq!(
            expected, got,
            "line {i} diverged between tree and fast engines: {line:?}"
        );
    }
}

#[test]
fn golden_smoke_conversation_is_byte_identical_on_both_paths() {
    let script = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/server_smoke.script"
    ))
    .expect("golden script exists");
    let lines: Vec<String> = script
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect();
    assert!(lines.len() >= 20, "golden script unexpectedly short");
    assert_transcripts_match(&lines);
}

/// A seeded stream of plausible-to-hostile protocol lines: valid hot
/// ops, wrong types, missing fields, duplicate keys, unknown ops,
/// unparseable garbage.
fn random_protocol_stream(seed: u64, n: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lines = Vec::with_capacity(n);
    for i in 0..n {
        let session = format!("f{}", rng.gen_range(0u32..4));
        let line = match rng.gen_range(0u32..14) {
            0 => format!(r#"{{"op":"open","session":"{session}","snapshot":"crypto"}}"#),
            1 => format!(r#"{{"op":"decide","session":"{session}","name":"EOL","value":768}}"#),
            2 => format!(
                r#"{{"op":"decide","session":"{session}","name":"ModuloIsOdd","value":"Guaranteed"}}"#
            ),
            3 => format!(r#"{{"op":"decide","session":"{session}","name":"EOL","value":8.5}}"#),
            4 => format!(r#"{{"op":"retract","session":"{session}"}}"#),
            5 => format!(r#"{{"op":"surviving_cores","session":"{session}","limit":3}}"#),
            6 => format!(r#"{{"op":"viable","session":"{session}","name":"ImplementationStyle"}}"#),
            7 => format!(r#"{{"op":"eval","session":"{session}"}}"#),
            8 => format!(r#"{{"op":"close","session":"{session}"}}"#),
            9 => r#"{"op":"stats"}"#.to_owned(),
            // Hostile shapes: every one must fall back (or error) the
            // same way on both paths.
            10 => format!(r#"{{"op":"decide","session":"{session}","value":768}}"#),
            11 => format!(
                r#"{{"op":"decide","op":"stats","session":"{session}","name":"EOL","value":1,"id":{i}}}"#
            ),
            12 => format!(r#"{{"op":"stats","id":{}}}"#, rng.gen_range(i64::MIN..=i64::MAX)),
            _ => json::encode(&random_tree(&mut rng, 2)),
        };
        lines.push(line);
    }
    lines
}

#[test]
fn seeded_protocol_fuzz_is_byte_identical_on_both_paths() {
    assert_transcripts_match(&random_protocol_stream(0x5EED_F00D, 600));
}
