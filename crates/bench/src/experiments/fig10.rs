//! Fig. 10: the Montgomery behavioural description, validated — every
//! datapath realization of the Fig.-10 loop computes exactly what the
//! `bignum` golden model says it should, across random operands,
//! algorithms, radices and slice widths.

use bignum::{brickell_mod_mul, mont_mul_digit_serial, uniform_below, UBig};
use hwmodel::designs::paper_designs;
use hwmodel::{sim, Algorithm};
use foundation::rng::{SeedableRng, StdRng};

use crate::fmt;

/// One validation line.
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// Core label.
    pub label: String,
    /// Number of random cases run.
    pub cases: u32,
    /// Number matching the golden model.
    pub passed: u32,
}

/// Runs `cases` random multiplications per design family and checks each
/// against the golden model.
pub fn run(cases: u32, modulus_bits: u32, seed: u64) -> Vec<ValidationRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for family in paper_designs() {
        let arch = family.architecture(16).expect("16-bit slices");
        let mut passed = 0;
        for _ in 0..cases {
            let mut m = uniform_below(&UBig::power_of_two(modulus_bits), &mut rng);
            m.set_bit(modulus_bits - 1, true);
            m.set_bit(0, true); // every family accepts odd moduli
            let a = uniform_below(&m, &mut rng);
            let b = uniform_below(&m, &mut rng);
            let got = sim::simulate(&arch, &a, &b, &m).expect("valid operands");
            let expect = match family.algorithm() {
                Algorithm::Montgomery => {
                    let eol = sim::effective_eol(&arch, &m);
                    mont_mul_digit_serial(
                        &a,
                        &b,
                        &m,
                        arch.digit_bits(),
                        arch.iterations(eol) as u32,
                    )
                    .expect("odd modulus")
                }
                Algorithm::Brickell => brickell_mod_mul(&a, &b, &m, arch.digit_bits()),
            };
            if got.product == expect {
                passed += 1;
            }
        }
        out.push(ValidationRow {
            label: family.to_string(),
            cases,
            passed,
        });
    }
    out
}

/// Renders the validation table.
pub fn render() -> String {
    let rows = run(25, 96, 0xF1610);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{}/{}", r.passed, r.cases),
                if r.passed == r.cases {
                    "ok"
                } else {
                    "MISMATCH"
                }
                .to_owned(),
            ]
        })
        .collect();
    format!(
        "Fig. 10 — datapath realizations vs the behavioural description's golden model\n\n{}",
        fmt::table(&["design family", "passed", "verdict"], &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_passes_every_case() {
        for r in run(10, 64, 42) {
            assert_eq!(r.passed, r.cases, "{}", r.label);
        }
    }

    #[test]
    fn render_shows_ok_verdicts() {
        let s = render();
        assert!(s.contains("ok"));
        assert!(!s.contains("MISMATCH"));
    }
}
