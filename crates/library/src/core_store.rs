//! Columnar core store: posting-list bitsets over interned property
//! columns, with an incrementally maintained surviving set.
//!
//! [`Explorer`](crate::Explorer) queries used to re-scan the full
//! [`CoreRecord`] list on every call, matching string-keyed `BTreeMap`
//! bindings core by core. At reuse-library scale (the paper's Fig. 1
//! promises libraries "maintained by IP providers", i.e. far larger than
//! the shipped 768-core crypto library) that scan dominates the
//! interactive decide/retract loop.
//!
//! The store turns the library into a struct-of-arrays index built once
//! at load time:
//!
//! * one **column** per bound property ([`Symbol`]-keyed), holding a
//!   `bound` bitset (which cores bind the property at all — compliance
//!   is lenient, so unbound cores survive any decision on it) and one
//!   **posting-list bitset** per distinct option value,
//! * one dense **merit column** (`f64` vector + presence bitset) per
//!   figure of merit.
//!
//! A session decision `P = v` then becomes a single AND-merge of u64
//! words: `surviving &= !bound(P) | posting(P, v)`. The surviving set is
//! maintained *incrementally* across `decide`/`retract` by a trail of
//! word-level deltas (mirroring the `analyze::solve` solver trail): each
//! decision records only the words it changed, and retracting restores
//! them — no recomputation from scratch.
//!
//! Value canonicalization replicates [`Value::matches`] exactly:
//! `Int`/`Real` collapse onto one numeric key (`-0.0` normalized onto
//! `0.0`), `NaN` matches nothing, and `Text`/`Flag` compare structurally
//! — so posting-list hits are bit-identical to the legacy scan's
//! verdicts. The scan is kept alive as a differential oracle behind
//! `DSE_EXPLORER_ENGINE=scan` (see [`crate::Explorer`]).

use std::collections::{BTreeMap, HashMap};

use dse::analyze::solve::Viability;
use dse::eval::FigureOfMerit;
use dse::hierarchy::Symbol;
use dse::value::Value;

use crate::core_record::CoreRecord;
use crate::reuse::ReuseLibrary;

/// Smallest core count worth fanning out on the `foundation::par` pool;
/// below it the per-chunk submission overhead exceeds the word merge
/// itself.
pub(crate) const PAR_MIN_CORES: usize = 256;

/// Words per parallel chunk when materializing survivors or folding
/// merit ranges (4096 cores per chunk).
const PAR_WORDS_PER_CHUNK: usize = 64;

// ---------------------------------------------------------------------
// Bitset
// ---------------------------------------------------------------------

/// A fixed-width bitset over core indices, stored as u64 words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// All-zeros set over `len` cores.
    pub fn empty(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones set over `len` cores (trailing bits of the last word
    /// stay zero).
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::empty(len);
        for (i, w) in s.words.iter_mut().enumerate() {
            let remaining = len - i * 64;
            *w = if remaining >= 64 {
                u64::MAX
            } else {
                (1u64 << remaining) - 1
            };
        }
        s
    }

    /// Number of core slots (not set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Population count.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

// ---------------------------------------------------------------------
// Canonical posting keys
// ---------------------------------------------------------------------

/// A posting-list key canonicalizing [`Value::matches`] equivalence
/// classes: two values share a key iff they match each other.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PostingKey {
    /// `Int`/`Real` collapsed to the f64 bit pattern, `-0.0` → `0.0`.
    Num(u64),
    Text(String),
    Flag(bool),
}

/// The posting key for `value`, or `None` when the value matches
/// nothing (`NaN`) or is an unknown future variant.
fn posting_key(value: &Value) -> Option<PostingKey> {
    if let Some(f) = value.as_f64() {
        if f.is_nan() {
            return None; // NaN == NaN is false under `matches`.
        }
        // -0.0 == 0.0 numerically; fold onto one bit pattern.
        let f = if f == 0.0 { 0.0 } else { f };
        return Some(PostingKey::Num(f.to_bits()));
    }
    match value {
        Value::Text(s) => Some(PostingKey::Text(s.clone())),
        Value::Flag(b) => Some(PostingKey::Flag(*b)),
        // `Value` is non_exhaustive; a future non-numeric variant has no
        // posting list and is handled by the scan-compatible fallback
        // (it matches nothing stored today).
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Columns
// ---------------------------------------------------------------------

/// One property column: which cores bind it, and a posting list per
/// distinct bound value.
#[derive(Debug)]
struct Column {
    /// Cores that bind this property at all.
    bound: BitSet,
    /// Posting list per canonical value.
    postings: HashMap<PostingKey, BitSet>,
}

/// One merit column: dense values plus a presence bitset.
#[derive(Debug)]
struct MeritColumn {
    /// Cores recording this merit.
    present: BitSet,
    /// `values[i]` is meaningful iff `present.contains(i)`.
    values: Vec<f64>,
}

// ---------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------

/// The columnar index over a fixed roster of cores.
///
/// The store holds no references to the records themselves — it indexes
/// core *positions* in the roster it was built from, so it can be
/// shared (`Arc`) across server sessions while each
/// [`Explorer`](crate::Explorer) resolves positions back to records.
#[derive(Debug)]
pub struct CoreStore {
    len: usize,
    columns: HashMap<Symbol, Column>,
    merits: BTreeMap<FigureOfMerit, MeritColumn>,
}

/// The deduplicated roster over `libraries`: cores in concatenated
/// library order, keeping the **first** occurrence of each
/// `(vendor, name)` pair. Passing the same library twice therefore
/// yields union semantics, not doubled cores. Both the columnar engine
/// and the scan oracle iterate this roster, so their outputs stay
/// bit-identical.
pub fn roster<'a>(libraries: &[&'a ReuseLibrary]) -> Vec<&'a CoreRecord> {
    let total: usize = libraries.iter().map(|l| l.len()).sum();
    let mut seen: HashMap<(&str, &str), ()> = HashMap::with_capacity(total);
    let mut out = Vec::with_capacity(total);
    for lib in libraries {
        for core in lib.cores() {
            if seen.insert((core.vendor(), core.name()), ()).is_none() {
                out.push(core);
            }
        }
    }
    out
}

/// The same dedup as [`roster`], expressed as `(library, core)` index
/// pairs instead of borrowed records. The dedup hashes every
/// `(vendor, name)` pair, so callers that query a fixed library set
/// repeatedly (the server does, once per `surviving_cores` request)
/// should compute the indices once and rebuild the borrowed roster via
/// [`roster_from_indices`] — a plain index walk, no hashing.
pub fn roster_indices(libraries: &[&ReuseLibrary]) -> Vec<(u32, u32)> {
    let total: usize = libraries.iter().map(|l| l.len()).sum();
    let mut seen: HashMap<(&str, &str), ()> = HashMap::with_capacity(total);
    let mut out = Vec::with_capacity(total);
    for (li, lib) in libraries.iter().enumerate() {
        for (ci, core) in lib.cores().iter().enumerate() {
            if seen.insert((core.vendor(), core.name()), ()).is_none() {
                out.push((li as u32, ci as u32));
            }
        }
    }
    out
}

/// Materializes the borrowed roster from precomputed
/// [`roster_indices`] over the **same** library set, byte-identical to
/// what [`roster`] would return.
pub fn roster_from_indices<'a>(
    libraries: &[&'a ReuseLibrary],
    indices: &[(u32, u32)],
) -> Vec<&'a CoreRecord> {
    indices
        .iter()
        .map(|&(li, ci)| &libraries[li as usize].cores()[ci as usize])
        .collect()
}

impl CoreStore {
    /// Builds the index over `cores` (a roster as produced by
    /// [`roster`]). Build is sequential and deterministic; only queries
    /// fan out on the pool.
    pub fn build(cores: &[&CoreRecord]) -> CoreStore {
        let len = cores.len();
        let mut columns: HashMap<Symbol, Column> = HashMap::new();
        let mut merits: BTreeMap<FigureOfMerit, MeritColumn> = BTreeMap::new();
        for (i, core) in cores.iter().enumerate() {
            for (prop, value) in core.bindings() {
                let col = columns
                    .entry(Symbol::intern(prop))
                    .or_insert_with(|| Column {
                        bound: BitSet::empty(len),
                        postings: HashMap::new(),
                    });
                col.bound.set(i);
                if let Some(key) = posting_key(value) {
                    col.postings
                        .entry(key)
                        .or_insert_with(|| BitSet::empty(len))
                        .set(i);
                }
            }
            for (&merit, &v) in core.merits() {
                let col = merits.entry(merit).or_insert_with(|| MeritColumn {
                    present: BitSet::empty(len),
                    values: vec![0.0; len],
                });
                col.present.set(i);
                col.values[i] = v;
            }
        }
        CoreStore {
            len,
            columns,
            merits,
        }
    }

    /// Builds the store for `libraries` via the deduplicated [`roster`].
    pub fn for_libraries(libraries: &[&ReuseLibrary]) -> CoreStore {
        CoreStore::build(&roster(libraries))
    }

    /// Number of indexed cores.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store indexes no cores.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// ANDs the decision `property = want` into `surviving`, appending
    /// `(word index, previous word)` pairs for every changed word onto
    /// `saved` — the undo trail for [`Cursor::retract`].
    ///
    /// Semantics are the scan's lenient compliance: cores not binding
    /// `property` survive (`!bound | posting`), and a property no core
    /// binds is a no-op.
    fn apply_decision(
        &self,
        surviving: &mut BitSet,
        property: &str,
        want: &Value,
        saved: &mut Vec<(u32, u64)>,
    ) {
        let Some(col) = self.columns.get(property) else {
            return;
        };
        let posting = posting_key(want).and_then(|k| col.postings.get(&k));
        for (wi, word) in surviving.words.iter_mut().enumerate() {
            let mask = !col.bound.words[wi] | posting.map_or(0, |p| p.words[wi]);
            let next = *word & mask;
            if next != *word {
                saved.push((wi as u32, *word));
                *word = next;
            }
        }
    }

    /// Population count of `set` (survivor count).
    pub fn count(&self, set: &BitSet) -> usize {
        set.count()
    }

    /// Survivor indices ascending — identical to the order the scan
    /// filter yields. Fans out per word chunk past [`PAR_MIN_CORES`];
    /// chunks are concatenated in submission order, so the result is
    /// independent of `DSE_THREADS`.
    pub fn indices(&self, set: &BitSet) -> Vec<usize> {
        if self.len < PAR_MIN_CORES {
            return set.iter_ones().collect();
        }
        let chunks: Vec<(usize, Vec<u64>)> = set
            .words
            .chunks(PAR_WORDS_PER_CHUNK)
            .enumerate()
            .map(|(ci, ws)| (ci * PAR_WORDS_PER_CHUNK, ws.to_vec()))
            .collect();
        foundation::par::par_map(chunks, |(base_word, words)| {
            let mut out = Vec::new();
            for (wi, &w) in words.iter().enumerate() {
                let mut rest = w;
                while rest != 0 {
                    let bit = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    out.push((base_word + wi) * 64 + bit);
                }
            }
            out
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// One page of survivor indices: skips `offset` set bits, returns at
    /// most `limit` — without materializing the full survivor list.
    pub fn page(&self, set: &BitSet, offset: usize, limit: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(limit.min(1024));
        let mut to_skip = offset;
        for (wi, &w) in set.words.iter().enumerate() {
            let ones = w.count_ones() as usize;
            if to_skip >= ones {
                to_skip -= ones;
                continue;
            }
            let mut rest = w;
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if to_skip > 0 {
                    to_skip -= 1;
                    continue;
                }
                out.push(wi * 64 + bit);
                if out.len() == limit {
                    return out;
                }
            }
        }
        out
    }

    /// `(min, max)` of `merit` over `set ∩ present(merit)` — the same
    /// fold [`dse::eval::EvaluationSpace::range`] performs over the
    /// survivors, without materializing them. Parallel past the size
    /// threshold; `f64::min`/`max` folds are order-insensitive, so the
    /// result is bit-identical at every thread count.
    pub fn range(&self, set: &BitSet, merit: &FigureOfMerit) -> Option<(f64, f64)> {
        let col = self.merits.get(merit)?;
        if self.len < PAR_MIN_CORES {
            return range_over_words(set.words(), col, 0);
        }
        let chunks: Vec<(usize, Vec<u64>)> = set
            .words
            .chunks(PAR_WORDS_PER_CHUNK)
            .enumerate()
            .map(|(ci, ws)| (ci * PAR_WORDS_PER_CHUNK, ws.to_vec()))
            .collect();
        let partial = foundation::par::par_map(chunks, |(base_word, words)| {
            range_over_words(&words, col, base_word)
        });
        partial
            .into_iter()
            .flatten()
            .reduce(|(alo, ahi), (blo, bhi)| (alo.min(blo), ahi.max(bhi)))
    }

    /// Survivor indices whose `merit` is at most `bound`, ascending.
    pub fn meeting(&self, set: &BitSet, merit: &FigureOfMerit, bound: f64) -> Vec<usize> {
        let Some(col) = self.merits.get(merit) else {
            return Vec::new();
        };
        self.indices(set)
            .into_iter()
            .filter(|&i| col.present.contains(i) && col.values[i] <= bound)
            .collect()
    }

    /// `(sum, count)` of `merit` over `set ∩ present(merit)`, summed
    /// sequentially in ascending core order — f64 addition is not
    /// associative, so this order is the bit-identity contract with the
    /// scan's `issue_impact` sums.
    pub fn merit_sum(&self, set: &BitSet, merit: &FigureOfMerit) -> (f64, usize) {
        let Some(col) = self.merits.get(merit) else {
            return (0.0, 0);
        };
        let mut sum = 0.0;
        let mut n = 0usize;
        for (wi, &w) in set.words.iter().enumerate() {
            let mut rest = w & col.present.words[wi];
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                sum += col.values[wi * 64 + bit];
                n += 1;
            }
        }
        (sum, n)
    }

    /// Like [`merit_sum`](Self::merit_sum), further intersected with the
    /// posting list of `property = option` — cores *strictly* binding
    /// the option (the `issue_impact` per-option population).
    pub fn option_merit_sum(
        &self,
        set: &BitSet,
        property: &str,
        option: &Value,
        merit: &FigureOfMerit,
    ) -> (f64, usize) {
        let Some(col) = self.columns.get(property) else {
            return (0.0, 0);
        };
        let Some(posting) = posting_key(option).and_then(|k| col.postings.get(&k)) else {
            return (0.0, 0);
        };
        let Some(mcol) = self.merits.get(merit) else {
            return (0.0, 0);
        };
        let mut sum = 0.0;
        let mut n = 0usize;
        for (wi, &w) in set.words.iter().enumerate() {
            let mut rest = w & posting.words[wi] & mcol.present.words[wi];
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                sum += mcol.values[wi * 64 + bit];
                n += 1;
            }
        }
        (sum, n)
    }

    /// ANDs out of `set` every core binding `property` to a value the
    /// solver proved non-viable — `analyze::solve` pruning the
    /// surviving-core bitset directly. Cores not binding the property
    /// are untouched (lenient compliance), matching the scan fallback
    /// in [`Explorer::solver_pruned_cores`](crate::Explorer::solver_pruned_cores).
    pub fn prune_non_viable(&self, set: &mut BitSet, property: &str, viability: &Viability) {
        if matches!(viability, Viability::Open) {
            return;
        }
        let Some(col) = self.columns.get(property) else {
            return;
        };
        // Allowed = union of postings whose representative value stays
        // viable; surviving &= !bound | allowed.
        let mut allowed = BitSet::empty(self.len);
        for (key, posting) in &col.postings {
            if posting_key_viable(key, viability) {
                for (wi, w) in allowed.words.iter_mut().enumerate() {
                    *w |= posting.words[wi];
                }
            }
        }
        for (wi, word) in set.words.iter_mut().enumerate() {
            *word &= !col.bound.words[wi] | allowed.words[wi];
        }
    }
}

/// Whether a stored binding (by posting key) survives `viability`.
/// Mirrors [`value_viable`] on the canonical representative.
fn posting_key_viable(key: &PostingKey, viability: &Viability) -> bool {
    let value = match key {
        PostingKey::Num(bits) => Value::Real(f64::from_bits(*bits)),
        PostingKey::Text(s) => Value::Text(s.clone()),
        PostingKey::Flag(b) => Value::Flag(*b),
    };
    value_viable(&value, viability)
}

/// Whether a core's bound `value` survives the solver's `viability`
/// verdict for its property. Shared by both engines so their pruning is
/// identical.
pub(crate) fn value_viable(value: &Value, viability: &Viability) -> bool {
    match viability {
        Viability::Open => true,
        Viability::Empty => false,
        Viability::Values(vs) => vs.iter().any(|v| value.matches(v)),
        Viability::IntRange(lo, hi) => value
            .as_f64()
            .is_some_and(|f| f >= *lo as f64 && f <= *hi as f64),
        Viability::RealRange(lo, hi) => value.as_f64().is_some_and(|f| f >= *lo && f <= *hi),
    }
}

/// Min/max fold of one word chunk against a merit column.
fn range_over_words(words: &[u64], col: &MeritColumn, base_word: usize) -> Option<(f64, f64)> {
    let mut acc: Option<(f64, f64)> = None;
    for (wi, &w) in words.iter().enumerate() {
        let abs = base_word + wi;
        let mut rest = w & col.present.words[abs];
        while rest != 0 {
            let bit = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let v = col.values[abs * 64 + bit];
            acc = Some(match acc {
                None => (v, v),
                Some((lo, hi)) => (lo.min(v), hi.max(v)),
            });
        }
    }
    acc
}

// ---------------------------------------------------------------------
// Cursor: the incrementally maintained surviving set
// ---------------------------------------------------------------------

/// One decision frame on the cursor trail.
#[derive(Debug)]
struct Frame {
    property: String,
    value: Value,
    /// `(word index, word value before this decision)` — only words the
    /// decision actually changed.
    saved: Vec<(u32, u64)>,
}

/// The surviving-set cursor: a bitset kept in lock-step with a
/// session's decision log via trail-backed word deltas.
///
/// `decide` ANDs one posting mask in and records the changed words;
/// `retract` pops a frame and restores them. Synchronizing to an
/// arbitrary session log (undo, revise, resumed journals) is
/// retract-to-common-prefix + replay, exactly like the solver trail.
#[derive(Debug)]
pub struct Cursor {
    surviving: BitSet,
    trail: Vec<Frame>,
    /// Per-level merit-range memo; cleared whenever the set changes.
    ranges: BTreeMap<FigureOfMerit, Option<(f64, f64)>>,
}

impl Cursor {
    /// A cursor over the full store (no decisions yet).
    pub fn new(store: &CoreStore) -> Cursor {
        Cursor {
            surviving: BitSet::full(store.len()),
            trail: Vec::new(),
            ranges: BTreeMap::new(),
        }
    }

    /// The current surviving set.
    pub fn surviving(&self) -> &BitSet {
        &self.surviving
    }

    /// Current trail depth (number of applied decisions).
    pub fn depth(&self) -> usize {
        self.trail.len()
    }

    /// Applies one decision incrementally.
    pub fn decide(&mut self, store: &CoreStore, property: &str, value: &Value) {
        let mut saved = Vec::new();
        store.apply_decision(&mut self.surviving, property, value, &mut saved);
        self.trail.push(Frame {
            property: property.to_owned(),
            value: value.clone(),
            saved,
        });
        self.ranges.clear();
    }

    /// Retracts the most recent decision by restoring its word deltas.
    pub fn retract(&mut self) {
        if let Some(frame) = self.trail.pop() {
            for &(wi, old) in frame.saved.iter().rev() {
                self.surviving.words[wi as usize] = old;
            }
            self.ranges.clear();
        }
    }

    /// Re-synchronizes the cursor to `log`, a slice of
    /// `(property, value)` decisions: retracts to the longest common
    /// prefix, then replays the remainder. Handles `undo` (shorter
    /// log), `revise` (value changed in place) and fresh decisions with
    /// the minimum number of word merges.
    pub fn sync<'d>(
        &mut self,
        store: &CoreStore,
        log: impl ExactSizeIterator<Item = (&'d str, &'d Value)> + Clone,
    ) {
        let common = self
            .trail
            .iter()
            .zip(log.clone())
            .take_while(|(f, (p, v))| f.property == *p && f.value == **v)
            .count();
        while self.trail.len() > common {
            self.retract();
        }
        for (p, v) in log.skip(common) {
            self.decide(store, p, v);
        }
    }

    /// The memoized `(min, max)` of `merit` over the surviving set at
    /// the current trail depth.
    pub fn range(&mut self, store: &CoreStore, merit: &FigureOfMerit) -> Option<(f64, f64)> {
        if let Some(&memo) = self.ranges.get(merit) {
            return memo;
        }
        let r = store.range(&self.surviving, merit);
        self.ranges.insert(*merit, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(name: &str, style: &str, delay: f64) -> CoreRecord {
        CoreRecord::new(name, "t", "")
            .bind("Style", style)
            .merit(FigureOfMerit::DelayNs, delay)
    }

    #[test]
    fn bitset_full_and_page() {
        let full = BitSet::full(70);
        assert_eq!(full.count(), 70);
        assert!(full.contains(69));
        assert!(!full.contains(70));
        let store = CoreStore::build(&[]);
        assert!(store.is_empty());
        let s = BitSet::full(10);
        let fake = CoreStore {
            len: 10,
            columns: HashMap::new(),
            merits: BTreeMap::new(),
        };
        assert_eq!(fake.page(&s, 3, 4), vec![3, 4, 5, 6]);
        assert_eq!(fake.page(&s, 8, 4), vec![8, 9]);
        assert_eq!(fake.page(&s, 12, 4), Vec::<usize>::new());
    }

    #[test]
    fn decide_and_retract_round_trip() {
        let cores = [
            core("a", "hw", 1.0),
            core("b", "sw", 2.0),
            core("c", "hw", 3.0),
        ];
        let refs: Vec<&CoreRecord> = cores.iter().collect();
        let store = CoreStore::build(&refs);
        let mut cur = Cursor::new(&store);
        assert_eq!(store.count(cur.surviving()), 3);
        cur.decide(&store, "Style", &Value::from("hw"));
        assert_eq!(store.indices(cur.surviving()), vec![0, 2]);
        assert_eq!(cur.range(&store, &FigureOfMerit::DelayNs), Some((1.0, 3.0)));
        cur.retract();
        assert_eq!(store.count(cur.surviving()), 3);
        assert_eq!(cur.range(&store, &FigureOfMerit::DelayNs), Some((1.0, 3.0)));
    }

    #[test]
    fn numeric_postings_collapse_int_and_real() {
        let cores = [
            CoreRecord::new("i", "t", "").bind("W", 64),
            CoreRecord::new("r", "t", "").bind("W", 64.0),
            CoreRecord::new("z", "t", "").bind("W", -0.0),
        ];
        let refs: Vec<&CoreRecord> = cores.iter().collect();
        let store = CoreStore::build(&refs);
        let mut cur = Cursor::new(&store);
        cur.decide(&store, "W", &Value::Real(64.0));
        assert_eq!(store.indices(cur.surviving()), vec![0, 1]);
        cur.retract();
        cur.decide(&store, "W", &Value::Int(0));
        assert_eq!(store.indices(cur.surviving()), vec![2]);
        cur.retract();
        cur.decide(&store, "W", &Value::Real(f64::NAN));
        assert_eq!(store.count(cur.surviving()), 0);
    }

    #[test]
    fn unknown_property_is_a_no_op() {
        let cores = [core("a", "hw", 1.0)];
        let refs: Vec<&CoreRecord> = cores.iter().collect();
        let store = CoreStore::build(&refs);
        let mut cur = Cursor::new(&store);
        cur.decide(&store, "NoSuchProperty", &Value::from(1));
        assert_eq!(store.count(cur.surviving()), 1);
    }

    #[test]
    fn sync_follows_undo_and_revise() {
        let cores = [
            core("a", "hw", 1.0),
            core("b", "sw", 2.0),
            core("c", "mixed", 3.0),
        ];
        let refs: Vec<&CoreRecord> = cores.iter().collect();
        let store = CoreStore::build(&refs);
        let mut cur = Cursor::new(&store);
        let hw = ("Style", Value::from("hw"));
        let sw = ("Style", Value::from("sw"));
        let log1 = [hw.clone()];
        cur.sync(&store, log1.iter().map(|(p, v)| (*p, v)));
        assert_eq!(store.indices(cur.surviving()), vec![0]);
        // Revise in place: prefix diverges at index 0.
        let log2 = [sw.clone()];
        cur.sync(&store, log2.iter().map(|(p, v)| (*p, v)));
        assert_eq!(store.indices(cur.surviving()), vec![1]);
        // Undo everything.
        cur.sync(&store, [].iter().map(|(p, v): &(&str, Value)| (*p, v)));
        assert_eq!(store.count(cur.surviving()), 3);
    }

    #[test]
    fn roster_dedupes_vendor_name_pairs() {
        let mut lib = ReuseLibrary::new("lib");
        lib.push(core("a", "hw", 1.0));
        lib.push(core("b", "sw", 2.0));
        let r = roster(&[&lib, &lib]);
        assert_eq!(r.len(), 2);
        let mut other = ReuseLibrary::new("other");
        other.push(core("a", "hw", 9.0)); // same (vendor, name): first wins
        other.push(CoreRecord::new("a", "other-vendor", ""));
        let r = roster(&[&lib, &other]);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].merit_value(&FigureOfMerit::DelayNs), Some(1.0));
    }
}
