#![warn(missing_docs)]
//! Software substrate: word-level Montgomery multiplication variants with
//! operation counting, and processor cost models.
//!
//! The paper's software modular-multiplier cores are the C and hand-tuned
//! assembly routines of Koç, Acar and Kaliski ("Analyzing and Comparing
//! Montgomery Multiplication Algorithms", IEEE Micro 1996), measured on a
//! Pentium-60. We cannot rerun those measurements; instead (see
//! `DESIGN.md`) this crate
//!
//! * implements the five word-level variants — SOS, CIOS, FIOS, FIPS and
//!   CIHS — over 32-bit words, each instrumented with an [`OpCounts`]
//!   ledger of word multiplications, additions, loads and stores,
//! * validates every variant against the `bignum` Montgomery golden model,
//! * and converts operation counts to execution-time estimates with a
//!   [`ProcessorModel`] (Pentium-60-class presets for compiled C and
//!   hand-scheduled assembly).
//!
//! # Example
//!
//! ```
//! use bignum::UBig;
//! use swmodel::{MontgomeryVariant, ProcessorModel, SoftwareRoutine};
//!
//! let m = UBig::from(0xFFFF_FFEFu64); // odd modulus
//! let routine = SoftwareRoutine::new(MontgomeryVariant::Cios, ProcessorModel::pentium60_c());
//! let report = routine.profile_mod_mul(&UBig::from(12345u64), &UBig::from(67890u64), &m)?;
//! assert_eq!(report.result, UBig::from(12345u64).mod_mul(&UBig::from(67890u64), &m));
//! assert!(report.time_us > 0.0);
//! # Ok::<(), swmodel::WordMontgomeryError>(())
//! ```

mod analytic;
mod counter;
mod cpu;
mod routine;
mod variants;

pub use analytic::{analytic_counts, AnalyticCounts};
pub use counter::OpCounts;
pub use cpu::ProcessorModel;
pub use routine::{ProfileReport, SoftwareRoutine};
pub use variants::{MontgomeryVariant, WordMontgomery, WordMontgomeryError};
