//! First-order dynamic power model.
//!
//! The paper lists power consumption as work in progress ("we are
//! currently incorporating power consumption in our case studies"). This
//! module provides that extension: a classical `P = α·C·V²·f` estimate
//! driven by the same structural gate counts the area model uses, so the
//! design space layer can expose a `Power` figure of merit next to area
//! and delay.

use crate::Technology;

/// Effective switched capacitance of one gate equivalent, in femtofarads,
/// at the 0.35 µm anchor node. Scales linearly with feature size.
const REF_CAP_FF_PER_GE: f64 = 6.0;
const REF_FEATURE_NM: f64 = 350.0;

/// Estimates average dynamic power in milliwatts.
///
/// * `area_ge` — total switched logic in gate equivalents,
/// * `freq_mhz` — clock frequency,
/// * `activity` — average switching activity factor `α` in `0..=1`
///   (fraction of gates toggling per cycle).
///
/// # Panics
///
/// Panics if `activity` is outside `0..=1` or any argument is negative.
///
/// # Examples
///
/// ```
/// use techlib::{power, Technology};
///
/// let t = Technology::g10_035();
/// let p = power::dynamic_power_mw(&t, 4000.0, 300.0, 0.2);
/// assert!(p > 0.0);
/// ```
pub fn dynamic_power_mw(tech: &Technology, area_ge: f64, freq_mhz: f64, activity: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&activity),
        "activity factor must be within 0..=1"
    );
    assert!(area_ge >= 0.0 && freq_mhz >= 0.0, "negative inputs");
    let lambda = tech.node().feature_nm() as f64 / REF_FEATURE_NM;
    let cap_ff = REF_CAP_FF_PER_GE * lambda * area_ge;
    let vdd = tech.node().vdd();
    // P[W] = α · C[F] · V² · f[Hz]; with C in fF and f in MHz the exponents
    // cancel to 1e-9, and 1e3 converts W → mW.
    activity * cap_ff * vdd * vdd * freq_mhz * 1e-9 * 1e3
}

/// Energy per operation in nanojoules, for an operation taking
/// `cycles` cycles at `freq_mhz` with the given power.
pub fn energy_per_op_nj(power_mw: f64, cycles: u64, freq_mhz: f64) -> f64 {
    assert!(freq_mhz > 0.0, "frequency must be positive");
    // E = P · t;  mW · µs = nJ.
    let op_time_us = cycles as f64 / freq_mhz;
    power_mw * op_time_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FabricationNode, LayoutStyle};

    #[test]
    fn power_scales_linearly_with_frequency_and_area() {
        let t = Technology::g10_035();
        let p1 = dynamic_power_mw(&t, 1000.0, 100.0, 0.2);
        assert!((dynamic_power_mw(&t, 2000.0, 100.0, 0.2) / p1 - 2.0).abs() < 1e-9);
        assert!((dynamic_power_mw(&t, 1000.0, 200.0, 0.2) / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn older_node_burns_more_power() {
        // Bigger caps and higher VDD at 0.7 µm.
        let new = Technology::g10_035();
        let old = Technology::new(FabricationNode::n0700(), LayoutStyle::StandardCell);
        let pn = dynamic_power_mw(&new, 1000.0, 100.0, 0.2);
        let po = dynamic_power_mw(&old, 1000.0, 100.0, 0.2);
        assert!(po > 3.0 * pn, "expected {po} > 3x {pn}");
    }

    #[test]
    fn energy_accumulates_over_cycles() {
        let e1 = energy_per_op_nj(10.0, 100, 100.0);
        let e2 = energy_per_op_nj(10.0, 200, 100.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "activity factor")]
    fn activity_out_of_range_panics() {
        let _ = dynamic_power_mw(&Technology::g10_035(), 100.0, 100.0, 1.5);
    }

    #[test]
    fn magnitudes_are_plausible() {
        // A ~4k-GE multiplier slice at 300 MHz should be tens of mW in 0.35µm.
        let t = Technology::g10_035();
        let p = dynamic_power_mw(&t, 4000.0, 300.0, 0.25);
        assert!(p > 1.0 && p < 500.0, "p = {p} mW");
    }
}
