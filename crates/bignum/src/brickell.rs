//! Brickell-style (MSB-first interleaved) modular multiplication.
//!
//! Brickell's algorithm is the paper's alternative to Montgomery: it is
//! based on the paper-and-pencil method but starts from the most
//! significant digit of `A` and performs a `mod M` reduction at every
//! partial product, so the running value never grows beyond a few multiples
//! of `M`. Unlike Montgomery it works for *any* modulus (odd or even) and
//! produces the plain product `A·B mod M` with no domain conversion — which
//! is exactly why the paper keeps it in the design space even though
//! Montgomery dominates it in area and delay (Fig. 9, CC1).

use crate::UBig;

/// Computes `A·B mod M` by MSB-first digit-serial interleaved reduction in
/// radix `2ᵏ`:
///
/// ```text
/// R := 0
/// for i in (0..digits).rev():
///     R := R·2ᵏ + aᵢ·B
///     R := R - q·M          (q chosen so that R < M; at most 2ᵏ+1 subtracts)
/// ```
///
/// # Panics
///
/// Panics if `m` is zero, if `k == 0` or `k > 32`, or if `b >= m`.
///
/// # Examples
///
/// ```
/// use bignum::{brickell_mod_mul, UBig};
///
/// let m = UBig::from(1000u64); // even modulus is fine for Brickell
/// let a = UBig::from(123u64);
/// let b = UBig::from(456u64);
/// assert_eq!(brickell_mod_mul(&a, &b, &m, 2), a.mod_mul(&b, &m));
/// ```
pub fn brickell_mod_mul(a: &UBig, b: &UBig, m: &UBig, k: u32) -> UBig {
    assert!(!m.is_zero(), "modulus must be non-zero");
    assert!((1..=32).contains(&k), "digit width must be in 1..=32");
    assert!(b < m, "multiplicand must be reduced below the modulus");

    let digits = a.bit_len().div_ceil(k).max(1);
    let mut acc = UBig::zero();
    for i in (0..digits).rev() {
        let a_i = a.digit(i, k);
        acc = &acc.shl(k) + &(b * &UBig::from(a_i));
        // Reduce: after the shift-accumulate, R < 2ᵏ·M + 2ᵏ·M = 2ᵏ⁺¹·M,
        // so a quotient-digit estimate via division suffices. Real hardware
        // estimates q from the top bits; the functional model may divide.
        acc = acc.rem(m);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_below;
    use foundation::rng::{SeedableRng, StdRng};

    #[test]
    fn matches_naive_for_random_operands() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = &UBig::power_of_two(256) + &UBig::from(0x4d5u64);
        for k in [1u32, 2, 4, 8] {
            for _ in 0..10 {
                let a = uniform_below(&m, &mut rng);
                let b = uniform_below(&m, &mut rng);
                assert_eq!(brickell_mod_mul(&a, &b, &m, k), a.mod_mul(&b, &m));
            }
        }
    }

    #[test]
    fn works_for_even_modulus_where_montgomery_cannot() {
        // CC1 in the paper: Montgomery requires odd modulus; Brickell does not.
        let m = UBig::from(1_000_000u64);
        let a = UBig::from(999_999u64);
        let b = UBig::from(123_457u64);
        assert_eq!(brickell_mod_mul(&a, &b, &m, 2), a.mod_mul(&b, &m));
        assert!(crate::MontgomeryContext::new(&m).is_err());
    }

    #[test]
    fn zero_operands() {
        let m = UBig::from(97u64);
        assert!(brickell_mod_mul(&UBig::zero(), &UBig::from(5u64), &m, 1).is_zero());
        assert!(brickell_mod_mul(&UBig::from(5u64), &UBig::zero(), &m, 1).is_zero());
    }

    #[test]
    #[should_panic(expected = "reduced below the modulus")]
    fn unreduced_multiplicand_panics() {
        let m = UBig::from(10u64);
        let _ = brickell_mod_mul(&UBig::one(), &UBig::from(10u64), &m, 1);
    }
}
