//! Std-only TCP plumbing for line- and length-framed JSON protocols.
//!
//! The workspace's wire format is newline-delimited JSON over the
//! [`crate::json`] codec: one request per line in, one response per line
//! out. This module supplies the three pieces every such endpoint needs,
//! without reaching outside `std`:
//!
//! * [`read_line_bounded`] / [`write_line`] — the line framing itself,
//!   with a hard cap on line length so a hostile peer cannot make the
//!   reader buffer unbounded garbage. [`read_line_into`] is the
//!   buffer-reusing variant the daemon's hot path runs on, and
//!   [`write_lines_coalesced`] turns a pipelined burst of responses into
//!   one vectored write instead of a syscall pair per line.
//! * [`read_frame`] / [`write_frame`] — a length-prefixed alternative
//!   (`<decimal length>\n<payload>`) for payloads that may themselves
//!   contain newlines (bulk space uploads, archived journals).
//! * [`TcpServer`] — a non-blocking accept loop that polls a stop flag,
//!   so a daemon can drain gracefully instead of being killed out of
//!   `accept(2)`.

use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Default cap on a single line (or frame) read from a peer: 1 MiB.
pub const MAX_WIRE_BYTES: usize = 1 << 20;

/// How long the accept loop sleeps between polls of the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

fn too_long(max: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("wire message exceeds the {max}-byte cap"),
    )
}

/// Reads one `\n`-terminated line, stripping the terminator (and a
/// preceding `\r`, for telnet-style clients).
///
/// Returns `Ok(None)` on a clean end-of-stream at a line boundary. A
/// stream that ends mid-line yields the partial line — the peer wrote
/// it deliberately; let the JSON parser judge it.
///
/// Allocates a fresh `String` per call; steady-state readers should hold
/// a scratch buffer and use [`read_line_into`] instead.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] once a line exceeds `max` bytes (the
/// connection should be dropped: the rest of the line cannot be
/// resynchronized), or any underlying read error.
pub fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    if read_line_into(reader, max, &mut line)?.is_none() {
        return Ok(None);
    }
    Ok(Some(
        String::from_utf8(line).expect("read_line_into validated UTF-8"),
    ))
}

/// The zero-allocation core of [`read_line_bounded`]: clears and fills
/// the caller's scratch buffer with the next line (terminator stripped)
/// and returns it as `&str`, so a warm per-connection buffer absorbs
/// every read. Semantics are otherwise identical to
/// [`read_line_bounded`], including the `Ok(None)` clean-EOF contract.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for an over-`max` line or non-UTF-8
/// content, or any underlying read error.
pub fn read_line_into<'b>(
    reader: &mut impl BufRead,
    max: usize,
    line: &'b mut Vec<u8>,
) -> io::Result<Option<&'b str>> {
    line.clear();
    if !fill_line(reader, max, line)? {
        return Ok(None);
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    let text = std::str::from_utf8(line).map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidData, format!("line is not UTF-8: {e}"))
    })?;
    Ok(Some(text))
}

/// Appends the next line's bytes (without the `\n`) to `line`; `false`
/// means clean EOF with nothing read.
fn fill_line(reader: &mut impl BufRead, max: usize, line: &mut Vec<u8>) -> io::Result<bool> {
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(!line.is_empty());
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max {
                    return Err(too_long(max));
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                return Ok(true);
            }
            None => {
                let n = buf.len();
                if line.len() + n > max {
                    return Err(too_long(max));
                }
                line.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

/// Writes `line` followed by `\n` and flushes.
///
/// # Errors
///
/// Any underlying write error.
pub fn write_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// How many buffers a single `writev(2)` call covers in
/// [`write_lines_coalesced`]. Linux caps `IOV_MAX` at 1024; 64 keeps the
/// stack frame small while still coalescing a full pipeline burst.
const WRITE_BATCH: usize = 64;

/// Writes a batch of pre-rendered, newline-terminated response buffers
/// as coalesced vectored writes (one `writev` per [`WRITE_BATCH`]
/// buffers instead of two syscalls per line), then flushes once.
///
/// # Errors
///
/// Any underlying write error; a writer that accepts zero bytes yields
/// [`io::ErrorKind::WriteZero`].
pub fn write_lines_coalesced(writer: &mut impl Write, lines: &[Vec<u8>]) -> io::Result<()> {
    for group in lines.chunks(WRITE_BATCH) {
        let slices: [io::IoSlice<'_>; WRITE_BATCH] = std::array::from_fn(|i| {
            io::IoSlice::new(group.get(i).map_or(&[][..], |line| &line[..]))
        });
        write_vectored_all(writer, &slices[..group.len()])?;
    }
    writer.flush()
}

/// Drives `write_vectored` to completion across partial writes.
fn write_vectored_all(writer: &mut impl Write, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
    let mut idx = 0;
    let mut off = 0;
    let mut total = 0;
    while idx < bufs.len() {
        if bufs[idx].is_empty() {
            idx += 1;
            continue;
        }
        if off == 0 {
            let n = writer.write_vectored(&bufs[idx..])?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole buffer",
                ));
            }
            total += n;
            let mut advance = n;
            while idx < bufs.len() && advance >= bufs[idx].len() {
                advance -= bufs[idx].len();
                idx += 1;
            }
            off = advance;
        } else {
            // A partial write landed mid-buffer: finish this buffer with
            // plain `write_all`, then resume vectored writes.
            writer.write_all(&bufs[idx][off..])?;
            total += bufs[idx].len() - off;
            off = 0;
            idx += 1;
        }
    }
    Ok(total)
}

/// Writes a length-prefixed frame: the payload length in ASCII decimal,
/// a newline, then the raw payload bytes. Flushes.
///
/// # Errors
///
/// Any underlying write error.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    writer.write_all(payload.len().to_string().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame written by [`write_frame`]. Returns `Ok(None)` on a
/// clean end-of-stream before the length header.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for a malformed length header, a
/// length beyond `max`, or a truncated payload; any underlying read
/// error otherwise.
pub fn read_frame(reader: &mut impl BufRead, max: usize) -> io::Result<Option<Vec<u8>>> {
    let header = match read_line_bounded(reader, 32)? {
        Some(h) => h,
        None => return Ok(None),
    };
    let len: usize = header.trim().parse().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed frame length {header:?}"),
        )
    })?;
    if len > max {
        return Err(too_long(max));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A TCP listener whose accept loop polls a stop flag: setting the flag
/// makes [`TcpServer::serve`] return instead of blocking forever in
/// `accept(2)` — the hook a daemon's graceful shutdown hangs off.
#[derive(Debug)]
pub struct TcpServer {
    listener: TcpListener,
    local: SocketAddr,
}

impl TcpServer {
    /// Binds (port 0 picks an ephemeral port; see
    /// [`TcpServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any bind error.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(TcpServer { listener, local })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Accepts connections until `stop` becomes true, invoking `on_conn`
    /// for each accepted stream (restored to blocking mode). `on_conn`
    /// decides its own concurrency — spawn a thread, queue the stream,
    /// or handle it inline.
    ///
    /// # Errors
    ///
    /// A fatal accept error; `WouldBlock` is the poll rhythm, not an
    /// error, and per-connection setup failures skip that connection.
    pub fn serve(
        &self,
        stop: &AtomicBool,
        mut on_conn: impl FnMut(TcpStream, SocketAddr),
    ) -> io::Result<()> {
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(false).is_ok() {
                        on_conn(stream, peer);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// One injected network fault, drawn from a seeded [`NetFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// No fault: the operation passes through.
    None,
    /// The connection dies: this and every later operation fail
    /// (`ConnectionReset` on reads, `BrokenPipe` on writes).
    Drop,
    /// A short read/write: only part of the buffer moves, forcing the
    /// caller's retry/`write_all` loop to do its job.
    Partial,
    /// A brief stall (1 ms) before the operation proceeds — enough to
    /// interleave with other connections, bounded so suites stay fast.
    Stall,
}

/// Per-mille rates for each fault class in a [`NetFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultRates {
    /// ‰ of operations that kill the connection.
    pub drop_per_mille: u16,
    /// ‰ of operations that move only part of the buffer.
    pub partial_per_mille: u16,
    /// ‰ of operations that stall briefly first.
    pub stall_per_mille: u16,
}

impl NetFaultRates {
    /// No faults at all.
    pub fn benign() -> NetFaultRates {
        NetFaultRates {
            drop_per_mille: 0,
            partial_per_mille: 0,
            stall_per_mille: 0,
        }
    }

    /// The chaos-soak default: 2% drops, 10% partial transfers, 5%
    /// stalls.
    pub fn chaos() -> NetFaultRates {
        NetFaultRates {
            drop_per_mille: 20,
            partial_per_mille: 100,
            stall_per_mille: 50,
        }
    }
}

/// A seeded, precomputed fault schedule for a [`FaultStream`].
///
/// Mirrors `dse::robust::FaultPlan`: the whole schedule is drawn up
/// front from a [`crate::rng::StdRng`], indexed cyclically by operation
/// number, so every run with the same seed injects exactly the same
/// faults at exactly the same points regardless of timing or thread
/// interleaving.
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    schedule: Vec<NetFault>,
}

impl NetFaultPlan {
    /// Draws a schedule of `ops` entries from `seed` at `rates`.
    pub fn new(seed: u64, ops: usize, rates: NetFaultRates) -> NetFaultPlan {
        use crate::rng::{Rng, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E45_5446_4155_4C54); // "NETFAULT"
        let mut schedule = Vec::with_capacity(ops.max(1));
        for _ in 0..ops.max(1) {
            let roll = rng.gen_range(0u16..1000);
            let drop_end = rates.drop_per_mille;
            let partial_end = drop_end + rates.partial_per_mille;
            let stall_end = partial_end + rates.stall_per_mille;
            schedule.push(if roll < drop_end {
                NetFault::Drop
            } else if roll < partial_end {
                NetFault::Partial
            } else if roll < stall_end {
                NetFault::Stall
            } else {
                NetFault::None
            });
        }
        NetFaultPlan { schedule }
    }

    /// A schedule that never faults.
    pub fn benign() -> NetFaultPlan {
        NetFaultPlan {
            schedule: vec![NetFault::None],
        }
    }

    /// The fault for operation `i` (cyclic past the schedule length).
    pub fn fault_for_op(&self, i: u64) -> NetFault {
        self.schedule[(i % self.schedule.len() as u64) as usize]
    }
}

/// A `Read + Write` wrapper that injects the faults of a
/// [`NetFaultPlan`], one schedule entry per I/O operation.
///
/// Drops are sticky: once the plan kills the connection, every later
/// operation fails too, exactly like a real broken socket. Partial
/// transfers move at most half the buffer (at least one byte), and
/// stalls sleep 1 ms — long enough to shuffle interleavings, short
/// enough for hermetic suites.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    plan: NetFaultPlan,
    op: u64,
    dead: bool,
}

impl<S> FaultStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: NetFaultPlan) -> FaultStream<S> {
        FaultStream {
            inner,
            plan,
            op: 0,
            dead: false,
        }
    }

    /// Operations performed so far (fault schedule index).
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// Whether an injected drop has killed this stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Unwraps the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn next_fault(&mut self) -> NetFault {
        let fault = self.plan.fault_for_op(self.op);
        self.op += 1;
        fault
    }
}

impl<S: io::Read> io::Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected connection drop (sticky)",
            ));
        }
        match self.next_fault() {
            NetFault::Drop => {
                self.dead = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected connection drop",
                ))
            }
            NetFault::Partial => {
                let cap = (buf.len() / 2).max(1).min(buf.len());
                self.inner.read(&mut buf[..cap])
            }
            NetFault::Stall => {
                std::thread::sleep(Duration::from_millis(1));
                self.inner.read(buf)
            }
            NetFault::None => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected connection drop (sticky)",
            ));
        }
        match self.next_fault() {
            NetFault::Drop => {
                self.dead = true;
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected connection drop",
                ))
            }
            NetFault::Partial if buf.len() > 1 => self.inner.write(&buf[..buf.len() / 2]),
            NetFault::Stall => {
                std::thread::sleep(Duration::from_millis(1));
                self.inner.write(buf)
            }
            NetFault::Partial | NetFault::None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected connection drop (sticky)",
            ));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn lines_roundtrip_with_crlf_and_partial_tails() {
        let input = b"alpha\r\nbeta\ngamma".to_vec();
        let mut r = BufReader::new(&input[..]);
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("alpha")
        );
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("beta")
        );
        // Unterminated tail comes through; then clean EOF.
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("gamma")
        );
        assert_eq!(read_line_bounded(&mut r, 64).unwrap(), None);
    }

    #[test]
    fn read_line_into_reuses_one_scratch_buffer() {
        let input = b"first\r\nsecond\n\nlast".to_vec();
        let mut r = BufReader::new(&input[..]);
        let mut scratch = Vec::new();
        assert_eq!(
            read_line_into(&mut r, 64, &mut scratch).unwrap(),
            Some("first")
        );
        assert_eq!(
            read_line_into(&mut r, 64, &mut scratch).unwrap(),
            Some("second")
        );
        assert_eq!(read_line_into(&mut r, 64, &mut scratch).unwrap(), Some(""));
        assert_eq!(
            read_line_into(&mut r, 64, &mut scratch).unwrap(),
            Some("last")
        );
        assert_eq!(read_line_into(&mut r, 64, &mut scratch).unwrap(), None);
        // The scratch buffer grew once and was reused, not reallocated.
        assert!(scratch.capacity() >= 6);
    }

    #[test]
    fn coalesced_writes_match_per_line_writes() {
        let lines: Vec<Vec<u8>> = (0..150)
            .map(|i| format!("response {i}\n").into_bytes())
            .collect();
        let mut coalesced = Vec::new();
        write_lines_coalesced(&mut coalesced, &lines).unwrap();
        let flat: Vec<u8> = lines.concat();
        assert_eq!(coalesced, flat);

        // Partial writes (fault-injected) still land every byte in order.
        let plan = NetFaultPlan::new(
            7,
            64,
            NetFaultRates {
                drop_per_mille: 0,
                partial_per_mille: 1000,
                stall_per_mille: 0,
            },
        );
        let mut faulty = FaultStream::new(Vec::<u8>::new(), plan);
        write_lines_coalesced(&mut faulty, &lines).unwrap();
        assert_eq!(faulty.into_inner(), flat);
    }

    #[test]
    fn oversized_lines_are_rejected_not_buffered() {
        let input = vec![b'x'; 1000];
        let mut r = BufReader::new(&input[..]);
        let err = read_line_bounded(&mut r, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frames_carry_embedded_newlines() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"two\nlines").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r, 64).unwrap().as_deref(),
            Some(&b"two\nlines"[..])
        );
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r, 64).unwrap(), None);
    }

    #[test]
    fn bad_frame_headers_and_oversized_frames_fail() {
        let mut r = BufReader::new(&b"nope\nxxxx"[..]);
        assert!(read_frame(&mut r, 64).is_err());
        let mut buf = Vec::new();
        write_frame(&mut buf, &vec![b'y'; 100]).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert!(read_frame(&mut r, 64).is_err());
    }

    #[test]
    fn tcp_server_echoes_and_stops_on_flag() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));

        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                server
                    .serve(&stop, |stream, _| {
                        let mut r = BufReader::new(stream.try_clone().unwrap());
                        let mut w = stream;
                        while let Ok(Some(line)) = read_line_bounded(&mut r, MAX_WIRE_BYTES) {
                            write_line(&mut w, &format!("echo {line}")).unwrap();
                        }
                    })
                    .unwrap();
            })
        };

        let client = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(client.try_clone().unwrap());
        let mut w = client;
        write_line(&mut w, "hello").unwrap();
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("echo hello")
        );
        drop((r, w));

        stop.store(true, Ordering::SeqCst);
        accept.join().unwrap();
    }

    #[test]
    fn fault_plans_are_deterministic_per_seed() {
        let a = NetFaultPlan::new(9, 256, NetFaultRates::chaos());
        let b = NetFaultPlan::new(9, 256, NetFaultRates::chaos());
        let c = NetFaultPlan::new(10, 256, NetFaultRates::chaos());
        let draw = |p: &NetFaultPlan| (0..512).map(|i| p.fault_for_op(i)).collect::<Vec<_>>();
        assert_eq!(draw(&a), draw(&b));
        assert_ne!(draw(&a), draw(&c), "different seeds should differ");
        // Cyclic indexing past the schedule length.
        assert_eq!(a.fault_for_op(0), a.fault_for_op(256));
        // Benign plans never fault.
        let benign = NetFaultPlan::new(9, 256, NetFaultRates::benign());
        assert!(draw(&benign).iter().all(|&f| f == NetFault::None));
    }

    #[test]
    fn fault_stream_injects_sticky_drops_and_partial_writes() {
        // A plan that is 100% drops: first op kills the stream for good.
        let all_drop = NetFaultPlan::new(
            1,
            8,
            NetFaultRates {
                drop_per_mille: 1000,
                partial_per_mille: 0,
                stall_per_mille: 0,
            },
        );
        let mut s = FaultStream::new(Vec::<u8>::new(), all_drop);
        let err = s.write(b"hello").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(s.is_dead());
        assert_eq!(s.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert!(s.flush().is_err());

        // A plan that is 100% partial transfers: write_all still lands
        // every byte, it just takes several write calls.
        let all_partial = NetFaultPlan::new(
            1,
            8,
            NetFaultRates {
                drop_per_mille: 0,
                partial_per_mille: 1000,
                stall_per_mille: 0,
            },
        );
        let mut s = FaultStream::new(Vec::<u8>::new(), all_partial);
        s.write_all(b"twelve bytes").unwrap();
        assert!(s.ops() > 1, "partial writes must split the buffer");
        assert_eq!(s.into_inner(), b"twelve bytes");

        // Partial reads deliver the full message across multiple reads.
        let mut r = FaultStream::new(
            &b"payload"[..],
            NetFaultPlan::new(
                2,
                8,
                NetFaultRates {
                    drop_per_mille: 0,
                    partial_per_mille: 1000,
                    stall_per_mille: 0,
                },
            ),
        );
        let mut out = Vec::new();
        io::Read::read_to_end(&mut r, &mut out).unwrap();
        assert_eq!(out, b"payload");
    }
}
