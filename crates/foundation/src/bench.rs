//! A micro-benchmark harness — the workspace's replacement for
//! `criterion`.
//!
//! Each benchmark is warmed up, then timed over repeated samples; the
//! harness reports per-iteration median, p95, minimum and mean, prints a
//! table, and can emit the whole suite as JSON (the format behind
//! `BENCH_baseline.json`, the repo's perf-trajectory record).
//!
//! Environment knobs:
//! * `DSE_BENCH_FAST=1` — single-iteration smoke mode (used by tests);
//! * `DSE_BENCH_JSON=<path>` — write the JSON report on [`Harness::finish`].

use std::time::{Duration, Instant};

use crate::json::Json;

pub use std::hint::black_box;

/// Statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark id, e.g. `"bignum/mul/1024"`.
    pub name: String,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: u32,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time.
    pub p95_ns: f64,
    /// Fastest sample's per-iteration time.
    pub min_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
}

impl Measurement {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("iters_per_sample".into(), Json::Int(self.iters_per_sample as i64)),
            ("samples".into(), Json::Int(i64::from(self.samples))),
            ("median_ns".into(), Json::Float(self.median_ns)),
            ("p95_ns".into(), Json::Float(self.p95_ns)),
            ("min_ns".into(), Json::Float(self.min_ns)),
            ("mean_ns".into(), Json::Float(self.mean_ns)),
        ])
    }
}

/// Measurement settings. [`Config::from_env`] is what [`Harness::new`]
/// uses; tests lower the numbers via `DSE_BENCH_FAST`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Wall-clock budget for the warmup phase.
    pub warmup: Duration,
    /// Target wall-clock length of one timed sample.
    pub sample_target: Duration,
    /// Number of timed samples.
    pub samples: u32,
}

impl Config {
    /// The default settings, or the smoke-mode ones under `DSE_BENCH_FAST`.
    pub fn from_env() -> Self {
        if std::env::var_os("DSE_BENCH_FAST").is_some() {
            Config {
                warmup: Duration::from_millis(1),
                sample_target: Duration::from_micros(100),
                samples: 3,
            }
        } else {
            Config {
                warmup: Duration::from_millis(60),
                sample_target: Duration::from_millis(8),
                samples: 25,
            }
        }
    }
}

/// Collects measurements for one suite.
pub struct Harness {
    suite: String,
    config: Config,
    entries: Vec<Measurement>,
}

impl Harness {
    /// A harness for the named suite, configured from the environment.
    pub fn new(suite: impl Into<String>) -> Self {
        Harness {
            suite: suite.into(),
            config: Config::from_env(),
            entries: Vec::new(),
        }
    }

    /// Overrides the measurement settings.
    pub fn with_config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// The suite's name.
    pub fn suite(&self) -> &str {
        &self.suite
    }

    /// The measurements so far.
    pub fn entries(&self) -> &[Measurement] {
        &self.entries
    }

    /// Runs one benchmark: warmup, then `samples` timed batches of the
    /// closure. Returns the recorded statistics.
    pub fn bench<F: FnMut()>(&mut self, name: impl Into<String>, mut f: F) -> &Measurement {
        let name = name.into();

        // Warmup, measuring throughput to size the timed samples.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            f();
            warmup_iters += 1;
            if warmup_start.elapsed() >= self.config.warmup {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let iters = ((self.config.sample_target.as_nanos() as f64 / per_iter.max(1.0)) as u64)
            .clamp(1, 1_000_000_000);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.config.samples as usize);
        for _ in 0..self.config.samples {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

        let n = per_iter_ns.len();
        let median = if n % 2 == 1 {
            per_iter_ns[n / 2]
        } else {
            (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2]) / 2.0
        };
        let p95 = per_iter_ns[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
        let mean = per_iter_ns.iter().sum::<f64>() / n as f64;

        let m = Measurement {
            name,
            iters_per_sample: iters,
            samples: self.config.samples,
            median_ns: median,
            p95_ns: p95,
            min_ns: per_iter_ns[0],
            mean_ns: mean,
        };
        self.entries.push(m);
        self.entries.last().expect("just pushed")
    }

    /// The suite as a JSON report.
    pub fn report_json(&self) -> Json {
        Json::Object(vec![
            ("suite".into(), Json::Str(self.suite.clone())),
            (
                "entries".into(),
                Json::Array(self.entries.iter().map(Measurement::to_json).collect()),
            ),
        ])
    }

    /// Prints the table; writes the JSON report if `DSE_BENCH_JSON` names
    /// a path.
    pub fn finish(self) {
        print!("{}", render_table(&self.suite, &self.entries));
        if let Some(path) = std::env::var_os("DSE_BENCH_JSON") {
            let report = self.report_json().to_string_pretty();
            if let Err(e) = std::fs::write(&path, report) {
                eprintln!("[bench] cannot write {}: {e}", path.to_string_lossy());
            }
        }
    }
}

/// Formats one suite's measurements as an aligned text table.
pub fn render_table(suite: &str, entries: &[Measurement]) -> String {
    let mut out = format!("\n{suite}\n");
    let name_width = entries
        .iter()
        .map(|m| m.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    out.push_str(&format!(
        "{:<name_width$}  {:>12}  {:>12}  {:>12}\n",
        "name", "median", "p95", "min"
    ));
    for m in entries {
        out.push_str(&format!(
            "{:<name_width$}  {:>12}  {:>12}  {:>12}\n",
            m.name,
            format_ns(m.median_ns),
            format_ns(m.p95_ns),
            format_ns(m.min_ns),
        ));
    }
    out
}

/// Human-readable nanoseconds: `850 ns`, `12.3 µs`, `4.56 ms`, `1.20 s`.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Merges several suite reports into one document, under a top-level
/// metadata header — the `BENCH_baseline.json` layout.
pub fn combined_report(label: &str, suites: &[Json]) -> Json {
    Json::Object(vec![
        ("label".into(), Json::Str(label.to_string())),
        (
            "harness".into(),
            Json::Str("dse-foundation micro-bench".into()),
        ),
        ("suites".into(), Json::Array(suites.to_vec())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Config {
        Config {
            warmup: Duration::from_micros(50),
            sample_target: Duration::from_micros(50),
            samples: 5,
        }
    }

    #[test]
    fn measures_something_positive() {
        let mut h = Harness::new("t").with_config(fast());
        let m = h.bench("spin", || {
            black_box((0..100u64).sum::<u64>());
        });
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.median_ns <= m.p95_ns);
        assert_eq!(m.samples, 5);
    }

    #[test]
    fn report_is_valid_json() {
        let mut h = Harness::new("suite").with_config(fast());
        h.bench("a", || {
            black_box(1 + 1);
        });
        let text = h.report_json().to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("suite").and_then(Json::as_str),
            Some("suite")
        );
        let entries = parsed.get("entries").and_then(Json::as_array).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("name").and_then(Json::as_str), Some("a"));
        assert!(entries[0].get("median_ns").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn table_renders_every_entry() {
        let mut h = Harness::new("tbl").with_config(fast());
        h.bench("first", || {
            black_box(0);
        });
        h.bench("second", || {
            black_box(0);
        });
        let table = render_table(h.suite(), h.entries());
        assert!(table.contains("first") && table.contains("second"));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(850.0), "850 ns");
        assert_eq!(format_ns(12_300.0), "12.30 µs");
        assert_eq!(format_ns(4_560_000.0), "4.560 ms");
        assert_eq!(format_ns(1_200_000_000.0), "1.200 s");
    }
}
