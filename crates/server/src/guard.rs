//! Overload-protection tunables for the daemon: admission control,
//! deadlines, circuit breakers, and journal lifecycle.
//!
//! One [`GuardConfig`] travels from [`crate::engine::EngineBuilder`]
//! into the built engine, where the TCP front
//! ([`crate::daemon::Server`]) reads the connection-level knobs and the
//! engine itself enforces the session-level ones. Every limit answers
//! with a *structured* refusal (`DSL309` with `retry_after_ms`, or
//! `DSL310` for a blown deadline) rather than a dropped byte stream, so
//! clients can implement honest backoff.

use std::time::Duration;

use dse::prelude::BreakerConfig;

/// How many abstract fuel steps one millisecond of deadline buys.
///
/// Deadlines are *cooperative*: `deadline_ms` converts to a
/// [`dse::prelude::Fuel`] budget at this rate, so the same request with
/// the same deadline burns out at exactly the same point on every run —
/// wall clocks never decide an answer.
pub const FUEL_PER_MS: u64 = 50_000;

/// Tunables for admission control, deadlines, and journal lifecycle.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Connections accepted concurrently; the next one is answered with
    /// a single `DSL309` line and dropped.
    pub max_connections: usize,
    /// Pipelined requests one connection may have in flight per batch;
    /// the excess is shed with `DSL309` (the client retries after
    /// `retry_after_ms`).
    pub max_inflight_per_conn: usize,
    /// How long a connection may sit idle mid-read before it is reaped
    /// (the slow-loris defense). `None` disables reaping.
    pub read_timeout: Option<Duration>,
    /// The backoff hint attached to every `DSL309` refusal.
    pub retry_after_ms: u64,
    /// Sessions the engine will hold open at once; `open` past the cap
    /// is refused with `DSL309` after an idle-eviction sweep.
    pub max_sessions: usize,
    /// Evict a journaled session untouched for this many requests
    /// (measured on the engine's request counter, a logical clock — no
    /// wall time). Evicted sessions resume transparently from their
    /// journal on next touch; their estimate cache view is dropped.
    /// `None` disables eviction.
    pub session_ttl_requests: Option<u64>,
    /// Compact a session's journal once it accumulates this many
    /// records. `0` disables compaction.
    pub compact_after: usize,
    /// Per-tool circuit breakers for the engine's supervisor; `None`
    /// runs without breakers.
    pub breaker: Option<BreakerConfig>,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            max_connections: 256,
            max_inflight_per_conn: 256,
            read_timeout: Some(Duration::from_secs(120)),
            retry_after_ms: 200,
            max_sessions: 4096,
            session_ttl_requests: None,
            compact_after: 512,
            breaker: Some(BreakerConfig::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_breakers_and_compaction_but_not_ttl() {
        let g = GuardConfig::default();
        assert!(g.breaker.is_some());
        assert!(g.compact_after > 0);
        assert!(g.session_ttl_requests.is_none());
        assert!(g.read_timeout.is_some());
        assert!(g.retry_after_ms > 0);
    }
}
