//! Extension experiment E-M1: the coprocessor-level design issue —
//! exponentiation methods.
//!
//! The paper frames the modular-multiplier exploration as one block of
//! the modular-exponentiation coprocessor's own design space. This
//! experiment explores that level: binary square-and-multiply versus
//! 2ᵏ-ary windows on the selected multiplier core, comparing the CC7
//! heuristic count against actually executed multiplications and
//! projecting coprocessor-level exponentiation time.

use bignum::{random_prime, uniform_below, UBig};
use coproc::engine::ReferenceEngine;
use coproc::{ExpMethod, ModExp};
use foundation::rng::{SeedableRng, StdRng};

use crate::fmt;

/// One method's measurements.
#[derive(Debug, Clone)]
pub struct MethodRow {
    /// The method.
    pub method: ExpMethod,
    /// CC7's heuristic multiplication count.
    pub cc7_mults: u64,
    /// Multiplications actually executed (includes domain conversions).
    pub actual_mults: u64,
    /// Table registers required (storage cost).
    pub table_registers: u64,
    /// Projected exponentiation time on a 2.2 µs multiplier, ms.
    pub projected_ms: f64,
}

/// Exponent length of the experiment (the case study's 768 bits).
pub const EXP_BITS: u32 = 768;
/// The selected core's modular-multiplication latency (µs).
const MODMUL_US: f64 = 2.2;

/// Runs the method sweep. The correctness of each run is checked against
/// the plain `bignum` exponentiation internally.
pub fn run() -> Vec<MethodRow> {
    let mut rng = StdRng::seed_from_u64(0xE1);
    // A small working modulus keeps the sweep fast; multiplication counts
    // depend only on the exponent's length and bit pattern.
    let m = random_prime(64, &mut rng);
    let base = uniform_below(&m, &mut rng);
    let exp = {
        let mut e = uniform_below(&UBig::power_of_two(EXP_BITS), &mut rng);
        e.set_bit(EXP_BITS - 1, true);
        e
    };
    let expect = base.mod_pow(&exp, &m);

    [
        ExpMethod::Binary,
        ExpMethod::Window(2),
        ExpMethod::Window(4),
        ExpMethod::Window(6),
    ]
    .into_iter()
    .map(|method| {
        let mut coproc = ModExp::new(ReferenceEngine::new());
        let report = coproc
            .mod_pow_with_method(&base, &exp, &m, method)
            .expect("valid inputs");
        assert_eq!(report.result, expect, "{method} must be correct");
        MethodRow {
            method,
            cc7_mults: method.expected_multiplications(EXP_BITS),
            actual_mults: report.multiplications,
            table_registers: method.table_registers(),
            projected_ms: report.multiplications as f64 * MODMUL_US / 1000.0,
        }
    })
    .collect()
}

/// Renders the sweep.
pub fn render() -> String {
    let rows = run();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.to_string(),
                r.cc7_mults.to_string(),
                r.actual_mults.to_string(),
                r.table_registers.to_string(),
                fmt::num(r.projected_ms),
            ]
        })
        .collect();
    format!(
        "Extension E-M1 — exponentiation methods for a {EXP_BITS}-bit exponent \
         (multiplier: {MODMUL_US} µs per modmul)\n\n{}",
        fmt::table(
            &[
                "method",
                "CC7 mults",
                "actual mults",
                "table regs",
                "projected (ms)"
            ],
            &body
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc7_tracks_actual_counts_within_ten_percent() {
        for r in run() {
            let ratio = r.cc7_mults as f64 / r.actual_mults as f64;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "{}: CC7 {} vs actual {}",
                r.method,
                r.cc7_mults,
                r.actual_mults
            );
        }
    }

    #[test]
    fn there_is_a_sweet_spot() {
        let rows = run();
        let binary = rows[0].actual_mults;
        let best = rows.iter().map(|r| r.actual_mults).min().unwrap();
        let widest = rows.last().unwrap();
        assert!(best < binary, "windowing helps");
        // The widest window pays a visible table cost.
        assert_eq!(widest.table_registers, 64);
        assert!(
            rows.iter()
                .any(|r| r.actual_mults < widest.actual_mults + 64),
            "storage/multiplication trade-off is real"
        );
    }

    #[test]
    fn projection_scales_with_counts() {
        for r in run() {
            let expect = r.actual_mults as f64 * MODMUL_US / 1000.0;
            assert!((r.projected_ms - expect).abs() < 1e-9);
        }
    }
}
