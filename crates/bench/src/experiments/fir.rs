//! Extension experiment E-D1: the FIR domain layer — the framework
//! applied to a third application domain, with the parallelism families
//! occupying distinct evaluation-space regions (the property that
//! justifies a generalized issue, per Section 2.2 of the paper).

use dse::eval::{EvaluationSpace, FigureOfMerit};
use dse::value::Value;
use dse_library::fir;
use techlib::Technology;

use crate::fmt;

/// The experiment outcome.
#[derive(Debug, Clone)]
pub struct FirResult {
    /// `(core, family, area, sample-time)` rows.
    pub rows: Vec<(String, String, f64, f64)>,
    /// Coherence of the parallelism families in the evaluation space.
    pub family_coherence: f64,
}

/// Runs the FIR family analysis.
pub fn run(tech: &Technology) -> FirResult {
    let library = fir::build_library(tech);
    let rows: Vec<(String, String, f64, f64)> = library
        .cores()
        .iter()
        .map(|c| {
            (
                c.name().to_owned(),
                c.binding("Parallelism").unwrap().to_string(),
                c.merit_value(&FigureOfMerit::AreaUm2).unwrap(),
                c.merit_value(&FigureOfMerit::DelayNs).unwrap(),
            )
        })
        .collect();

    // Group cores by parallelism family and score the partition.
    let space: EvaluationSpace = library.cores().iter().map(|c| c.eval_point()).collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for family in ["parallel", "semi-parallel", "serial"] {
        let members: Vec<usize> = library
            .cores()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.binding("Parallelism") == Some(&Value::from(family)))
            .map(|(i, _)| i)
            .collect();
        groups.push(members);
    }
    let family_coherence =
        space.partition_coherence(&[FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs], &groups);
    FirResult {
        rows,
        family_coherence,
    }
}

/// Renders the family table and coherence score.
pub fn render(tech: &Technology) -> String {
    let r = run(tech);
    let body: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(name, family, area, delay)| {
            vec![
                name.clone(),
                family.clone(),
                fmt::num(*area),
                fmt::num(*delay),
            ]
        })
        .collect();
    format!(
        "Extension E-D1 — FIR filter domain layer ({tech})\n\n{}\n\
         parallelism-family coherence in the evaluation space: {:+.3}\n",
        fmt::table(&["core", "family", "area (µm²)", "ns/sample"], &body),
        r.family_coherence
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_coherent_evaluation_clusters() {
        // Positive coherence despite the tap-count spread within each
        // family…
        let r = run(&Technology::g10_035());
        assert!(r.family_coherence > 0.1, "coherence {}", r.family_coherence);
        // …and decisively better than grouping by a low-impact issue
        // (data width), which mixes the families.
        let library = fir::build_library(&Technology::g10_035());
        let space: EvaluationSpace = library.cores().iter().map(|c| c.eval_point()).collect();
        let mut by_width: Vec<Vec<usize>> = Vec::new();
        for width in [12i64, 16] {
            by_width.push(
                library
                    .cores()
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.binding("DataWidth") == Some(&Value::from(width)))
                    .map(|(i, _)| i)
                    .collect(),
            );
        }
        let width_coherence =
            space.partition_coherence(&[FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs], &by_width);
        assert!(
            r.family_coherence > width_coherence + 0.2,
            "family {} vs width {}",
            r.family_coherence,
            width_coherence
        );
    }

    #[test]
    fn all_cores_tabulated() {
        let r = run(&Technology::g10_035());
        assert_eq!(r.rows.len(), 18);
    }

    #[test]
    fn render_reports_the_score() {
        let s = render(&Technology::g10_035());
        assert!(s.contains("parallelism-family coherence"));
        assert!(s.contains("fir32x12-4mac"));
    }
}
