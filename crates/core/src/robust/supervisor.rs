//! Supervised estimator execution.
//!
//! The [`Supervisor`] wraps an [`EstimatorRegistry`] and runs every tool
//! call inside a containment boundary:
//!
//! * panics are caught with `catch_unwind` and surface as
//!   [`EstimateError::ToolFailed`] — the registry stays usable;
//! * each call gets a deterministic [`Fuel`] budget (step count, not
//!   wall-clock, so the suite stays hermetic);
//! * [`EstimateError::Transient`] failures are retried a bounded number
//!   of times, burning a seeded-PRNG backoff *in fuel steps* between
//!   attempts (again: no wall-clock);
//! * on failure the tool's declarative fallback chain is walked
//!   (tool → coarser tool → the output property's declared range), and
//!   the produced [`Figure`] carries the [`Provenance`] of whichever rung
//!   answered.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use foundation::rng::{Rng, SeedableRng, StdRng};

use crate::estimate::{EstimateError, EstimatorRegistry};
use crate::expr::Bindings;
use crate::intern::Symbol;
use crate::robust::{EstimateCache, Figure, Fuel};

/// Tunables for supervised execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Fuel budget per tool invocation (shared across its retries).
    pub fuel_limit: u64,
    /// How many times a [`EstimateError::Transient`] failure is retried.
    pub max_retries: u32,
    /// Seed for the deterministic backoff schedule.
    pub backoff_seed: u64,
    /// Per-tool circuit breakers (opt-in; `None` keeps the pre-breaker
    /// behavior byte-for-byte).
    pub breaker: Option<BreakerConfig>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            fuel_limit: 1_000_000,
            max_retries: 2,
            backoff_seed: 0xD5E,
            breaker: None,
        }
    }
}

/// Tunables for the per-tool circuit breakers.
///
/// A breaker trips *open* after `trip_threshold` consecutive terminal
/// failures (panics, invalid output, exhausted retries — transient
/// errors the retry loop absorbs do not count). While open, calls are
/// short-circuited without touching the tool for a *call-counted*
/// cooldown (no wall clock, so the schedule is hermetic), then one
/// *half-open* probe runs the tool for real: success closes the
/// breaker, failure reopens it with the cooldown doubled (capped). The
/// cooldown carries a small seeded jitter so probes across tools
/// de-synchronize deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive terminal failures before the breaker opens.
    pub trip_threshold: u32,
    /// Base cooldown, counted in short-circuited calls.
    pub cooldown_calls: u64,
    /// Cap on the cooldown after repeated re-opens double it.
    pub cooldown_cap: u64,
    /// Seed for the per-tool probe-schedule jitter.
    pub probe_seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_threshold: 3,
            cooldown_calls: 8,
            cooldown_cap: 64,
            probe_seed: 0xB4EA,
        }
    }
}

/// Which phase a tool's circuit breaker is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerPhase {
    Closed,
    Open,
    HalfOpen,
}

/// Per-tool breaker state (lives in the supervisor's breaker map).
#[derive(Debug)]
struct BreakerState {
    phase: BreakerPhase,
    consecutive_failures: u32,
    /// Calls left to short-circuit before the half-open probe.
    open_remaining: u64,
    /// Current cooldown length (doubles on re-open, capped).
    cooldown: u64,
    trips: u64,
    short_circuits: u64,
    jitter: StdRng,
}

impl BreakerState {
    fn new(cfg: &BreakerConfig, tool: &str) -> BreakerState {
        BreakerState {
            phase: BreakerPhase::Closed,
            consecutive_failures: 0,
            open_remaining: 0,
            cooldown: cfg.cooldown_calls.max(1),
            trips: 0,
            short_circuits: 0,
            jitter: StdRng::seed_from_u64(cfg.probe_seed ^ hash_name(tool)),
        }
    }

    fn trip(&mut self) {
        self.phase = BreakerPhase::Open;
        self.trips += 1;
        // Jitter up to a quarter of the cooldown, drawn from the
        // per-tool seeded stream: reproducible, but tools tripped at
        // the same instant probe at different times.
        let jitter = self.jitter.gen_range(0..=self.cooldown / 4);
        self.open_remaining = self.cooldown + jitter;
    }
}

/// A read-only view of one tool's breaker, for stats endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerView {
    /// The tool the breaker guards.
    pub tool: String,
    /// `"closed"`, `"open"` or `"half-open"`.
    pub phase: &'static str,
    /// Times the breaker tripped open (including re-opens).
    pub trips: u64,
    /// Calls answered without touching the tool while open.
    pub short_circuits: u64,
    /// Short-circuited calls left before the half-open probe.
    pub calls_until_probe: u64,
}

/// Counters describing what the supervisor absorbed — surfaced in
/// reports so degraded figures are visible, never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorStats {
    /// Panics caught and converted to [`EstimateError::ToolFailed`].
    pub panics_caught: u64,
    /// Transient failures retried.
    pub retries: u64,
    /// Calls answered by a fallback tool or the declared range.
    pub fallbacks_used: u64,
    /// Circuit-breaker trips (including half-open probes that reopened).
    pub breaker_trips: u64,
    /// Calls short-circuited by an open breaker without running the tool.
    pub breaker_short_circuits: u64,
}

/// Runs estimators under panic isolation, fuel budgets, bounded retry
/// and declarative fallback chains.
#[derive(Debug)]
pub struct Supervisor {
    registry: EstimatorRegistry,
    config: SupervisorConfig,
    stats: std::cell::Cell<SupervisorStats>,
    cache: Option<Arc<EstimateCache>>,
    /// Per-tool circuit breakers; populated lazily, only consulted when
    /// `config.breaker` is set. BTreeMap keeps snapshots sorted.
    breakers: std::cell::RefCell<std::collections::BTreeMap<String, BreakerState>>,
}

impl Supervisor {
    /// Wraps a registry with default tunables.
    pub fn new(registry: EstimatorRegistry) -> Self {
        Supervisor::with_config(registry, SupervisorConfig::default())
    }

    /// Wraps a registry with explicit tunables.
    pub fn with_config(registry: EstimatorRegistry, config: SupervisorConfig) -> Self {
        Supervisor {
            registry,
            config,
            stats: std::cell::Cell::new(SupervisorStats::default()),
            cache: None,
            breakers: std::cell::RefCell::new(std::collections::BTreeMap::new()),
        }
    }

    /// Wraps a registry with an [`EstimateCache`] layered under
    /// [`estimate`](Self::estimate): repeats of `(tool, inputs)` are
    /// answered from the cache, and only trustworthy (exact/estimated)
    /// figures are ever stored. Share the `Arc` to read stats or serve
    /// several supervisors. Do not combine with a fault-injected
    /// registry — memo hits would shift the injection schedule.
    pub fn with_cache(registry: EstimatorRegistry, cache: Arc<EstimateCache>) -> Self {
        Supervisor::with_cache_config(registry, cache, SupervisorConfig::default())
    }

    /// [`with_cache`](Self::with_cache) with explicit tunables — the
    /// constructor for a supervisor that wants both memoization and
    /// non-default settings (e.g. circuit breakers).
    pub fn with_cache_config(
        registry: EstimatorRegistry,
        cache: Arc<EstimateCache>,
        config: SupervisorConfig,
    ) -> Self {
        let mut sup = Supervisor::with_config(registry, config);
        sup.cache = Some(cache);
        sup
    }

    /// The attached estimate cache, if any.
    pub fn cache(&self) -> Option<&Arc<EstimateCache>> {
        self.cache.as_ref()
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &EstimatorRegistry {
        &self.registry
    }

    /// The active tunables.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// What the supervisor has absorbed so far.
    pub fn stats(&self) -> SupervisorStats {
        self.stats.get()
    }

    /// Runs one tool supervised — panic containment, fuel, retries — with
    /// no fallback chain.
    ///
    /// # Errors
    ///
    /// The tool's terminal error after retries are exhausted;
    /// [`EstimateError::InvalidOutput`] if the tool returned a non-finite
    /// value; [`EstimateError::UnknownEstimator`] for unregistered names.
    pub fn call(&self, name: &str, inputs: &Bindings) -> Result<f64, EstimateError> {
        self.call_within(name, inputs, None)
    }

    /// [`call`](Self::call) under an optional caller-owned budget: the
    /// per-call fuel limit is capped at whatever the budget has left,
    /// and every step the call consumes is debited from the budget
    /// afterwards. This is how a request deadline flows through a whole
    /// estimation ladder instead of resetting per tool.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call); additionally
    /// [`EstimateError::FuelExhausted`] when the shared budget cannot
    /// cover the call.
    pub fn call_within(
        &self,
        name: &str,
        inputs: &Bindings,
        budget: Option<&Fuel>,
    ) -> Result<f64, EstimateError> {
        self.breaker_admit(name)?;
        let limit = match budget {
            Some(b) => b.remaining().min(self.config.fuel_limit),
            None => self.config.fuel_limit,
        };
        let result = self.call_raw(name, inputs, &Fuel::new(limit), budget);
        self.breaker_record(name, result.is_ok());
        result
    }

    /// The containment loop itself: panic catching, fuel, seeded-backoff
    /// retries. `budget`, when present, is debited for every step the
    /// call spends from `fuel`.
    fn call_raw(
        &self,
        name: &str,
        inputs: &Bindings,
        fuel: &Fuel,
        budget: Option<&Fuel>,
    ) -> Result<f64, EstimateError> {
        // Retries share one backoff stream, seeded per (seed, tool) so
        // schedules are independent across tools yet fully reproducible.
        let mut backoff = StdRng::seed_from_u64(self.config.backoff_seed ^ hash_name(name));
        let mut attempt = 0u32;
        let result = loop {
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                self.registry.run_with_fuel(name, inputs, fuel)
            }));
            let result = match outcome {
                Ok(r) => r,
                Err(payload) => {
                    self.bump(|s| s.panics_caught += 1);
                    Err(EstimateError::ToolFailed(panic_message(payload.as_ref())))
                }
            };
            match result {
                Ok(v) if v.is_finite() => break Ok(v),
                Ok(v) => {
                    break Err(EstimateError::InvalidOutput(format!(
                        "{name} returned non-finite value {v}"
                    )))
                }
                Err(e) if e.is_transient() && attempt < self.config.max_retries => {
                    attempt += 1;
                    self.bump(|s| s.retries += 1);
                    // Exponential seeded backoff, paid in fuel steps; an
                    // exhausted budget ends the retry loop deterministically.
                    let base = 1u64 << attempt.min(16);
                    if let Err(e) = fuel.spend(backoff.gen_range(1..=base.max(2))) {
                        break Err(e);
                    }
                }
                Err(e) => break Err(e),
            }
        };
        if let Some(b) = budget {
            // spent ≤ per-call limit ≤ budget.remaining() at entry, so
            // this debit cannot itself fail.
            let _ = b.spend(fuel.spent());
        }
        result
    }

    /// Runs `name` with its full resilience ladder and tags the result:
    ///
    /// 1. the primary tool (supervised) → [`Figure::estimated`];
    /// 2. each tool in its declared fallback chain (supervised, in
    ///    order) → [`Figure::fallback`];
    /// 3. the output property's declared `range` midpoint →
    ///    [`Figure::fallback`] with source `"declared-range"`;
    /// 4. otherwise → [`Figure::unavailable`] carrying the primary error.
    pub fn estimate(&self, name: &str, inputs: &Bindings, range: Option<(f64, f64)>) -> Figure {
        match self.estimate_budgeted(name, inputs, range, None) {
            Ok(fig) => fig,
            // Unreachable without a budget, but never worth a panic.
            Err(e) => Figure::unavailable(format!("{name}: {e}")),
        }
    }

    /// [`estimate`](Self::estimate) under a caller-owned [`Fuel`]
    /// budget shared across the whole ladder (primary, fallbacks,
    /// retries). The ladder stops the moment the budget runs dry.
    ///
    /// # Errors
    ///
    /// [`EstimateError::FuelExhausted`] when the budget was drained
    /// before any rung produced a figure — the deadline-exceeded
    /// signal; the range midpoint is deliberately *not* substituted,
    /// because a deadline miss must be reported, not papered over.
    pub fn estimate_within(
        &self,
        name: &str,
        inputs: &Bindings,
        range: Option<(f64, f64)>,
        budget: &Fuel,
    ) -> Result<Figure, EstimateError> {
        self.estimate_budgeted(name, inputs, range, Some(budget))
    }

    fn estimate_budgeted(
        &self,
        name: &str,
        inputs: &Bindings,
        range: Option<(f64, f64)>,
        budget: Option<&Fuel>,
    ) -> Result<Figure, EstimateError> {
        if let Some(b) = budget {
            if b.remaining() == 0 {
                return Err(EstimateError::FuelExhausted { limit: b.limit() });
            }
        }
        let key = self.cache.as_ref().map(|cache| {
            let tool = Symbol::intern(name);
            let fp = EstimateCache::fingerprint(inputs);
            (cache, tool, fp)
        });
        if let Some((cache, tool, fp)) = &key {
            if let Some(fig) = cache.get(*tool, *fp) {
                return Ok(fig);
            }
        }
        let fig = self.estimate_uncached(name, inputs, range, budget)?;
        if let Some((cache, tool, fp)) = key {
            cache.store(tool, fp, &fig);
        }
        Ok(fig)
    }

    fn estimate_uncached(
        &self,
        name: &str,
        inputs: &Bindings,
        range: Option<(f64, f64)>,
        budget: Option<&Fuel>,
    ) -> Result<Figure, EstimateError> {
        let drained = |b: &&Fuel| EstimateError::FuelExhausted { limit: b.limit() };
        let primary_err = match self.call_within(name, inputs, budget) {
            Ok(v) => return Ok(Figure::estimated(v, name)),
            Err(e) => {
                if let Some(b) = budget.as_ref().filter(|b| b.remaining() == 0) {
                    return Err(drained(b));
                }
                e
            }
        };
        // An open breaker is provenance-worthy: whoever answers instead
        // of the tripped tool says so in the figure's source.
        let breaker_note = if is_breaker_open_err(&primary_err) {
            format!(" [breaker open: {name}]")
        } else {
            String::new()
        };
        let chain = self
            .registry
            .get(name)
            .map(|t| t.fallbacks())
            .unwrap_or_default();
        for coarser in &chain {
            match self.call_within(coarser, inputs, budget) {
                Ok(v) => {
                    self.bump(|s| s.fallbacks_used += 1);
                    return Ok(Figure::fallback(v, format!("{coarser}{breaker_note}")));
                }
                Err(_) => {
                    if let Some(b) = budget.as_ref().filter(|b| b.remaining() == 0) {
                        return Err(drained(b));
                    }
                }
            }
        }
        if let Some((lo, hi)) = range {
            if lo.is_finite() && hi.is_finite() {
                self.bump(|s| s.fallbacks_used += 1);
                return Ok(Figure::fallback(
                    (lo + hi) / 2.0,
                    format!("declared-range{breaker_note}"),
                ));
            }
        }
        Ok(Figure::unavailable(format!("{name}: {primary_err}")))
    }

    /// Sorted per-tool breaker views (empty until breakers are enabled
    /// and a guarded tool has been called).
    pub fn breaker_snapshot(&self) -> Vec<BreakerView> {
        self.breakers
            .borrow()
            .iter()
            .map(|(tool, st)| BreakerView {
                tool: tool.clone(),
                phase: match st.phase {
                    BreakerPhase::Closed => "closed",
                    BreakerPhase::Open => "open",
                    BreakerPhase::HalfOpen => "half-open",
                },
                trips: st.trips,
                short_circuits: st.short_circuits,
                calls_until_probe: st.open_remaining,
            })
            .collect()
    }

    /// Gate a call through the tool's breaker. While open, decrements
    /// the call-counted cooldown and fails fast; the call that finds
    /// the cooldown at zero becomes the half-open probe and proceeds.
    fn breaker_admit(&self, name: &str) -> Result<(), EstimateError> {
        let Some(cfg) = self.config.breaker else {
            return Ok(());
        };
        let mut map = self.breakers.borrow_mut();
        let st = map
            .entry(name.to_owned())
            .or_insert_with(|| BreakerState::new(&cfg, name));
        match st.phase {
            BreakerPhase::Closed | BreakerPhase::HalfOpen => Ok(()),
            BreakerPhase::Open if st.open_remaining == 0 => {
                st.phase = BreakerPhase::HalfOpen;
                Ok(())
            }
            BreakerPhase::Open => {
                st.open_remaining -= 1;
                st.short_circuits += 1;
                let left = st.open_remaining;
                drop(map);
                self.bump(|s| s.breaker_short_circuits += 1);
                Err(EstimateError::ToolFailed(format!(
                    "{BREAKER_OPEN_MSG} for {name}: {left} calls until half-open probe"
                )))
            }
        }
    }

    /// Feed a terminal call outcome back into the tool's breaker.
    fn breaker_record(&self, name: &str, success: bool) {
        let Some(cfg) = self.config.breaker else {
            return;
        };
        let mut map = self.breakers.borrow_mut();
        let Some(st) = map.get_mut(name) else {
            return;
        };
        if success {
            st.phase = BreakerPhase::Closed;
            st.consecutive_failures = 0;
            st.cooldown = cfg.cooldown_calls.max(1);
            return;
        }
        let tripped = match st.phase {
            BreakerPhase::HalfOpen => {
                // Failed probe: reopen with the cooldown doubled, capped.
                st.cooldown = (st.cooldown.saturating_mul(2)).min(cfg.cooldown_cap.max(1));
                st.trip();
                true
            }
            BreakerPhase::Closed => {
                st.consecutive_failures += 1;
                if st.consecutive_failures >= cfg.trip_threshold {
                    st.consecutive_failures = 0;
                    st.trip();
                    true
                } else {
                    false
                }
            }
            BreakerPhase::Open => false,
        };
        drop(map);
        if tripped {
            self.bump(|s| s.breaker_trips += 1);
        }
    }

    fn bump(&self, f: impl FnOnce(&mut SupervisorStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }
}

/// Marker prefix for breaker short-circuit errors (also how the ladder
/// recognizes them for provenance tagging).
const BREAKER_OPEN_MSG: &str = "circuit breaker open";

fn is_breaker_open_err(e: &EstimateError) -> bool {
    matches!(e, EstimateError::ToolFailed(m) if m.starts_with(BREAKER_OPEN_MSG))
}

/// FNV-1a over the tool name: a tiny stable hash to decorrelate backoff
/// streams between tools.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Estimator;
    use crate::robust::fault::silence_injected_panics;
    use crate::robust::Provenance;
    use crate::value::Value;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Doubler;
    impl Estimator for Doubler {
        fn name(&self) -> &str {
            "Doubler"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
            inputs
                .get("X")
                .and_then(Value::as_f64)
                .map(|x| 2.0 * x)
                .ok_or_else(|| EstimateError::MissingInput("X".to_owned()))
        }
    }

    struct Panicky;
    impl Estimator for Panicky {
        fn name(&self) -> &str {
            "Panicky"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, _: &Bindings) -> Result<f64, EstimateError> {
            panic!("injected: unconditional tool crash")
        }
        fn fallbacks(&self) -> Vec<String> {
            vec!["Doubler".to_owned()]
        }
    }

    /// Fails transiently `fails` times, then succeeds.
    struct Flaky {
        fails: u64,
        calls: AtomicU64,
    }
    impl Estimator for Flaky {
        fn name(&self) -> &str {
            "Flaky"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, _: &Bindings) -> Result<f64, EstimateError> {
            if self.calls.fetch_add(1, Ordering::Relaxed) < self.fails {
                Err(EstimateError::Transient("injected: flaky".to_owned()))
            } else {
                Ok(42.0)
            }
        }
    }

    struct NanTool;
    impl Estimator for NanTool {
        fn name(&self) -> &str {
            "NanTool"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, _: &Bindings) -> Result<f64, EstimateError> {
            Ok(f64::NAN)
        }
    }

    fn x_bindings() -> Bindings {
        let mut b = Bindings::new();
        b.insert("X".to_owned(), Value::Int(21));
        b
    }

    fn supervisor(tools: Vec<Box<dyn Estimator>>) -> Supervisor {
        let mut reg = EstimatorRegistry::new();
        for t in tools {
            reg.register(t);
        }
        Supervisor::new(reg)
    }

    #[test]
    fn healthy_tool_yields_estimated_provenance() {
        let sup = supervisor(vec![Box::new(Doubler)]);
        let fig = sup.estimate("Doubler", &x_bindings(), None);
        assert_eq!(fig.value, Some(42.0));
        assert_eq!(fig.provenance, Provenance::Estimated);
        assert_eq!(sup.stats(), SupervisorStats::default());
    }

    #[test]
    fn panic_is_contained_and_fallback_chain_answers() {
        silence_injected_panics();
        let sup = supervisor(vec![Box::new(Panicky), Box::new(Doubler)]);
        let fig = sup.estimate("Panicky", &x_bindings(), None);
        assert_eq!(fig.value, Some(42.0));
        assert_eq!(fig.provenance, Provenance::Fallback);
        assert_eq!(fig.source, "Doubler");
        let stats = sup.stats();
        assert_eq!(stats.panics_caught, 1);
        assert_eq!(stats.fallbacks_used, 1);
        // The registry is still usable after the panic.
        assert_eq!(sup.call("Doubler", &x_bindings()).unwrap(), 42.0);
    }

    #[test]
    fn panic_with_no_fallback_falls_to_declared_range() {
        silence_injected_panics();
        let sup = supervisor(vec![Box::new(Panicky)]);
        let fig = sup.estimate("Panicky", &x_bindings(), Some((10.0, 30.0)));
        assert_eq!(fig.value, Some(20.0));
        assert_eq!(fig.provenance, Provenance::Fallback);
        assert_eq!(fig.source, "declared-range");
    }

    #[test]
    fn nothing_left_reports_unavailable_with_the_primary_error() {
        silence_injected_panics();
        let sup = supervisor(vec![Box::new(Panicky)]);
        let fig = sup.estimate("Panicky", &x_bindings(), None);
        assert_eq!(fig.value, None);
        assert_eq!(fig.provenance, Provenance::Unavailable);
        assert!(fig.source.contains("Panicky"), "{}", fig.source);
        assert!(fig.source.contains("crash"), "{}", fig.source);
    }

    #[test]
    fn transient_failures_are_retried_within_bounds() {
        let sup = supervisor(vec![Box::new(Flaky {
            fails: 2,
            calls: AtomicU64::new(0),
        })]);
        assert_eq!(sup.call("Flaky", &Bindings::new()).unwrap(), 42.0);
        assert_eq!(sup.stats().retries, 2);

        // Three consecutive failures exceed max_retries = 2.
        let sup = supervisor(vec![Box::new(Flaky {
            fails: 3,
            calls: AtomicU64::new(0),
        })]);
        assert!(matches!(
            sup.call("Flaky", &Bindings::new()).unwrap_err(),
            EstimateError::Transient(_)
        ));
    }

    #[test]
    fn non_finite_output_is_rejected_not_propagated() {
        let sup = supervisor(vec![Box::new(NanTool)]);
        assert!(matches!(
            sup.call("NanTool", &Bindings::new()).unwrap_err(),
            EstimateError::InvalidOutput(_)
        ));
        // ... and the range fallback covers for it.
        let fig = sup.estimate("NanTool", &Bindings::new(), Some((0.0, 8.0)));
        assert_eq!(fig.value, Some(4.0));
        assert_eq!(fig.provenance, Provenance::Fallback);
    }

    #[test]
    fn unknown_tools_and_non_finite_ranges_stay_unavailable() {
        let sup = supervisor(vec![]);
        assert!(matches!(
            sup.call("Ghost", &Bindings::new()).unwrap_err(),
            EstimateError::UnknownEstimator(_)
        ));
        let fig = sup.estimate("Ghost", &Bindings::new(), Some((f64::NEG_INFINITY, 1.0)));
        assert_eq!(fig.provenance, Provenance::Unavailable);
    }

    /// Counts how often it actually runs, so cache hits are observable.
    struct Counting {
        calls: AtomicU64,
    }
    impl Estimator for Counting {
        fn name(&self) -> &str {
            "Counting"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            inputs
                .get("X")
                .and_then(Value::as_f64)
                .ok_or_else(|| EstimateError::MissingInput("X".to_owned()))
        }
    }

    #[test]
    fn cache_answers_repeats_without_rerunning_the_tool() {
        let mut reg = EstimatorRegistry::new();
        reg.register(Box::new(Counting {
            calls: AtomicU64::new(0),
        }));
        let cache = Arc::new(EstimateCache::new());
        let sup = Supervisor::with_cache(reg, Arc::clone(&cache));
        let b = x_bindings();
        let first = sup.estimate("Counting", &b, None);
        let second = sup.estimate("Counting", &b, None);
        assert_eq!(first, second);
        assert_eq!(first.provenance, Provenance::Estimated);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));

        // A changed input is a different key: miss, not a stale hit.
        let mut other = x_bindings();
        other.insert("X", Value::Int(4));
        assert_eq!(sup.estimate("Counting", &other, None).value, Some(4.0));
        // Rolling back to the original inputs hits again.
        assert_eq!(sup.estimate("Counting", &b, None), first);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn degraded_figures_are_recomputed_until_the_tool_recovers() {
        silence_injected_panics();
        let mut reg = EstimatorRegistry::new();
        reg.register(Box::new(Panicky));
        let cache = Arc::new(EstimateCache::new());
        let sup = Supervisor::with_cache(reg, Arc::clone(&cache));
        let fig = sup.estimate("Panicky", &x_bindings(), Some((10.0, 30.0)));
        assert_eq!(fig.provenance, Provenance::Fallback);
        // The degraded figure was not stored ...
        assert!(cache.is_empty());
        assert_eq!(cache.stats().uncacheable, 1);
        // ... so once a healthy tool answers under the same name, the
        // session sees the recovery instead of the stale fallback.
        let mut healthy = EstimatorRegistry::new();
        healthy.register(Box::new(Doubler));
        struct Renamed(Doubler);
        impl Estimator for Renamed {
            fn name(&self) -> &str {
                "Panicky"
            }
            fn metric(&self) -> &str {
                "ns"
            }
            fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
                self.0.estimate(inputs)
            }
        }
        let mut recovered = EstimatorRegistry::new();
        recovered.register(Box::new(Renamed(Doubler)));
        let sup2 = Supervisor::with_cache(recovered, Arc::clone(&cache));
        let fig2 = sup2.estimate("Panicky", &x_bindings(), Some((10.0, 30.0)));
        assert_eq!(fig2.provenance, Provenance::Estimated);
        assert_eq!(fig2.value, Some(42.0));
    }

    /// Burns `cost` fuel per call, then returns 7.0.
    struct Burner {
        cost: u64,
    }
    impl Estimator for Burner {
        fn name(&self) -> &str {
            "Burner"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, _: &Bindings) -> Result<f64, EstimateError> {
            Ok(7.0)
        }
        fn estimate_with_fuel(
            &self,
            _: &Bindings,
            fuel: &crate::robust::Fuel,
        ) -> Result<f64, EstimateError> {
            fuel.spend(self.cost)?;
            Ok(7.0)
        }
    }

    fn breaker_config(threshold: u32, cooldown: u64) -> SupervisorConfig {
        SupervisorConfig {
            breaker: Some(BreakerConfig {
                trip_threshold: threshold,
                cooldown_calls: cooldown,
                cooldown_cap: 8,
                probe_seed: 1,
            }),
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn breaker_trips_short_circuits_and_recloses_on_a_good_probe() {
        // Terminal failures 1..=3, then healthy — with max_retries = 0 so
        // every transient error is terminal.
        let mut reg = EstimatorRegistry::new();
        reg.register(Box::new(Flaky {
            fails: 3,
            calls: AtomicU64::new(0),
        }));
        let config = SupervisorConfig {
            max_retries: 0,
            ..breaker_config(2, 1)
        };
        let sup = Supervisor::with_config(reg, config);
        let b = Bindings::new();

        // Two terminal failures trip the breaker (cooldown 1, jitter 0).
        assert!(sup.call("Flaky", &b).is_err());
        assert!(sup.call("Flaky", &b).is_err());
        assert_eq!(sup.stats().breaker_trips, 1);
        assert_eq!(sup.breaker_snapshot()[0].phase, "open");

        // One short-circuited call: the tool itself is never touched.
        let err = sup.call("Flaky", &b).unwrap_err();
        assert!(err.to_string().contains("circuit breaker open"), "{err}");
        assert_eq!(sup.stats().breaker_short_circuits, 1);

        // Next call is the half-open probe; the tool fails once more, so
        // the breaker reopens with the cooldown doubled.
        assert!(sup.call("Flaky", &b).is_err());
        assert_eq!(sup.stats().breaker_trips, 2);
        assert_eq!(sup.breaker_snapshot()[0].phase, "open");

        // Ride out the doubled cooldown, then a healthy probe recloses.
        while sup.breaker_snapshot()[0].calls_until_probe > 0 {
            assert!(sup.call("Flaky", &b).is_err());
        }
        assert_eq!(sup.call("Flaky", &b).unwrap(), 42.0);
        let view = &sup.breaker_snapshot()[0];
        assert_eq!(view.phase, "closed");
        assert_eq!(view.trips, 2);
        // Once closed, calls flow normally again.
        assert_eq!(sup.call("Flaky", &b).unwrap(), 42.0);
    }

    #[test]
    fn open_breaker_is_visible_in_fallback_provenance() {
        silence_injected_panics();
        let sup = Supervisor::with_config(
            {
                let mut reg = EstimatorRegistry::new();
                reg.register(Box::new(Panicky));
                reg.register(Box::new(Doubler));
                reg
            },
            breaker_config(1, 8),
        );
        // First estimate trips the breaker on the real panic; the
        // fallback answers without a note (the tool really ran).
        let first = sup.estimate("Panicky", &x_bindings(), None);
        assert_eq!(first.source, "Doubler");
        let phase_of = |tool: &str| {
            sup.breaker_snapshot()
                .into_iter()
                .find(|v| v.tool == tool)
                .unwrap()
                .phase
        };
        assert_eq!(phase_of("Panicky"), "open");
        assert_eq!(phase_of("Doubler"), "closed");
        // While open, the short-circuit is spelled out in provenance.
        let second = sup.estimate("Panicky", &x_bindings(), None);
        assert_eq!(second.value, Some(42.0));
        assert_eq!(second.provenance, Provenance::Fallback);
        assert_eq!(second.source, "Doubler [breaker open: Panicky]");
        assert_eq!(sup.stats().panics_caught, 1, "tool must not have rerun");
    }

    #[test]
    fn breaker_schedule_is_deterministic_per_seed() {
        let run = || {
            silence_injected_panics();
            let mut reg = EstimatorRegistry::new();
            reg.register(Box::new(Panicky));
            let sup = Supervisor::with_config(reg, breaker_config(1, 8));
            for _ in 0..32 {
                let _ = sup.call("Panicky", &Bindings::new());
            }
            (sup.breaker_snapshot(), sup.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn budgeted_estimates_stop_at_the_deadline_not_at_the_range() {
        let mut reg = EstimatorRegistry::new();
        reg.register(Box::new(Burner { cost: 100 }));
        let sup = Supervisor::new(reg);
        let b = Bindings::new();

        // A generous budget answers exactly like the unbudgeted path and
        // debits what the tool spent.
        let budget = Fuel::new(1_000);
        let fig = sup
            .estimate_within("Burner", &b, Some((0.0, 10.0)), &budget)
            .unwrap();
        assert_eq!(fig.value, Some(7.0));
        assert_eq!(budget.spent(), 100);

        // A drained budget is a deadline miss — an error, not a silent
        // range-midpoint figure.
        let tight = Fuel::new(40);
        let err = sup
            .estimate_within("Burner", &b, Some((0.0, 10.0)), &tight)
            .unwrap_err();
        assert!(matches!(err, EstimateError::FuelExhausted { .. }));
        assert_eq!(tight.remaining(), 0);
    }

    #[test]
    fn backoff_schedule_is_deterministic() {
        let run = || {
            let sup = supervisor(vec![Box::new(Flaky {
                fails: 2,
                calls: AtomicU64::new(0),
            })]);
            sup.call("Flaky", &Bindings::new()).unwrap();
            sup.stats()
        };
        assert_eq!(run(), run());
    }
}
