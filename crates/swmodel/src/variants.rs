//! The five word-level Montgomery multiplication variants of
//! Koç–Acar–Kaliski, instrumented with operation counts.
//!
//! All variants compute the Montgomery product `a·b·W^(−s) mod m` where
//! `W = 2³²` is the word base and `s` the number of modulus words. They
//! differ in how the multiplication and reduction loops are organised:
//!
//! * **SOS** — separated operand scanning: full product first, reduction
//!   second (largest temporary, simplest loops).
//! * **CIOS** — coarsely integrated operand scanning: multiplication and
//!   reduction alternate per outer-loop word (the usual best performer).
//! * **FIOS** — finely integrated operand scanning: both multiplications
//!   fused into a single inner loop.
//! * **FIPS** — finely integrated product scanning: column-wise
//!   accumulation of both products.
//! * **CIHS** — coarsely integrated hybrid scanning: the lower-half
//!   product is computed up front, the upper half deferred into the
//!   reduction loop (extra memory traffic — measurably slower, as in the
//!   paper's Fig. 6).

#![allow(clippy::needless_range_loop)] // loops mirror the Koc pseudo-code word-for-word

use std::fmt;

use bignum::{mod_inverse, UBig, LIMB_BITS};

use crate::counter::OpCounts;

/// Which loop organisation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum MontgomeryVariant {
    /// Separated operand scanning.
    Sos,
    /// Coarsely integrated operand scanning.
    Cios,
    /// Finely integrated operand scanning.
    Fios,
    /// Finely integrated product scanning.
    Fips,
    /// Coarsely integrated hybrid scanning.
    Cihs,
}

impl MontgomeryVariant {
    /// All five variants, in the Koç–Acar–Kaliski order.
    pub const ALL: [MontgomeryVariant; 5] = [
        MontgomeryVariant::Sos,
        MontgomeryVariant::Cios,
        MontgomeryVariant::Fios,
        MontgomeryVariant::Fips,
        MontgomeryVariant::Cihs,
    ];
}

impl fmt::Display for MontgomeryVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MontgomeryVariant::Sos => "SOS",
            MontgomeryVariant::Cios => "CIOS",
            MontgomeryVariant::Fios => "FIOS",
            MontgomeryVariant::Fips => "FIPS",
            MontgomeryVariant::Cihs => "CIHS",
        };
        f.write_str(s)
    }
}

/// Errors from constructing/driving the word-level machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WordMontgomeryError {
    /// Montgomery requires an odd modulus.
    EvenModulus,
    /// The modulus must be at least 3.
    ModulusTooSmall,
    /// An operand is not reduced below the modulus.
    UnreducedOperand,
}

impl fmt::Display for WordMontgomeryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WordMontgomeryError::EvenModulus => write!(f, "modulus must be odd"),
            WordMontgomeryError::ModulusTooSmall => write!(f, "modulus must be at least 3"),
            WordMontgomeryError::UnreducedOperand => {
                write!(f, "operands must be reduced below the modulus")
            }
        }
    }
}

impl std::error::Error for WordMontgomeryError {}

/// Word-level Montgomery context: the modulus as a word array plus the
/// precomputed `n₀' = −m₀⁻¹ mod 2³²`.
#[derive(Debug, Clone)]
pub struct WordMontgomery {
    m: Vec<u32>,
    n0_prime: u32,
    s: usize,
    modulus: UBig,
    /// `W^(2s) mod m`, for converting Montgomery products back.
    r2: UBig,
}

impl WordMontgomery {
    /// Builds a context for the odd modulus `m`.
    ///
    /// # Errors
    ///
    /// Returns an error when `m` is even or smaller than 3.
    pub fn new(m: &UBig) -> Result<Self, WordMontgomeryError> {
        if *m <= UBig::from(2u64) {
            return Err(WordMontgomeryError::ModulusTooSmall);
        }
        if m.is_even() {
            return Err(WordMontgomeryError::EvenModulus);
        }
        let s = m.limb_len();
        let mut words = m.limbs().to_vec();
        words.resize(s, 0);
        let w = UBig::power_of_two(LIMB_BITS);
        let m0_inv = mod_inverse(&UBig::from(words[0]), &w)
            .expect("odd word invertible")
            .to_u64()
            .expect("fits");
        let n0_prime = ((1u64 << LIMB_BITS) - m0_inv) as u32;
        let r2 = UBig::power_of_two(2 * s as u32 * LIMB_BITS).rem(m);
        Ok(WordMontgomery {
            m: words,
            n0_prime,
            s,
            modulus: m.clone(),
            r2,
        })
    }

    /// The modulus.
    pub fn modulus(&self) -> &UBig {
        &self.modulus
    }

    /// Number of 32-bit words in the modulus.
    pub fn words(&self) -> usize {
        self.s
    }

    /// The Montgomery product `a·b·W^(−s) mod m` via `variant`, recording
    /// operation counts into `counts`.
    ///
    /// # Errors
    ///
    /// Returns [`WordMontgomeryError::UnreducedOperand`] if `a` or `b` is
    /// not below the modulus.
    pub fn mont_mul(
        &self,
        a: &UBig,
        b: &UBig,
        variant: MontgomeryVariant,
        counts: &mut OpCounts,
    ) -> Result<UBig, WordMontgomeryError> {
        if a >= &self.modulus || b >= &self.modulus {
            return Err(WordMontgomeryError::UnreducedOperand);
        }
        let aw = self.to_words(a);
        let bw = self.to_words(b);
        let u = match variant {
            MontgomeryVariant::Sos => self.sos(&aw, &bw, counts),
            MontgomeryVariant::Cios => self.cios(&aw, &bw, counts),
            MontgomeryVariant::Fios => self.fios(&aw, &bw, counts),
            MontgomeryVariant::Fips => self.fips(&aw, &bw, counts),
            MontgomeryVariant::Cihs => self.cihs(&aw, &bw, counts),
        };
        Ok(self.final_subtract(u, counts))
    }

    /// The plain product `a·b mod m` computed entirely with `variant`
    /// (two Montgomery passes, the second against `W^(2s) mod m`).
    ///
    /// # Errors
    ///
    /// Returns an error if an operand is not below the modulus.
    pub fn mod_mul(
        &self,
        a: &UBig,
        b: &UBig,
        variant: MontgomeryVariant,
        counts: &mut OpCounts,
    ) -> Result<UBig, WordMontgomeryError> {
        let t = self.mont_mul(a, b, variant, counts)?;
        self.mont_mul(&t, &self.r2.clone(), variant, counts)
    }

    fn to_words(&self, v: &UBig) -> Vec<u32> {
        let mut w = v.limbs().to_vec();
        w.resize(self.s, 0);
        w
    }

    /// Final step shared by all variants: `u` has `s+1` words and is below
    /// `2m`; subtract `m` once if needed.
    fn final_subtract(&self, u: Vec<u32>, counts: &mut OpCounts) -> UBig {
        debug_assert_eq!(u.len(), self.s + 1);
        let value = UBig::from_limbs(u);
        counts.load += 2 * self.s as u64;
        counts.add += self.s as u64; // the trial subtraction / compare
        match value.checked_sub(&self.modulus) {
            Some(reduced) => {
                counts.store += self.s as u64;
                debug_assert!(reduced < self.modulus);
                reduced
            }
            None => value,
        }
    }

    /// Separated operand scanning.
    fn sos(&self, a: &[u32], b: &[u32], counts: &mut OpCounts) -> Vec<u32> {
        let s = self.s;
        let mut t = vec![0u32; 2 * s + 1];
        for i in 0..s {
            let mut c: u64 = 0;
            for j in 0..s {
                let uv = t[i + j] as u64 + a[j] as u64 * b[i] as u64 + c;
                t[i + j] = uv as u32;
                c = uv >> 32;
                bump_inner(counts);
            }
            t[i + s] = c as u32;
            counts.store += 1;
        }
        for i in 0..s {
            let mut c: u64 = 0;
            let m_val = t[i].wrapping_mul(self.n0_prime);
            counts.mul += 1;
            counts.load += 1;
            for j in 0..s {
                let uv = t[i + j] as u64 + m_val as u64 * self.m[j] as u64 + c;
                t[i + j] = uv as u32;
                c = uv >> 32;
                bump_inner(counts);
            }
            add_at(&mut t, i + s, c, counts);
        }
        t[s..2 * s + 1].to_vec()
    }

    /// Coarsely integrated operand scanning.
    fn cios(&self, a: &[u32], b: &[u32], counts: &mut OpCounts) -> Vec<u32> {
        let s = self.s;
        let mut t = vec![0u32; s + 2];
        for i in 0..s {
            let mut c: u64 = 0;
            for j in 0..s {
                let uv = t[j] as u64 + a[j] as u64 * b[i] as u64 + c;
                t[j] = uv as u32;
                c = uv >> 32;
                bump_inner(counts);
            }
            let uv = t[s] as u64 + c;
            t[s] = uv as u32;
            t[s + 1] = (uv >> 32) as u32;
            counts.add += 1;
            counts.load += 1;
            counts.store += 2;

            let m_val = t[0].wrapping_mul(self.n0_prime);
            counts.mul += 1;
            counts.load += 1;
            let uv = t[0] as u64 + m_val as u64 * self.m[0] as u64;
            debug_assert_eq!(uv as u32, 0);
            let mut c = uv >> 32;
            counts.mul += 1;
            counts.add += 1;
            counts.load += 2;
            for j in 1..s {
                let uv = t[j] as u64 + m_val as u64 * self.m[j] as u64 + c;
                t[j - 1] = uv as u32;
                c = uv >> 32;
                bump_inner(counts);
            }
            let uv = t[s] as u64 + c;
            t[s - 1] = uv as u32;
            c = uv >> 32;
            t[s] = t[s + 1].wrapping_add(c as u32);
            t[s + 1] = 0;
            counts.add += 2;
            counts.load += 2;
            counts.store += 3;
        }
        t[..s + 1].to_vec()
    }

    /// Finely integrated operand scanning.
    fn fios(&self, a: &[u32], b: &[u32], counts: &mut OpCounts) -> Vec<u32> {
        let s = self.s;
        let mut t = vec![0u32; s + 2];
        for i in 0..s {
            let uv = t[0] as u64 + a[0] as u64 * b[i] as u64;
            bump_inner(counts);
            add_at(&mut t, 1, uv >> 32, counts);
            let s0 = uv as u32;
            let m_val = s0.wrapping_mul(self.n0_prime);
            counts.mul += 1;
            let uv2 = s0 as u64 + m_val as u64 * self.m[0] as u64;
            debug_assert_eq!(uv2 as u32, 0);
            let mut c = uv2 >> 32;
            counts.mul += 1;
            counts.add += 1;
            counts.load += 1;
            for j in 1..s {
                let uv = t[j] as u64 + a[j] as u64 * b[i] as u64 + c;
                bump_inner(counts);
                add_at(&mut t, j + 1, uv >> 32, counts);
                let uv2 = (uv as u32) as u64 + m_val as u64 * self.m[j] as u64;
                t[j - 1] = uv2 as u32;
                c = uv2 >> 32;
                counts.mul += 1;
                counts.add += 1;
                counts.load += 1;
                counts.store += 1;
            }
            let uv = t[s] as u64 + c;
            t[s - 1] = uv as u32;
            t[s] = t[s + 1].wrapping_add((uv >> 32) as u32);
            t[s + 1] = 0;
            counts.add += 2;
            counts.load += 2;
            counts.store += 3;
        }
        t[..s + 1].to_vec()
    }

    /// Finely integrated product scanning: column-wise with a wide
    /// accumulator and on-the-fly quotient digits.
    fn fips(&self, a: &[u32], b: &[u32], counts: &mut OpCounts) -> Vec<u32> {
        let s = self.s;
        let mut q = vec![0u32; s];
        let mut u = vec![0u32; s + 1];
        let mut acc: u128 = 0;
        for i in 0..s {
            for j in 0..=i {
                acc += a[j] as u128 * b[i - j] as u128;
                bump_product(counts);
            }
            for j in 0..i {
                acc += q[j] as u128 * self.m[i - j] as u128;
                bump_product(counts);
            }
            let qi = (acc as u32).wrapping_mul(self.n0_prime);
            q[i] = qi;
            counts.mul += 1;
            counts.store += 1;
            acc += qi as u128 * self.m[0] as u128;
            counts.mul += 1;
            counts.add += 2;
            counts.load += 1;
            debug_assert_eq!(acc as u32, 0);
            acc >>= 32;
        }
        for i in s..2 * s {
            for j in (i - s + 1)..s {
                acc += a[j] as u128 * b[i - j] as u128;
                bump_product(counts);
            }
            for j in (i - s + 1)..s {
                acc += q[j] as u128 * self.m[i - j] as u128;
                bump_product(counts);
            }
            u[i - s] = acc as u32;
            counts.store += 1;
            acc >>= 32;
        }
        u[s] = acc as u32;
        counts.store += 1;
        u
    }

    /// Coarsely integrated hybrid scanning: lower-half product up front,
    /// the upper half deferred into the reduction sweep.
    fn cihs(&self, a: &[u32], b: &[u32], counts: &mut OpCounts) -> Vec<u32> {
        let s = self.s;
        let mut t = vec![0u32; 2 * s + 1];
        // Phase 1: only the product columns below s.
        for i in 0..s {
            let mut c: u64 = 0;
            for j in 0..(s - i) {
                let uv = t[i + j] as u64 + a[j] as u64 * b[i] as u64 + c;
                t[i + j] = uv as u32;
                c = uv >> 32;
                bump_inner(counts);
            }
            add_at(&mut t, s, c, counts);
        }
        // Phase 2: reduction sweep with the deferred upper-half products.
        for i in 0..s {
            let m_val = t[i].wrapping_mul(self.n0_prime);
            counts.mul += 1;
            counts.load += 1;
            let mut c: u64 = 0;
            for j in 0..s {
                let uv = t[i + j] as u64 + m_val as u64 * self.m[j] as u64 + c;
                t[i + j] = uv as u32;
                c = uv >> 32;
                bump_inner(counts);
            }
            add_at(&mut t, i + s, c, counts);
            // Deferred products for column s+i: pairs a[j]·b[s+i−j], j > i.
            for j in (i + 1)..s {
                let p = a[j] as u64 * b[s + i - j] as u64;
                bump_inner(counts);
                counts.add += 1; // double-word deferred accumulation
                add_wide_at(&mut t, s + i, p, counts);
            }
        }
        t[s..2 * s + 1].to_vec()
    }
}

/// One product-scanning step: a word multiply accumulated into a
/// register-resident triple-word accumulator (no store).
fn bump_product(counts: &mut OpCounts) {
    counts.mul += 1;
    counts.add += 3;
    counts.load += 2;
    counts.loop_iter += 1;
}

/// One inner-loop step: a word multiply, a double add, three loads, one
/// store and the loop bookkeeping.
fn bump_inner(counts: &mut OpCounts) {
    counts.mul += 1;
    counts.add += 2;
    counts.load += 3;
    counts.store += 1;
    counts.loop_iter += 1;
}

/// Adds `value` into `t` starting at word `idx`, propagating carries.
fn add_at(t: &mut [u32], mut idx: usize, mut value: u64, counts: &mut OpCounts) {
    while value != 0 && idx < t.len() {
        let uv = t[idx] as u64 + (value & 0xFFFF_FFFF);
        t[idx] = uv as u32;
        value = (value >> 32) + (uv >> 32);
        idx += 1;
        counts.add += 1;
        counts.load += 1;
        counts.store += 1;
    }
    debug_assert_eq!(value, 0, "carry ran off the end of the temporary");
}

/// Adds a full 64-bit product into `t` at word `idx`.
fn add_wide_at(t: &mut [u32], idx: usize, value: u64, counts: &mut OpCounts) {
    add_at(t, idx, value & 0xFFFF_FFFF, counts);
    add_at(t, idx + 1, value >> 32, counts);
}

foundation::impl_json_enum!(MontgomeryVariant { Sos, Cios, Fios, Fips, Cihs });

#[cfg(test)]
mod tests {
    use super::*;
    use bignum::{uniform_below, MontgomeryContext};
    use foundation::rng::{SeedableRng, StdRng};

    fn odd_modulus(bits: u32, rng: &mut StdRng) -> UBig {
        let mut m = uniform_below(&UBig::power_of_two(bits), rng);
        m.set_bit(bits - 1, true);
        m.set_bit(0, true);
        m
    }

    /// Golden model: a·b·W^(−s) mod m via the full-width REDC context.
    fn golden(a: &UBig, b: &UBig, m: &UBig, s: usize) -> UBig {
        let w_inv = bignum::mod_inverse(&UBig::power_of_two(32 * s as u32), m).unwrap();
        a.mod_mul(b, m).mod_mul(&w_inv, m)
    }

    #[test]
    fn all_variants_match_golden_model() {
        let mut rng = StdRng::seed_from_u64(101);
        for bits in [32u32, 64, 96, 256, 521] {
            let m = odd_modulus(bits, &mut rng);
            let ctx = WordMontgomery::new(&m).unwrap();
            let a = uniform_below(&m, &mut rng);
            let b = uniform_below(&m, &mut rng);
            let expect = golden(&a, &b, &m, ctx.words());
            for v in MontgomeryVariant::ALL {
                let mut counts = OpCounts::new();
                let got = ctx.mont_mul(&a, &b, v, &mut counts).unwrap();
                assert_eq!(got, expect, "{v} at {bits} bits");
                assert!(counts.mul > 0);
            }
        }
    }

    #[test]
    fn variants_agree_with_each_other_exhaustively_small() {
        let m = UBig::from(0xFFFF_FFB1u64); // odd, one word
        let ctx = WordMontgomery::new(&m).unwrap();
        for a in [0u64, 1, 2, 12345, 0xFFFF_FFB0] {
            for b in [0u64, 1, 99999, 0xFFFF_FFB0] {
                let mut results = Vec::new();
                for v in MontgomeryVariant::ALL {
                    let mut c = OpCounts::new();
                    results.push(
                        ctx.mont_mul(&UBig::from(a), &UBig::from(b), v, &mut c)
                            .unwrap(),
                    );
                }
                assert!(results.windows(2).all(|w| w[0] == w[1]), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn mod_mul_gives_plain_product() {
        let mut rng = StdRng::seed_from_u64(102);
        let m = odd_modulus(160, &mut rng);
        let ctx = WordMontgomery::new(&m).unwrap();
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);
        for v in MontgomeryVariant::ALL {
            let mut c = OpCounts::new();
            assert_eq!(
                ctx.mod_mul(&a, &b, v, &mut c).unwrap(),
                a.mod_mul(&b, &m),
                "{v}"
            );
        }
    }

    #[test]
    fn agrees_with_bignum_montgomery_context() {
        let mut rng = StdRng::seed_from_u64(103);
        let m = odd_modulus(128, &mut rng);
        let word_ctx = WordMontgomery::new(&m).unwrap();
        let big_ctx = MontgomeryContext::new(&m).unwrap();
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);
        let mut c = OpCounts::new();
        // Both compute a plain product through their own Montgomery routes.
        assert_eq!(
            word_ctx
                .mod_mul(&a, &b, MontgomeryVariant::Cios, &mut c)
                .unwrap(),
            big_ctx.mod_mul(&a, &b)
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            WordMontgomery::new(&UBig::from(10u64)).unwrap_err(),
            WordMontgomeryError::EvenModulus
        );
        assert_eq!(
            WordMontgomery::new(&UBig::one()).unwrap_err(),
            WordMontgomeryError::ModulusTooSmall
        );
        let ctx = WordMontgomery::new(&UBig::from(101u64)).unwrap();
        let mut c = OpCounts::new();
        assert_eq!(
            ctx.mont_mul(
                &UBig::from(101u64),
                &UBig::one(),
                MontgomeryVariant::Cios,
                &mut c
            )
            .unwrap_err(),
            WordMontgomeryError::UnreducedOperand
        );
    }

    #[test]
    fn mult_counts_scale_quadratically() {
        let mut rng = StdRng::seed_from_u64(104);
        let m1 = odd_modulus(256, &mut rng); // 8 words
        let m2 = odd_modulus(512, &mut rng); // 16 words
        for v in MontgomeryVariant::ALL {
            let mut c1 = OpCounts::new();
            let mut c2 = OpCounts::new();
            let ctx1 = WordMontgomery::new(&m1).unwrap();
            let ctx2 = WordMontgomery::new(&m2).unwrap();
            let a1 = uniform_below(&m1, &mut rng);
            let a2 = uniform_below(&m2, &mut rng);
            ctx1.mont_mul(&a1, &a1, v, &mut c1).unwrap();
            ctx2.mont_mul(&a2, &a2, v, &mut c2).unwrap();
            let ratio = c2.mul as f64 / c1.mul as f64;
            assert!(
                (3.2..=4.8).contains(&ratio),
                "{v}: mul ratio {ratio} not ~4x"
            );
        }
    }

    #[test]
    fn cihs_does_more_memory_traffic_than_cios() {
        // The paper's Fig. 6 ordering (CIOS C beats CIHS C) rests on this.
        let mut rng = StdRng::seed_from_u64(105);
        let m = odd_modulus(1024, &mut rng);
        let ctx = WordMontgomery::new(&m).unwrap();
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);
        let mut cios = OpCounts::new();
        let mut cihs = OpCounts::new();
        ctx.mont_mul(&a, &b, MontgomeryVariant::Cios, &mut cios)
            .unwrap();
        ctx.mont_mul(&a, &b, MontgomeryVariant::Cihs, &mut cihs)
            .unwrap();
        assert!(cihs.load + cihs.store > cios.load + cios.store);
    }

    #[test]
    fn mul_count_is_2s2_plus_s() {
        // Koç–Acar–Kaliski: every variant performs 2s² + s word products.
        let mut rng = StdRng::seed_from_u64(106);
        let m = odd_modulus(256, &mut rng); // s = 8
        let ctx = WordMontgomery::new(&m).unwrap();
        let s = ctx.words() as u64;
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);
        for v in MontgomeryVariant::ALL {
            let mut c = OpCounts::new();
            ctx.mont_mul(&a, &b, v, &mut c).unwrap();
            assert_eq!(c.mul, 2 * s * s + s, "{v}");
        }
    }
}
