//! The estimation-tool plugin interface.
//!
//! When no suitable core exists in the reuse libraries, the layer still
//! assists conceptual design through early estimation tools; CC3-style
//! constraints define exactly when each tool applies. Tools implement
//! [`Estimator`] and register under the name the constraints refer to.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::Bindings;
use crate::robust::Fuel;

/// Errors from invoking an estimator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EstimateError {
    /// No estimator registered under that name.
    UnknownEstimator(String),
    /// A required input is missing from the bindings.
    MissingInput(String),
    /// The tool could not produce an estimate for these inputs.
    NotApplicable(String),
    /// The tool crashed (panicked); caught by the supervisor.
    ToolFailed(String),
    /// A transient failure: retrying the same call may succeed. The
    /// supervisor retries these with seeded backoff.
    Transient(String),
    /// The call's deterministic step budget ran out.
    FuelExhausted {
        /// The budget the call started with.
        limit: u64,
    },
    /// The tool returned a non-finite or out-of-range value.
    InvalidOutput(String),
}

impl EstimateError {
    /// Whether retrying the identical call may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, EstimateError::Transient(_))
    }
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::UnknownEstimator(n) => write!(f, "unknown estimator {n:?}"),
            EstimateError::MissingInput(p) => write!(f, "estimator input {p:?} is not bound"),
            EstimateError::NotApplicable(why) => write!(f, "estimator not applicable: {why}"),
            EstimateError::ToolFailed(why) => write!(f, "estimation tool crashed: {why}"),
            EstimateError::Transient(why) => write!(f, "transient estimator failure: {why}"),
            EstimateError::FuelExhausted { limit } => {
                write!(f, "estimator exhausted its fuel budget of {limit} steps")
            }
            EstimateError::InvalidOutput(why) => {
                write!(f, "estimator returned an invalid value: {why}")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

/// An early estimation tool: maps decided property bindings to a metric
/// value (e.g. maximum combinational delay in ns).
pub trait Estimator: Send + Sync {
    /// The registered name CC3-style constraints refer to.
    fn name(&self) -> &str;

    /// What the produced number means (for reports).
    fn metric(&self) -> &str;

    /// Produces the estimate.
    ///
    /// # Errors
    ///
    /// Returns an error if required inputs are missing or out of scope.
    fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError>;

    /// Produces the estimate under a deterministic step budget.
    ///
    /// Long-running tools should override this and spend from `fuel` at
    /// their dominant-loop granularity; the default ignores the budget
    /// (appropriate for constant-time tools).
    ///
    /// # Errors
    ///
    /// The tool's own errors, or [`EstimateError::FuelExhausted`] when the
    /// budget runs out mid-computation.
    fn estimate_with_fuel(&self, inputs: &Bindings, fuel: &Fuel) -> Result<f64, EstimateError> {
        let _ = fuel;
        self.estimate(inputs)
    }

    /// Registered names of coarser tools to try, in order, when this tool
    /// fails — the declarative fallback chain the supervisor walks before
    /// resorting to the output property's declared range.
    fn fallbacks(&self) -> Vec<String> {
        Vec::new()
    }
}

/// A registry of estimation tools, keyed by name.
#[derive(Default)]
pub struct EstimatorRegistry {
    tools: BTreeMap<String, Box<dyn Estimator>>,
}

impl EstimatorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        EstimatorRegistry::default()
    }

    /// Registers a tool; replaces any previous tool of the same name and
    /// returns it.
    pub fn register(&mut self, tool: Box<dyn Estimator>) -> Option<Box<dyn Estimator>> {
        self.tools.insert(tool.name().to_owned(), tool)
    }

    /// Looks up a tool.
    pub fn get(&self, name: &str) -> Option<&dyn Estimator> {
        self.tools.get(name).map(Box::as_ref)
    }

    /// Runs a tool by name.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnknownEstimator`] for unregistered names,
    /// or the tool's own error.
    pub fn run(&self, name: &str, inputs: &Bindings) -> Result<f64, EstimateError> {
        self.get(name)
            .ok_or_else(|| EstimateError::UnknownEstimator(name.to_owned()))?
            .estimate(inputs)
    }

    /// Runs a tool by name under a fuel budget.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnknownEstimator`] for unregistered names,
    /// or the tool's own error (including fuel exhaustion).
    pub fn run_with_fuel(
        &self,
        name: &str,
        inputs: &Bindings,
        fuel: &Fuel,
    ) -> Result<f64, EstimateError> {
        self.get(name)
            .ok_or_else(|| EstimateError::UnknownEstimator(name.to_owned()))?
            .estimate_with_fuel(inputs, fuel)
    }

    /// Registered tool names.
    pub fn names(&self) -> Vec<&str> {
        self.tools.keys().map(String::as_str).collect()
    }

    /// Consumes the registry, yielding the registered tools — used by
    /// fault-injection harnesses that wrap every tool.
    pub fn into_tools(self) -> Vec<Box<dyn Estimator>> {
        self.tools.into_values().collect()
    }
}

impl fmt::Debug for EstimatorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EstimatorRegistry")
            .field("tools", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    struct Doubler;

    impl Estimator for Doubler {
        fn name(&self) -> &str {
            "Doubler"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
            let v = inputs
                .get("X")
                .ok_or_else(|| EstimateError::MissingInput("X".to_owned()))?;
            v.as_f64()
                .map(|x| 2.0 * x)
                .ok_or_else(|| EstimateError::NotApplicable("X must be numeric".to_owned()))
        }
    }

    #[test]
    fn register_and_run() {
        let mut reg = EstimatorRegistry::new();
        assert!(reg.register(Box::new(Doubler)).is_none());
        let mut b = Bindings::new();
        b.insert("X".to_owned(), Value::Int(21));
        assert_eq!(reg.run("Doubler", &b).unwrap(), 42.0);
        assert_eq!(reg.names(), vec!["Doubler"]);
    }

    #[test]
    fn unknown_estimator_errors() {
        let reg = EstimatorRegistry::new();
        assert_eq!(
            reg.run("Nope", &Bindings::new()).unwrap_err(),
            EstimateError::UnknownEstimator("Nope".to_owned())
        );
    }

    #[test]
    fn missing_input_errors() {
        let mut reg = EstimatorRegistry::new();
        reg.register(Box::new(Doubler));
        assert_eq!(
            reg.run("Doubler", &Bindings::new()).unwrap_err(),
            EstimateError::MissingInput("X".to_owned())
        );
    }

    #[test]
    fn re_registration_returns_old_tool() {
        let mut reg = EstimatorRegistry::new();
        reg.register(Box::new(Doubler));
        let old = reg.register(Box::new(Doubler));
        assert!(old.is_some());
    }
}
