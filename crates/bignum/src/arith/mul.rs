//! Multiplication: schoolbook operand scanning plus Karatsuba above a
//! threshold. Operand scanning is the same loop structure as the SOS
//! software variant modelled in `swmodel`.

use crate::{DoubleLimb, Limb, UBig, LIMB_BITS};

/// Limb count above which [`mul`] switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 24;

/// Computes `a * b`, choosing schoolbook or Karatsuba by operand size.
pub fn mul(a: &UBig, b: &UBig) -> UBig {
    if a.limb_len().min(b.limb_len()) >= KARATSUBA_THRESHOLD {
        mul_karatsuba(a, b)
    } else {
        mul_schoolbook(a, b)
    }
}

/// Schoolbook (operand-scanning) multiplication, `O(n·m)` limb products.
pub fn mul_schoolbook(a: &UBig, b: &UBig) -> UBig {
    if a.is_zero() || b.is_zero() {
        return UBig::zero();
    }
    let (la, lb) = (a.limbs(), b.limbs());
    let mut out: Vec<Limb> = vec![0; la.len() + lb.len()];
    for (i, &x) in la.iter().enumerate() {
        let mut carry: DoubleLimb = 0;
        for (j, &y) in lb.iter().enumerate() {
            let t = x as DoubleLimb * y as DoubleLimb + out[i + j] as DoubleLimb + carry;
            out[i + j] = t as Limb;
            carry = t >> LIMB_BITS;
        }
        out[i + lb.len()] = carry as Limb;
    }
    UBig::from_limbs(out)
}

/// Karatsuba multiplication (recursive, three half-size products).
///
/// Exposed publicly so the property-test suite can cross-check it against
/// [`mul_schoolbook`] regardless of the dispatch threshold.
pub fn mul_karatsuba(a: &UBig, b: &UBig) -> UBig {
    let n = a.limb_len().min(b.limb_len());
    // Recursing below the threshold trades O(n²) limb products for
    // allocation-dominated bookkeeping and loses badly; bottom out into
    // schoolbook as soon as either operand is small.
    if n < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = (a.limb_len().max(b.limb_len()) / 2) as u32 * LIMB_BITS;
    // a = a1·2^half + a0, b = b1·2^half + b0.
    let a0 = a.low_bits(half);
    let a1 = a.shr(half);
    let b0 = b.low_bits(half);
    let b1 = b.shr(half);

    let z0 = mul_karatsuba(&a0, &b0);
    let z2 = mul_karatsuba(&a1, &b1);
    let z1 = mul_karatsuba(&(&a0 + &a1), &(&b0 + &b1));
    // z1 - z2 - z0 is non-negative by construction.
    let mid = z1
        .checked_sub(&z2)
        .and_then(|t| t.checked_sub(&z0))
        .expect("karatsuba middle term is non-negative");

    &(&z2.shl(2 * half) + &mid.shl(half)) + &z0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_of_sum_identity() {
        // (a+b)^2 = a^2 + 2ab + b^2 on multi-limb values.
        let a = UBig::from_hex("ffffffffffffffffffffffff").unwrap();
        let b = UBig::from_hex("123456789").unwrap();
        let lhs = {
            let s = &a + &b;
            &s * &s
        };
        let rhs = &(&(&a * &a) + &(&a * &b).shl(1)) + &(&b * &b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn karatsuba_on_large_asymmetric_operands() {
        let a = UBig::power_of_two(2048) + UBig::from(0xdeadbeefu64);
        let b = UBig::power_of_two(512) + UBig::from(17u64);
        assert_eq!(mul_karatsuba(&a, &b), mul_schoolbook(&a, &b));
    }

    #[test]
    fn dispatcher_crosses_threshold_consistently() {
        // Exactly at and around the Karatsuba threshold.
        for limbs in [
            KARATSUBA_THRESHOLD - 1,
            KARATSUBA_THRESHOLD,
            KARATSUBA_THRESHOLD + 1,
        ] {
            let a = UBig::from_limbs((1..=limbs as u32).collect());
            let b = UBig::from_limbs((1..=limbs as u32).rev().collect());
            assert_eq!(mul(&a, &b), mul_schoolbook(&a, &b), "limbs = {limbs}");
        }
    }

    #[test]
    fn mul_by_zero_and_one() {
        let a = UBig::from_hex("abcdef").unwrap();
        assert!(mul(&a, &UBig::zero()).is_zero());
        assert_eq!(mul(&a, &UBig::one()), a);
    }
}
