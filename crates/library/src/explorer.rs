//! The explorer: a session joined with reuse libraries.
//!
//! This is the paper's headline workflow: each design decision made in
//! the session corresponds to a pruning of the design space, and the
//! reusable designs that fall outside the selected region are immediately
//! eliminated from consideration; critical information on the surviving
//! set (ranges of performance, area, …) is directly available.

use dse::eval::{EvaluationSpace, FigureOfMerit};
use dse::hierarchy::{CdoId, DesignSpace};
use dse::session::ExplorationSession;

use crate::core_record::CoreRecord;
use crate::reuse::ReuseLibrary;

/// Smallest core count worth fanning out on the `foundation::par` pool;
/// below it the per-item submission overhead exceeds the compliance
/// check itself.
const PAR_MIN_CORES: usize = 256;

/// An exploration session transparently connected to reuse libraries.
#[derive(Debug)]
pub struct Explorer<'a> {
    /// The conceptual-design session (public: decisions are made here).
    pub session: ExplorationSession<'a>,
    libraries: Vec<&'a ReuseLibrary>,
}

impl<'a> Explorer<'a> {
    /// Starts an explorer over one library.
    pub fn new(space: &'a DesignSpace, root: CdoId, library: &'a ReuseLibrary) -> Self {
        Explorer {
            session: ExplorationSession::new(space, root),
            libraries: vec![library],
        }
    }

    /// Starts an explorer over several libraries (the layer can reference
    /// designs residing in different libraries, Fig. 1).
    pub fn with_libraries(
        space: &'a DesignSpace,
        root: CdoId,
        libraries: impl IntoIterator<Item = &'a ReuseLibrary>,
    ) -> Self {
        Explorer {
            session: ExplorationSession::new(space, root),
            libraries: libraries.into_iter().collect(),
        }
    }

    /// Wraps an *existing* session — a server answering a
    /// `surviving_cores` query resumes the session's state and joins it
    /// to the snapshot's library without replaying any decisions or
    /// cloning the space.
    pub fn from_session(
        session: ExplorationSession<'a>,
        libraries: impl IntoIterator<Item = &'a ReuseLibrary>,
    ) -> Self {
        Explorer {
            session,
            libraries: libraries.into_iter().collect(),
        }
    }

    /// The connected libraries.
    pub fn libraries(&self) -> &[&'a ReuseLibrary] {
        &self.libraries
    }

    /// Cores (across all libraries) complying with every decision made so
    /// far. Compliance is lenient: a core is only filtered on properties
    /// it actually binds.
    pub fn surviving_cores(&self) -> Vec<&'a CoreRecord> {
        let filter = self.session.bindings();
        let cores: Vec<&'a CoreRecord> = self
            .libraries
            .iter()
            .flat_map(|lib| lib.cores())
            .collect();
        if cores.len() < PAR_MIN_CORES {
            return cores
                .into_iter()
                .filter(|c| c.complies_with(filter))
                .collect();
        }
        // Compliance checks are independent per core; fan them out on the
        // foundation pool. `par_map` returns verdicts in submission
        // order, so the surviving list is identical to the sequential
        // filter's, regardless of `DSE_THREADS`.
        let verdicts = foundation::par::par_map(cores.clone(), |c| c.complies_with(filter));
        cores
            .into_iter()
            .zip(verdicts)
            .filter_map(|(c, ok)| ok.then_some(c))
            .collect()
    }

    /// The evaluation space of the surviving cores.
    pub fn evaluation_space(&self) -> EvaluationSpace {
        let cores = self.surviving_cores();
        if cores.len() < PAR_MIN_CORES {
            return cores.into_iter().map(CoreRecord::eval_point).collect();
        }
        foundation::par::par_map(cores, CoreRecord::eval_point)
            .into_iter()
            .collect()
    }

    /// The `(min, max)` range of a merit over the surviving cores — the
    /// "critical information on the set of reusable designs that do comply
    /// with the decision".
    pub fn merit_range(&self, merit: &FigureOfMerit) -> Option<(f64, f64)> {
        self.evaluation_space().range(merit)
    }

    /// The Pareto-optimal surviving cores under `merits`.
    pub fn pareto_cores(&self, merits: &[FigureOfMerit]) -> Vec<&'a CoreRecord> {
        let cores = self.surviving_cores();
        let space: EvaluationSpace = cores.iter().map(|c| c.eval_point()).collect();
        space
            .pareto_front(merits)
            .into_iter()
            .map(|i| cores[i])
            .collect()
    }

    /// Surviving cores whose `merit` is at most `bound` — requirement
    /// checks like the case study's "768-bit modmul in ≤ 8 µs".
    pub fn cores_meeting(&self, merit: &FigureOfMerit, bound: f64) -> Vec<&'a CoreRecord> {
        self.surviving_cores()
            .into_iter()
            .filter(|c| c.merit_value(merit).is_some_and(|v| v <= bound))
            .collect()
    }

    /// The options of `issue` that can still survive the constraints
    /// given the decisions made so far, proved by the propagation
    /// solver ([`dse::analyze::solve`]). Advisory: deciding a
    /// non-viable option still fails with the violated constraint as
    /// before; this answers the question *without* trial-committing.
    pub fn viable_options(&self, issue: &str) -> dse::analyze::solve::Viability {
        self.session.lookahead().viable(issue)
    }

    /// Ranks the still-open design issues by their impact on `merit`
    /// over the surviving cores — the paper's rule that design issues
    /// "should be partially ordered ... considering the degree to which
    /// they impact key requirements".
    ///
    /// Impact of an issue = relative spread of the per-option mean merit
    /// (`(max − min) / overall mean`); an issue every surviving core
    /// answers identically has zero impact. Issues are returned most
    /// impactful first.
    pub fn issue_impact(&self, merit: &FigureOfMerit) -> Vec<(String, f64)> {
        let cores = self.surviving_cores();
        let overall_mean = {
            let vals: Vec<f64> = cores.iter().filter_map(|c| c.merit_value(merit)).collect();
            if vals.is_empty() {
                return Vec::new();
            }
            vals.iter().sum::<f64>() / vals.len() as f64
        };

        let mut out = Vec::new();
        for prop in self.session.open_issues() {
            let Some(options) = prop.domain().enumerate() else {
                continue;
            };
            let mut means = Vec::new();
            for option in &options {
                let vals: Vec<f64> = cores
                    .iter()
                    .filter(|c| {
                        c.binding(prop.name())
                            .is_some_and(|have| have.matches(option))
                    })
                    .filter_map(|c| c.merit_value(merit))
                    .collect();
                if !vals.is_empty() {
                    means.push(vals.iter().sum::<f64>() / vals.len() as f64);
                }
            }
            let impact = if means.len() < 2 || overall_mean == 0.0 {
                0.0
            } else {
                let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                (hi - lo) / overall_mean
            };
            out.push((prop.name().to_owned(), impact));
        }
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse::prelude::*;

    fn space() -> (DesignSpace, CdoId) {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Multiplier", "");
        s.add_property(
            root,
            Property::generalized_issue("Style", Domain::options(["Hardware", "Software"]), ""),
        )
        .unwrap();
        s.specialize(root, "Style").unwrap();
        (s, root)
    }

    fn library() -> ReuseLibrary {
        let mut lib = ReuseLibrary::new("lib");
        lib.push(
            CoreRecord::new("hw-fast", "x", "")
                .bind("Style", "Hardware")
                .merit(FigureOfMerit::DelayNs, 100.0)
                .merit(FigureOfMerit::AreaUm2, 900.0),
        );
        lib.push(
            CoreRecord::new("hw-small", "x", "")
                .bind("Style", "Hardware")
                .merit(FigureOfMerit::DelayNs, 300.0)
                .merit(FigureOfMerit::AreaUm2, 200.0),
        );
        lib.push(
            CoreRecord::new("hw-bad", "x", "")
                .bind("Style", "Hardware")
                .merit(FigureOfMerit::DelayNs, 400.0)
                .merit(FigureOfMerit::AreaUm2, 1000.0),
        );
        lib.push(
            CoreRecord::new("sw", "x", "")
                .bind("Style", "Software")
                .merit(FigureOfMerit::DelayNs, 9000.0),
        );
        lib
    }

    #[test]
    fn decisions_prune_the_core_set() {
        let (s, root) = space();
        let lib = library();
        let mut exp = Explorer::new(&s, root, &lib);
        assert_eq!(exp.surviving_cores().len(), 4);
        exp.session
            .decide("Style", Value::from("Hardware"))
            .unwrap();
        let names: Vec<&str> = exp.surviving_cores().iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(!names.contains(&"sw"));
    }

    #[test]
    fn ranges_follow_the_pruning() {
        let (s, root) = space();
        let lib = library();
        let mut exp = Explorer::new(&s, root, &lib);
        let (_, hi) = exp.merit_range(&FigureOfMerit::DelayNs).unwrap();
        assert_eq!(hi, 9000.0);
        exp.session
            .decide("Style", Value::from("Hardware"))
            .unwrap();
        let (lo, hi) = exp.merit_range(&FigureOfMerit::DelayNs).unwrap();
        assert_eq!((lo, hi), (100.0, 400.0));
    }

    #[test]
    fn pareto_and_bound_queries() {
        let (s, root) = space();
        let lib = library();
        let mut exp = Explorer::new(&s, root, &lib);
        exp.session
            .decide("Style", Value::from("Hardware"))
            .unwrap();
        let pareto = exp.pareto_cores(&[FigureOfMerit::DelayNs, FigureOfMerit::AreaUm2]);
        let names: Vec<&str> = pareto.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["hw-fast", "hw-small"]);
        let fast = exp.cores_meeting(&FigureOfMerit::DelayNs, 150.0);
        assert_eq!(fast.len(), 1);
        assert_eq!(fast[0].name(), "hw-fast");
    }

    #[test]
    fn issue_impact_ranks_discriminating_issues_first() {
        use crate::crypto;
        use techlib::Technology;

        let layer = crypto::build_layer().unwrap();
        let lib = crypto::build_library(&Technology::g10_035(), 768);
        let mut exp = Explorer::new(&layer.space, layer.omm, &lib);
        exp.session
            .set_requirement("EOL", Value::from(768))
            .unwrap();
        exp.session
            .set_requirement("MaxLatencyUs", Value::from(8.0))
            .unwrap();
        exp.session
            .set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        exp.session
            .decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();

        let ranking = exp.issue_impact(&FigureOfMerit::DelayNs);
        let impact = |name: &str| {
            ranking
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // Every hardware core shares the layout style, so it cannot
        // discriminate; the algorithm and the slicing can.
        assert_eq!(impact("LayoutStyle"), 0.0);
        assert!(impact("Algorithm") > 0.0);
        assert!(impact("SliceWidth") > impact("LayoutStyle"));
        // The ranking is sorted descending.
        for pair in ranking.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn multiple_libraries_union() {
        let (s, root) = space();
        let lib1 = library();
        let mut lib2 = ReuseLibrary::new("second");
        lib2.push(CoreRecord::new("extra", "y", "").bind("Style", "Hardware"));
        let exp = Explorer::with_libraries(&s, root, [&lib1, &lib2]);
        assert_eq!(exp.surviving_cores().len(), 5);
        assert_eq!(exp.libraries().len(), 2);
    }
}
