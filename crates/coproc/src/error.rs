//! The coprocessor error type.

use std::fmt;

/// Errors from driving the coprocessor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoprocError {
    /// The modulus is invalid for the selected engine (even for a
    /// Montgomery engine, or smaller than 2).
    InvalidModulus(String),
    /// An operand is not reduced below the modulus.
    UnreducedOperand,
    /// The underlying engine failed.
    Engine(String),
}

impl fmt::Display for CoprocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoprocError::InvalidModulus(why) => write!(f, "invalid modulus: {why}"),
            CoprocError::UnreducedOperand => {
                write!(f, "operands must be reduced below the modulus")
            }
            CoprocError::Engine(why) => write!(f, "engine error: {why}"),
        }
    }
}

impl std::error::Error for CoprocError {}

impl From<hwmodel::SimError> for CoprocError {
    fn from(e: hwmodel::SimError) -> Self {
        match e {
            hwmodel::SimError::UnreducedOperand => CoprocError::UnreducedOperand,
            other => CoprocError::InvalidModulus(other.to_string()),
        }
    }
}

impl From<swmodel::WordMontgomeryError> for CoprocError {
    fn from(e: swmodel::WordMontgomeryError) -> Self {
        match e {
            swmodel::WordMontgomeryError::UnreducedOperand => CoprocError::UnreducedOperand,
            other => CoprocError::InvalidModulus(other.to_string()),
        }
    }
}

impl From<bignum::MontgomeryError> for CoprocError {
    fn from(e: bignum::MontgomeryError) -> Self {
        CoprocError::InvalidModulus(e.to_string())
    }
}
