//! Deterministic fuel budgets for estimator calls.
//!
//! Wall-clock timeouts would make the hermetic test suite flaky, so
//! long-running estimators are bounded by a *step count* instead: the
//! supervisor hands each call a [`Fuel`] and the estimator spends from it
//! at its own granularity (one iteration of a dominant loop, one operator
//! visited, …). Exhaustion is an ordinary [`EstimateError::FuelExhausted`]
//! the supervisor can fall back from, never an abort.

use std::cell::Cell;

use crate::estimate::EstimateError;

/// A step-count budget handed to an estimator call.
///
/// Interior-mutable so that estimators spend through a shared `&Fuel`;
/// a budget is scoped to a single call and never crosses threads.
#[derive(Debug)]
pub struct Fuel {
    limit: u64,
    remaining: Cell<u64>,
}

impl Fuel {
    /// A budget of `limit` steps.
    pub fn new(limit: u64) -> Self {
        Fuel {
            limit,
            remaining: Cell::new(limit),
        }
    }

    /// An effectively unlimited budget (`u64::MAX` steps) — what bare,
    /// unsupervised calls get.
    pub fn unlimited() -> Self {
        Fuel::new(u64::MAX)
    }

    /// The budget this fuel started with.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Steps left.
    pub fn remaining(&self) -> u64 {
        self.remaining.get()
    }

    /// Steps consumed so far.
    pub fn spent(&self) -> u64 {
        self.limit - self.remaining.get()
    }

    /// Consumes `steps` from the budget.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::FuelExhausted`] when the budget cannot
    /// cover the requested steps; the remainder is drained to zero so
    /// later spends keep failing.
    pub fn spend(&self, steps: u64) -> Result<(), EstimateError> {
        let left = self.remaining.get();
        if steps > left {
            self.remaining.set(0);
            return Err(EstimateError::FuelExhausted { limit: self.limit });
        }
        self.remaining.set(left - steps);
        Ok(())
    }
}

impl Default for Fuel {
    fn default() -> Self {
        Fuel::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spending_within_budget_succeeds() {
        let fuel = Fuel::new(10);
        assert_eq!(fuel.limit(), 10);
        fuel.spend(4).unwrap();
        fuel.spend(6).unwrap();
        assert_eq!(fuel.remaining(), 0);
        assert_eq!(fuel.spent(), 10);
    }

    #[test]
    fn overspending_exhausts_and_stays_exhausted() {
        let fuel = Fuel::new(5);
        fuel.spend(3).unwrap();
        assert_eq!(
            fuel.spend(3).unwrap_err(),
            EstimateError::FuelExhausted { limit: 5 }
        );
        // Drained: even a single further step fails.
        assert_eq!(fuel.remaining(), 0);
        assert!(fuel.spend(1).is_err());
    }

    #[test]
    fn unlimited_fuel_never_runs_out_in_practice() {
        let fuel = Fuel::unlimited();
        fuel.spend(u64::MAX / 2).unwrap();
        fuel.spend(u64::MAX / 2).unwrap();
    }
}
