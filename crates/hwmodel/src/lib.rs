#![warn(missing_docs)]
//! Hardware substrate: structural models and cycle-accurate functional
//! simulation of the paper's modular-multiplier cores.
//!
//! The paper's reuse library contains eight hardware modular-multiplier
//! design families (Table 1), synthesized from RT-level descriptions with
//! commercial tools. This crate is the substitute documented in
//! `DESIGN.md`:
//!
//! * [`AdderKind`] / [`DigitMultiplierKind`] — structural gate-count and
//!   critical-path models of the arithmetic building blocks (ripple-carry,
//!   carry-look-ahead and carry-save adders; array and mux-based digit
//!   multipliers),
//! * [`ModMulArchitecture`] — a point in the hardware design space:
//!   algorithm × radix × slice width × adder × multiplier,
//! * [`estimate`] — area (µm²), clock (ns), latency (cycles and ns) and
//!   power (mW) under a [`techlib::Technology`],
//! * [`sim`] — cycle-accurate functional simulation of the digit-serial
//!   datapaths (including genuine carry-save redundant state), validated
//!   against the `bignum` golden models,
//! * [`designs`] — the catalog of the paper's eight design families.
//!
//! # Example: estimate and simulate design #2
//!
//! ```
//! use hwmodel::designs;
//! use techlib::Technology;
//! use bignum::UBig;
//!
//! let d2 = &designs::paper_designs()[1]; // Montgomery, radix 2, CSA
//! let arch = d2.architecture(64).expect("64-bit slices are supported");
//! let est = arch.estimate(64, &Technology::g10_035());
//! assert!(est.clock_ns > 1.0 && est.clock_ns < 5.0);
//!
//! // The datapath actually computes the Montgomery product.
//! let m = UBig::from(0xF000_0001u64); // odd modulus
//! let a = UBig::from(0x1234_5678u64);
//! let b = UBig::from(0x0BAD_CAFEu64);
//! let out = hwmodel::sim::simulate(&arch, &a, &b, &m).expect("valid operands");
//! assert!(out.product < m);
//! ```

pub mod adder;
pub mod behavior;
pub mod design;
pub mod designs;
pub mod estimate;
pub mod fir;
pub mod multiplier;
pub mod sim;

pub use adder::AdderKind;
pub use design::{Algorithm, ArchitectureError, ModMulArchitecture};
pub use designs::{paper_designs, DesignFamily};
pub use estimate::{breakdown, AreaBreakdown, HwEstimate};
pub use fir::{FirArchitecture, FirError, FirEstimate};
pub use multiplier::DigitMultiplierKind;
pub use sim::{simulate, SimError, SimOutput};
