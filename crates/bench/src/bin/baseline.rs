//! Emits `BENCH_baseline.json`: the repo's performance-trajectory record,
//! combining the `bignum_ops`, `exploration`, `analyze` and `robust`
//! suites.
//!
//! ```text
//! cargo run --release -p bench --bin baseline            # writes BENCH_baseline.json
//! cargo run --release -p bench --bin baseline -- out.json
//! ```
//!
//! `DSE_BENCH_FAST=1` shortens the run for smoke testing.

use foundation::bench::combined_report;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());

    let suites = [
        bench::suites::bignum_ops(),
        bench::suites::exploration(),
        bench::suites::analyze(),
        bench::suites::robust(),
    ];
    let reports: Vec<_> = suites.iter().map(|h| h.report_json()).collect();
    for h in &suites {
        print!(
            "{}",
            foundation::bench::render_table(h.suite(), h.entries())
        );
    }

    let report = combined_report("dse-foundation baseline", &reports).to_string_pretty();
    match std::fs::write(&path, &report) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
