//! The append-only decision journal: crash-safe session persistence.
//!
//! Unlike [`crate::script::SessionScript`], which captures the *final*
//! state of a session, the journal records every keystroke-level
//! operation — including undos, revisions and reaffirmations — so that
//! [`Journal::replay`] reconstructs the exact focus, bindings **and
//! stale-flag set** of the original session. Records serialize one per
//! line (JSON lines, via the foundation codec), the natural shape for an
//! append-only file: a crash mid-write can only tear the final line, and
//! [`Journal::from_jsonl`] recovers tolerantly by dropping exactly that
//! torn tail (reported as a [`DiagCode::TornJournalTail`] diagnostic).

use std::fmt;
use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::diag::{DiagCode, Diagnostic, Report, Span};
use crate::error::DseError;
use crate::hierarchy::{CdoId, DesignSpace};
use crate::session::ExplorationSession;
use crate::value::Value;

/// One journaled session operation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JournalRecord {
    /// [`ExplorationSession::set_requirement`].
    SetRequirement {
        /// The requirement's name.
        name: String,
        /// The entered value.
        value: Value,
    },
    /// [`ExplorationSession::decide`].
    Decide {
        /// The decided issue.
        name: String,
        /// The chosen option.
        value: Value,
    },
    /// [`ExplorationSession::undo`].
    Undo,
    /// [`ExplorationSession::revise`].
    Revise {
        /// The revised property.
        name: String,
        /// The new value.
        value: Value,
    },
    /// [`ExplorationSession::reaffirm`].
    Reaffirm {
        /// The reaffirmed property.
        name: String,
    },
    /// [`ExplorationSession::annotate`].
    Annotate {
        /// The annotated property.
        name: String,
        /// The recorded rationale.
        note: String,
    },
}

foundation::impl_json_enum!(JournalRecord {
    SetRequirement { name, value },
    Decide { name, value },
    Undo,
    Revise { name, value },
    Reaffirm { name },
    Annotate { name, note },
});

/// Errors from journal recovery or replay.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RecoverError {
    /// A record *before* the final one failed to parse — the journal body
    /// is corrupt, not merely torn, and recovery refuses to guess.
    Corrupt {
        /// 1-based line number of the unparseable record.
        line: usize,
        /// The parser's explanation.
        detail: String,
    },
    /// A parsed record failed to re-apply against the space.
    Replay {
        /// 0-based index of the failing record.
        record: usize,
        /// The session error it produced.
        error: DseError,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Corrupt { line, detail } => {
                write!(f, "journal corrupt at line {line}: {detail}")
            }
            RecoverError::Replay { record, error } => {
                write!(f, "journal record {record} failed to replay: {error}")
            }
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Replay { error, .. } => Some(error),
            RecoverError::Corrupt { .. } => None,
        }
    }
}

/// What tolerant recovery had to do to load a journal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// The torn tail line that was dropped, if any.
    pub dropped_tail: Option<String>,
    /// Diagnostics describing the recovery (a [`DiagCode::TornJournalTail`]
    /// warning when a tail was dropped).
    pub diagnostics: Report,
}

impl RecoveryReport {
    /// Whether the journal loaded without dropping anything.
    pub fn is_clean(&self) -> bool {
        self.dropped_tail.is_none()
    }
}

/// An append-only sequence of session operations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Journal {
    records: Vec<JournalRecord>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends a record.
    pub fn append(&mut self, record: JournalRecord) {
        self.records.push(record);
    }

    /// The records, oldest first.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes to JSON lines: one compact record per line, trailing
    /// newline after each — the append-only on-disk format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&foundation::json::encode(r));
            out.push('\n');
        }
        out
    }

    /// Parses JSON lines tolerantly.
    ///
    /// Blank lines are skipped. An unparseable **final** record is the
    /// signature of a crash mid-append: it is dropped and reported in the
    /// [`RecoveryReport`]. An unparseable record anywhere *else* means
    /// the journal body is corrupt and recovery fails.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Corrupt`] for a bad non-final record.
    pub fn from_jsonl(text: &str) -> Result<(Journal, RecoveryReport), RecoverError> {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        let mut records = Vec::with_capacity(lines.len());
        let mut report = RecoveryReport::default();
        let last = lines.len().saturating_sub(1);
        for (i, (line_no, line)) in lines.iter().enumerate() {
            match foundation::json::decode::<JournalRecord>(line) {
                Ok(r) => records.push(r),
                Err(e) if i == last => {
                    report.dropped_tail = Some((*line).to_owned());
                    report.diagnostics.push(Diagnostic::new(
                        DiagCode::TornJournalTail,
                        Span::default(),
                        format!("dropped torn tail record at line {}: {e}", line_no + 1),
                    ));
                }
                Err(e) => {
                    return Err(RecoverError::Corrupt {
                        line: line_no + 1,
                        detail: e.to_string(),
                    })
                }
            }
        }
        Ok((Journal { records }, report))
    }

    /// Replays the journal against a fresh session on `space`/`root`,
    /// reconstructing the exact focus, bindings, log and stale flags.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Replay`] if a record no longer applies (e.g. the
    /// space changed underneath the journal).
    pub fn replay<'a>(
        &self,
        space: &'a DesignSpace,
        root: CdoId,
    ) -> Result<ExplorationSession<'a>, RecoverError> {
        let mut session = ExplorationSession::new(space, root);
        for (i, record) in self.records.iter().enumerate() {
            apply_record(&mut session, record)
                .map_err(|error| RecoverError::Replay { record: i, error })?;
        }
        Ok(session)
    }
}

fn apply_record(session: &mut ExplorationSession<'_>, record: &JournalRecord) -> Result<(), DseError> {
    match record {
        JournalRecord::SetRequirement { name, value } => {
            session.set_requirement(name, value.clone())
        }
        JournalRecord::Decide { name, value } => session.decide(name, value.clone()),
        JournalRecord::Undo => session.undo().map(|_| ()),
        JournalRecord::Revise { name, value } => session.revise(name, value.clone()).map(|_| ()),
        JournalRecord::Reaffirm { name } => {
            session.reaffirm(name);
            Ok(())
        }
        JournalRecord::Annotate { name, note } => session.annotate(name, note.clone()),
    }
}

/// A directory of per-session journals: the single, configurable home
/// for on-disk decision journals, replacing caller-supplied ad-hoc
/// paths. Each session id owns exactly one file, `<id>.jsonl`, and ids
/// are restricted to a filesystem-safe alphabet so an id can never
/// escape the directory.
///
/// Appends open the file, write one record, and close it again: a
/// daemon holding thousands of concurrently open sessions never holds
/// thousands of journal file handles (long-lived per-session handles
/// exhaust the process fd limit — the leak this API exists to prevent).
/// The close on every append doubles as the flush, so a crash can tear
/// at most the final record — exactly what [`Journal::from_jsonl`]'s
/// tolerant recovery expects.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalDir {
    dir: PathBuf,
}

/// File extension used for journal files inside a [`JournalDir`].
const JOURNAL_EXT: &str = "jsonl";

/// Suffix for in-progress compaction files (`<id>.jsonl.tmp`). A crash
/// mid-compaction leaves one behind; the live journal is still
/// authoritative, so boot simply sweeps them away.
const COMPACT_TMP_SUFFIX: &str = ".jsonl.tmp";

impl JournalDir {
    /// Opens (creating if needed) the journal directory. Stale
    /// compaction temp files from a crash mid-[`compact`](Self::compact)
    /// are swept away — the live journals they shadowed are intact.
    ///
    /// # Errors
    ///
    /// Any error creating the directory.
    pub fn create(dir: impl Into<PathBuf>) -> io::Result<JournalDir> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let journals = JournalDir { dir };
        journals.sweep_stale_temps()?;
        Ok(journals)
    }

    fn sweep_stale_temps(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let is_temp = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(COMPACT_TMP_SUFFIX));
            if is_temp {
                match fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Whether `id` is a usable session id: 1–128 characters drawn from
    /// `[A-Za-z0-9._-]`, not starting with a dot (no hidden files, no
    /// `..` traversal).
    pub fn is_valid_id(id: &str) -> bool {
        !id.is_empty()
            && id.len() <= 128
            && !id.starts_with('.')
            && id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    }

    fn checked_id(id: &str) -> io::Result<&str> {
        if JournalDir::is_valid_id(id) {
            Ok(id)
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid session id {id:?}"),
            ))
        }
    }

    /// The file a session id maps to.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] for an invalid id.
    pub fn file_for(&self, id: &str) -> io::Result<PathBuf> {
        let id = JournalDir::checked_id(id)?;
        Ok(self.dir.join(format!("{id}.{JOURNAL_EXT}")))
    }

    /// Appends one record to `id`'s journal, creating the file on first
    /// use. The handle is opened and closed inside the call.
    ///
    /// # Errors
    ///
    /// An invalid id, or any I/O error.
    pub fn append(&self, id: &str, record: &JournalRecord) -> io::Result<()> {
        let mut line = foundation::json::encode(record);
        line.push('\n');
        self.open_append(id)?.write_all(line.as_bytes())
    }

    /// Atomically replaces `id`'s journal with `checkpoint`'s records —
    /// the compaction step of the journal lifecycle. The checkpoint is
    /// written to a `.jsonl.tmp` sidecar, flushed to disk, then renamed
    /// over the live journal, so a crash at any instant leaves either
    /// the old journal or the complete new one on disk — never a torn
    /// mixture ([`JournalDir::create`] sweeps any leftover temp).
    ///
    /// # Errors
    ///
    /// An invalid id, or any I/O error; on error the live journal is
    /// untouched.
    pub fn compact(&self, id: &str, checkpoint: &Journal) -> io::Result<()> {
        let live = self.file_for(id)?;
        let temp = self.dir.join(format!(
            "{id}{COMPACT_TMP_SUFFIX}",
            id = JournalDir::checked_id(id)?
        ));
        {
            let mut file = fs::File::create(&temp)?;
            file.write_all(checkpoint.to_jsonl().as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&temp, &live)
    }

    /// How many records `id`'s journal holds on disk (0 when absent) —
    /// the size signal compaction policies key off. Counts newline-
    /// terminated lines without parsing them.
    ///
    /// # Errors
    ///
    /// An invalid id, or any read error.
    pub fn record_count(&self, id: &str) -> io::Result<usize> {
        match fs::read(self.file_for(id)?) {
            Ok(bytes) => Ok(bytes.iter().filter(|&&b| b == b'\n').count()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Whether `id` has a journal on disk.
    pub fn exists(&self, id: &str) -> bool {
        self.file_for(id).map(|p| p.is_file()).unwrap_or(false)
    }

    /// Loads and tolerantly parses `id`'s journal. `Ok(None)` when no
    /// journal exists.
    ///
    /// # Errors
    ///
    /// An invalid id or a read error (outer); a corrupt journal body
    /// (inner [`RecoverError`]).
    pub fn recover(
        &self,
        id: &str,
    ) -> io::Result<Option<Result<(Journal, RecoveryReport), RecoverError>>> {
        let path = self.file_for(id)?;
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Ok(Some(Journal::from_jsonl(&text)))
    }

    /// Deletes `id`'s journal (a cleanly closed session needs no
    /// recovery). Returns whether a file was removed.
    ///
    /// # Errors
    ///
    /// An invalid id, or any error other than the file being absent.
    pub fn remove(&self, id: &str) -> io::Result<bool> {
        match fs::remove_file(self.file_for(id)?) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Opens (creating if needed) `id`'s journal file for appending —
    /// the handle a [`JournalAppender`] holds across appends.
    ///
    /// # Errors
    ///
    /// An invalid id, or any open error.
    pub fn open_append(&self, id: &str) -> io::Result<fs::File> {
        OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.file_for(id)?)
    }

    /// Every session id with a journal in the directory, sorted.
    ///
    /// # Errors
    ///
    /// Any directory-read error.
    pub fn ids(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(JOURNAL_EXT) {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if JournalDir::is_valid_id(stem) {
                    out.push(stem.to_owned());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Tolerantly recovers every journal in the directory — the boot
    /// path of a session daemon. Per-journal corruption is reported in
    /// that journal's slot, never aborting the sweep.
    ///
    /// # Errors
    ///
    /// Only directory/file *read* errors; parse failures come back per
    /// id.
    #[allow(clippy::type_complexity)]
    pub fn recover_all(
        &self,
    ) -> io::Result<Vec<(String, Result<(Journal, RecoveryReport), RecoverError>)>> {
        let mut out = Vec::new();
        for id in self.ids()? {
            if let Some(result) = self.recover(&id)? {
                out.push((id, result));
            }
        }
        Ok(out)
    }
}

/// A per-session append handle over one [`JournalDir`] journal.
///
/// [`JournalDir::append`] opens and closes the file on every record so a
/// daemon never accumulates unbounded handles; a session that is *live*
/// (held open by the engine, bounded by the session cap) can instead
/// keep its handle open across appends through this type. Durability is
/// unchanged: `File::write_all` is unbuffered, so every append hits the
/// kernel before returning, and a crash still tears at most the final
/// record.
///
/// The handle must be [`invalidate`](Self::invalidate)d whenever the
/// underlying file is replaced or removed (compaction renames a fresh
/// checkpoint over the live journal, leaving an open handle pointed at
/// the unlinked inode); any append error also drops it, so the next
/// append reopens from a clean slate.
#[derive(Debug, Default)]
pub struct JournalAppender {
    file: Option<fs::File>,
}

impl JournalAppender {
    /// A closed appender; the first append opens the file.
    pub fn new() -> JournalAppender {
        JournalAppender::default()
    }

    /// Appends one record through the held handle, opening (and
    /// creating) the file on first use.
    ///
    /// # Errors
    ///
    /// An invalid id, or any I/O error — after which the handle is
    /// dropped so the next append reopens the file.
    pub fn append(
        &mut self,
        dir: &JournalDir,
        id: &str,
        record: &JournalRecord,
    ) -> io::Result<()> {
        if self.file.is_none() {
            self.file = Some(dir.open_append(id)?);
        }
        let mut line = foundation::json::encode(record);
        line.push('\n');
        let result = self
            .file
            .as_mut()
            .expect("handle opened above")
            .write_all(line.as_bytes());
        if result.is_err() {
            self.file = None;
        }
        result
    }

    /// Whether a handle is currently held open.
    pub fn is_open(&self) -> bool {
        self.file.is_some()
    }

    /// Drops the held handle; the next append reopens the file. Call
    /// after anything that replaces or removes the journal file
    /// (compaction, removal) so stale handles never write to an
    /// unlinked inode.
    pub fn invalidate(&mut self) {
        self.file = None;
    }
}

/// An [`ExplorationSession`] paired with its journal: every successful
/// operation is appended *after* it commits, so the journal never records
/// a rejected or rolled-back action.
#[derive(Debug, Clone, PartialEq)]
pub struct JournaledSession<'a> {
    session: ExplorationSession<'a>,
    journal: Journal,
}

impl<'a> JournaledSession<'a> {
    /// Starts a fresh journaled session.
    pub fn new(space: &'a DesignSpace, root: CdoId) -> Self {
        JournaledSession {
            session: ExplorationSession::new(space, root),
            journal: Journal::new(),
        }
    }

    /// Recovers a session from serialized journal text (tolerant of a
    /// torn tail), replaying it to the exact pre-interruption state.
    ///
    /// # Errors
    ///
    /// [`RecoverError`] for a corrupt body or a record that no longer
    /// replays.
    pub fn recover(
        space: &'a DesignSpace,
        root: CdoId,
        jsonl: &str,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let (journal, report) = Journal::from_jsonl(jsonl)?;
        let session = journal.replay(space, root)?;
        Ok((JournaledSession { session, journal }, report))
    }

    /// The live session (read-only; mutate through the journaling
    /// wrappers so the journal stays complete).
    pub fn session(&self) -> &ExplorationSession<'a> {
        &self.session
    }

    /// The journal so far.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Splits into the session and its journal.
    pub fn into_parts(self) -> (ExplorationSession<'a>, Journal) {
        (self.session, self.journal)
    }

    /// Reassembles a journaled session from parts (the inverse of
    /// [`into_parts`](Self::into_parts)); the caller asserts that
    /// `journal` really is the history that produced `session`.
    pub fn from_parts(session: ExplorationSession<'a>, journal: Journal) -> Self {
        JournaledSession { session, journal }
    }

    /// Journaling wrapper over [`ExplorationSession::set_requirement`].
    ///
    /// # Errors
    ///
    /// The session's error; nothing is journaled on failure.
    pub fn set_requirement(&mut self, name: &str, value: Value) -> Result<(), DseError> {
        self.session.set_requirement(name, value.clone())?;
        self.journal.append(JournalRecord::SetRequirement {
            name: name.to_owned(),
            value,
        });
        Ok(())
    }

    /// Journaling wrapper over [`ExplorationSession::decide`].
    ///
    /// # Errors
    ///
    /// The session's error; nothing is journaled on failure.
    pub fn decide(&mut self, name: &str, value: Value) -> Result<(), DseError> {
        self.session.decide(name, value.clone())?;
        self.journal.append(JournalRecord::Decide {
            name: name.to_owned(),
            value,
        });
        Ok(())
    }

    /// Journaling wrapper over [`ExplorationSession::undo`].
    ///
    /// # Errors
    ///
    /// [`DseError::NothingToUndo`] on an empty log.
    pub fn undo(&mut self) -> Result<(), DseError> {
        self.session.undo()?;
        self.journal.append(JournalRecord::Undo);
        Ok(())
    }

    /// Journaling wrapper over [`ExplorationSession::revise`].
    ///
    /// # Errors
    ///
    /// The session's error; nothing is journaled on failure.
    pub fn revise(&mut self, name: &str, value: Value) -> Result<Vec<String>, DseError> {
        let stale = self.session.revise(name, value.clone())?;
        self.journal.append(JournalRecord::Revise {
            name: name.to_owned(),
            value,
        });
        Ok(stale)
    }

    /// Journaling wrapper over [`ExplorationSession::reaffirm`].
    pub fn reaffirm(&mut self, name: &str) {
        self.session.reaffirm(name);
        self.journal
            .append(JournalRecord::Reaffirm { name: name.to_owned() });
    }

    /// Journaling wrapper over [`ExplorationSession::annotate`].
    ///
    /// # Errors
    ///
    /// The session's error; nothing is journaled on failure.
    pub fn annotate(&mut self, name: &str, note: impl Into<String>) -> Result<(), DseError> {
        let note = note.into();
        self.session.annotate(name, note.clone())?;
        self.journal.append(JournalRecord::Annotate {
            name: name.to_owned(),
            note,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip_through_json() {
        let records = vec![
            JournalRecord::SetRequirement {
                name: "EOL".into(),
                value: Value::Int(768),
            },
            JournalRecord::Decide {
                name: "Algorithm".into(),
                value: Value::from("Montgomery"),
            },
            JournalRecord::Undo,
            JournalRecord::Revise {
                name: "EOL".into(),
                value: Value::Int(512),
            },
            JournalRecord::Reaffirm {
                name: "Algorithm".into(),
            },
            JournalRecord::Annotate {
                name: "EOL".into(),
                note: "from the spec\nsecond line".into(),
            },
        ];
        let mut j = Journal::new();
        for r in records.clone() {
            j.append(r);
        }
        let text = j.to_jsonl();
        assert_eq!(text.lines().count(), records.len(), "one line per record");
        let (back, report) = Journal::from_jsonl(&text).unwrap();
        assert!(report.is_clean());
        assert_eq!(back.records(), records.as_slice());
    }

    #[test]
    fn torn_tail_is_dropped_and_reported() {
        let mut j = Journal::new();
        j.append(JournalRecord::SetRequirement {
            name: "EOL".into(),
            value: Value::Int(64),
        });
        j.append(JournalRecord::Undo);
        let mut text = j.to_jsonl();
        // Simulate a crash mid-append: half a record at the end.
        text.push_str("{\"Decide\":{\"name\":\"Alg");
        let (back, report) = Journal::from_jsonl(&text).unwrap();
        assert_eq!(back.len(), 2, "only the torn tail dropped");
        assert!(!report.is_clean());
        assert!(report.dropped_tail.as_deref().unwrap().contains("Decide"));
        assert_eq!(
            report.diagnostics.diagnostics()[0].code,
            DiagCode::TornJournalTail
        );
    }

    #[test]
    fn corrupt_middle_record_refuses_recovery() {
        let mut j = Journal::new();
        j.append(JournalRecord::Undo);
        j.append(JournalRecord::Undo);
        let text = j.to_jsonl();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(1, "not json at all");
        let garbled = lines.join("\n");
        let err = Journal::from_jsonl(&garbled).unwrap_err();
        assert!(matches!(err, RecoverError::Corrupt { line: 2, .. }), "{err}");
    }

    fn temp_journal_dir(tag: &str) -> JournalDir {
        let dir = std::env::temp_dir().join(format!(
            "dse-journal-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        JournalDir::create(dir).unwrap()
    }

    #[test]
    fn held_open_appender_matches_per_append_opens_and_survives_compaction() {
        let dir = temp_journal_dir("appender");
        let req = JournalRecord::SetRequirement {
            name: "EOL".into(),
            value: Value::Int(64),
        };
        let decide = JournalRecord::Decide {
            name: "Algorithm".into(),
            value: Value::from("Montgomery"),
        };

        // Lazy open: a fresh appender holds no handle and has created
        // nothing — `exists` semantics are unchanged by construction.
        let mut appender = JournalAppender::new();
        assert!(!appender.is_open());
        assert!(!dir.exists("s1"));

        // Appends through the held handle read back exactly like the
        // open-per-append path writes them.
        appender.append(&dir, "s1", &req).unwrap();
        assert!(appender.is_open());
        appender.append(&dir, "s1", &decide).unwrap();
        dir.append("s2", &req).unwrap();
        dir.append("s2", &decide).unwrap();
        assert_eq!(
            fs::read(dir.file_for("s1").unwrap()).unwrap(),
            fs::read(dir.file_for("s2").unwrap()).unwrap(),
            "held-open and open-per-append writes must be byte-identical"
        );
        let (journal, report) = dir.recover("s1").unwrap().unwrap().unwrap();
        assert!(report.is_clean());
        assert_eq!(journal.records(), &[req.clone(), decide.clone()]);

        // Compaction replaces the file by rename; a stale handle would
        // keep writing to the unlinked inode. Invalidate, then prove
        // the next append lands in the *new* file.
        let mut checkpoint = Journal::new();
        checkpoint.append(req.clone());
        dir.compact("s1", &checkpoint).unwrap();
        appender.invalidate();
        assert!(!appender.is_open());
        appender.append(&dir, "s1", &decide).unwrap();
        let (journal, report) = dir.recover("s1").unwrap().unwrap().unwrap();
        assert!(report.is_clean());
        assert_eq!(
            journal.records(),
            &[req.clone(), decide.clone()],
            "post-compaction append must reach the replacement file"
        );

        // Removal + invalidate: the next append recreates the journal.
        assert!(dir.remove("s1").unwrap());
        appender.invalidate();
        appender.append(&dir, "s1", &req).unwrap();
        assert!(dir.exists("s1"));
        assert_eq!(dir.record_count("s1").unwrap(), 1);
        let _ = std::fs::remove_dir_all(dir.path());
    }

    #[test]
    fn journal_dir_appends_and_recovers_per_id() {
        let dir = temp_journal_dir("roundtrip");
        dir.append(
            "s1",
            &JournalRecord::SetRequirement {
                name: "EOL".into(),
                value: Value::Int(64),
            },
        )
        .unwrap();
        dir.append("s1", &JournalRecord::Undo).unwrap();
        dir.append("s2", &JournalRecord::Undo).unwrap();
        assert!(dir.exists("s1"));
        assert!(!dir.exists("never-opened"));
        assert_eq!(dir.ids().unwrap(), vec!["s1".to_owned(), "s2".to_owned()]);

        let (journal, report) = dir.recover("s1").unwrap().unwrap().unwrap();
        assert!(report.is_clean());
        assert_eq!(journal.len(), 2);
        assert!(dir.recover("s3").unwrap().is_none());

        let all = dir.recover_all().unwrap();
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|(_, r)| r.is_ok()));

        assert!(dir.remove("s1").unwrap());
        assert!(!dir.remove("s1").unwrap());
        assert_eq!(dir.ids().unwrap(), vec!["s2".to_owned()]);
        let _ = std::fs::remove_dir_all(dir.path());
    }

    #[test]
    fn compaction_atomically_replaces_the_journal_and_boot_sweeps_temps() {
        let dir = temp_journal_dir("compact");
        // A history with churn: requirement, decide, undo, decide again.
        dir.append(
            "s1",
            &JournalRecord::SetRequirement {
                name: "EOL".into(),
                value: Value::Int(64),
            },
        )
        .unwrap();
        dir.append(
            "s1",
            &JournalRecord::Decide {
                name: "Algorithm".into(),
                value: Value::from("Classical"),
            },
        )
        .unwrap();
        dir.append("s1", &JournalRecord::Undo).unwrap();
        dir.append(
            "s1",
            &JournalRecord::Decide {
                name: "Algorithm".into(),
                value: Value::from("Montgomery"),
            },
        )
        .unwrap();
        assert_eq!(dir.record_count("s1").unwrap(), 4);

        // The compacted checkpoint carries only the surviving state.
        let mut checkpoint = Journal::new();
        checkpoint.append(JournalRecord::SetRequirement {
            name: "EOL".into(),
            value: Value::Int(64),
        });
        checkpoint.append(JournalRecord::Decide {
            name: "Algorithm".into(),
            value: Value::from("Montgomery"),
        });
        dir.compact("s1", &checkpoint).unwrap();
        assert_eq!(dir.record_count("s1").unwrap(), 2);
        let (back, report) = dir.recover("s1").unwrap().unwrap().unwrap();
        assert!(report.is_clean());
        assert_eq!(back.records(), checkpoint.records());
        // No temp file is left behind on success.
        assert!(!dir.path().join("s1.jsonl.tmp").exists());

        // A crash mid-compaction leaves a temp; reopening the directory
        // sweeps it and the live journal stays authoritative.
        std::fs::write(dir.path().join("s1.jsonl.tmp"), "{torn").unwrap();
        let reopened = JournalDir::create(dir.path()).unwrap();
        assert!(!reopened.path().join("s1.jsonl.tmp").exists());
        assert_eq!(reopened.record_count("s1").unwrap(), 2);
        // Temp files are invisible to the id sweep even if present.
        assert_eq!(reopened.ids().unwrap(), vec!["s1".to_owned()]);
        assert_eq!(dir.record_count("absent").unwrap(), 0);
        let _ = std::fs::remove_dir_all(dir.path());
    }

    #[test]
    fn journal_dir_rejects_traversal_ids() {
        let dir = temp_journal_dir("ids");
        for bad in ["", "..", "a/b", ".hidden", "x\\y", "a b", &"x".repeat(129)] {
            assert!(!JournalDir::is_valid_id(bad), "{bad:?}");
            assert!(dir.append(bad, &JournalRecord::Undo).is_err());
        }
        assert!(JournalDir::is_valid_id("session-42.alpha_B"));
        let _ = std::fs::remove_dir_all(dir.path());
    }

    #[test]
    fn journal_dir_recover_all_reports_torn_and_corrupt_files() {
        let dir = temp_journal_dir("recover-all");
        dir.append("ok", &JournalRecord::Undo).unwrap();
        // Torn tail: a crash mid-append.
        dir.append("torn", &JournalRecord::Undo).unwrap();
        let torn_path = dir.file_for("torn").unwrap();
        let mut text = std::fs::read_to_string(&torn_path).unwrap();
        text.push_str("{\"Decide\":{\"na");
        std::fs::write(&torn_path, text).unwrap();
        // Mid-body corruption: not recoverable.
        std::fs::write(
            dir.file_for("corrupt").unwrap(),
            "garbage\n{\"Undo\":null}\n",
        )
        .unwrap();

        let all = dir.recover_all().unwrap();
        let slot = |id: &str| all.iter().find(|(i, _)| i == id).unwrap();
        assert!(matches!(&slot("ok").1, Ok((_, r)) if r.is_clean()));
        assert!(matches!(&slot("torn").1, Ok((j, r)) if j.len() == 1 && !r.is_clean()));
        assert!(matches!(&slot("corrupt").1, Err(RecoverError::Corrupt { line: 1, .. })));
        let _ = std::fs::remove_dir_all(dir.path());
    }

    #[test]
    fn empty_and_blank_input_recover_cleanly() {
        let (j, report) = Journal::from_jsonl("").unwrap();
        assert!(j.is_empty());
        assert!(report.is_clean());
        let (j, _) = Journal::from_jsonl("\n\n  \n").unwrap();
        assert!(j.is_empty());
    }
}
