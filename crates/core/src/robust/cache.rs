//! Memoized supervised estimation.
//!
//! Every decide/undo/replay step re-runs the ready estimator contexts,
//! and in a real session the same `(tool, inputs)` pair recurs
//! constantly — undo returns to a previously estimated state, journal
//! replay re-visits every state, and walkthroughs sweep small input
//! grids. The [`EstimateCache`] memoizes [`super::Supervisor::estimate`]
//! results so those repeats cost a map lookup instead of a tool run.
//!
//! **Keying / invalidation rule.** The key is the pair
//! `(tool name, fingerprint of the complete input bindings)`. Because
//! the key covers *every* input the tool can see, an entry can never go
//! logically stale: a `decide` or rollback that changes any binding
//! changes the fingerprint, and the old entry simply stops being
//! addressed (and becomes a hit again after `undo`/replay returns to
//! that exact state). The only explicit invalidation surface is
//! [`EstimateCache::invalidate_tool`]/[`EstimateCache::clear`], for when
//! the *registry* changes underneath the cache (a tool is re-registered
//! or wrapped).
//!
//! **Provenance awareness.** Only figures whose provenance is
//! [`Provenance::Exact`] or [`Provenance::Estimated`] are stored.
//! Fallback and unavailable figures describe a *failure* of the primary
//! tool, not a property of the inputs; caching them would poison the
//! session after the detailed tool recovers. They are counted in
//! [`CacheStats::uncacheable`] instead.
//!
//! The cache is `Sync` (a mutexed map with atomic counters) so one cache
//! can serve estimator fan-outs running on the `foundation::par` pool.
//! Do **not** share a cache with a fault-injected registry
//! ([`super::FaultPlan`]): injected faults are call-indexed, and serving
//! a memoized figure would skip calls and shift the fault schedule.

use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::expr::Bindings;
use crate::intern::Symbol;
use crate::robust::{Figure, Provenance};

/// Monotonic counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed and ran the tool.
    pub misses: u64,
    /// Figures stored (primary-tool provenance only).
    pub stores: u64,
    /// Figures refused because their provenance was fallback or
    /// unavailable — kept out so degraded results never mask a
    /// recovered tool.
    pub uncacheable: u64,
    /// Entries dropped by [`EstimateCache::invalidate_tool`] /
    /// [`EstimateCache::clear`].
    pub invalidated: u64,
}

impl CacheStats {
    /// Hits over total lookups; 0.0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A provenance-aware memo table for supervised estimates, keyed by
/// `(tool, input fingerprint)`. See the module docs for the exact
/// caching and invalidation rules.
#[derive(Default)]
pub struct EstimateCache {
    entries: Mutex<HashMap<(u32, u64), Figure>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    uncacheable: AtomicU64,
    invalidated: AtomicU64,
}

impl EstimateCache {
    /// An empty cache.
    pub fn new() -> EstimateCache {
        EstimateCache::default()
    }

    /// A stable fingerprint of the complete bindings: FNV-1a over every
    /// `(name, value)` pair in name order, allocation-free.
    pub fn fingerprint(inputs: &Bindings) -> u64 {
        let mut h = Fnv::new();
        for (name, value) in inputs.iter() {
            // Field separators keep ("ab", "c") distinct from ("a", "bc").
            let _ = write!(h, "{name}\u{0}{value}\u{1}");
        }
        h.finish()
    }

    /// The cached figure for `(tool, fingerprint)`, bumping hit/miss
    /// counters.
    pub fn get(&self, tool: Symbol, fingerprint: u64) -> Option<Figure> {
        let entries = self.entries.lock().unwrap();
        match entries.get(&(tool.id(), fingerprint)) {
            Some(fig) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(fig.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `figure` if its provenance is trustworthy (exact or
    /// estimated); counts it as uncacheable otherwise. Returns whether
    /// the figure was stored.
    pub fn store(&self, tool: Symbol, fingerprint: u64, figure: &Figure) -> bool {
        match figure.provenance {
            Provenance::Exact | Provenance::Estimated => {
                self.entries
                    .lock()
                    .unwrap()
                    .insert((tool.id(), fingerprint), figure.clone());
                self.stores.fetch_add(1, Ordering::Relaxed);
                true
            }
            Provenance::Fallback | Provenance::Unavailable => {
                self.uncacheable.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Drops every entry for `tool` — for when the tool is re-registered
    /// or wrapped. Returns how many entries were dropped.
    pub fn invalidate_tool(&self, tool: &str) -> usize {
        let Some(sym) = Symbol::lookup(tool) else {
            return 0;
        };
        let mut entries = self.entries.lock().unwrap();
        let before = entries.len();
        entries.retain(|&(id, _), _| id != sym.id());
        let dropped = before - entries.len();
        self.invalidated.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Drops everything.
    pub fn clear(&self) {
        let mut entries = self.entries.lock().unwrap();
        self.invalidated
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        entries.clear();
    }

    /// The number of live entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for EstimateCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EstimateCache")
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// FNV-1a accumulating through `fmt::Write`, so fingerprinting formats
/// values straight into the hash without intermediate strings.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

impl fmt::Write for Fnv {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for b in s.bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn bindings(pairs: &[(&str, i64)]) -> Bindings {
        let mut b = Bindings::new();
        for (k, v) in pairs {
            b.insert(*k, Value::Int(*v));
        }
        b
    }

    #[test]
    fn fingerprint_tracks_every_binding() {
        let a = EstimateCache::fingerprint(&bindings(&[("EOL", 768), ("Radix", 2)]));
        let b = EstimateCache::fingerprint(&bindings(&[("EOL", 768), ("Radix", 4)]));
        let c = EstimateCache::fingerprint(&bindings(&[("EOL", 768)]));
        assert_ne!(a, b);
        assert_ne!(a, c);
        // ... and is insensitive to insertion order (maps are name-ordered).
        let mut rev = Bindings::new();
        rev.insert("Radix", Value::Int(2));
        rev.insert("EOL", Value::Int(768));
        assert_eq!(a, EstimateCache::fingerprint(&rev));
    }

    #[test]
    fn trustworthy_figures_round_trip() {
        let cache = EstimateCache::new();
        let tool = Symbol::intern("DelayTool");
        let fig = Figure::estimated(3.5, "DelayTool");
        assert!(cache.store(tool, 42, &fig));
        assert_eq!(cache.get(tool, 42), Some(fig));
        assert_eq!(cache.get(tool, 43), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
    }

    #[test]
    fn fallback_figures_never_poison_the_cache() {
        let cache = EstimateCache::new();
        let tool = Symbol::intern("FlakyTool");
        assert!(!cache.store(tool, 7, &Figure::fallback(1.0, "declared-range")));
        assert!(!cache.store(tool, 7, &Figure::unavailable("crashed")));
        assert_eq!(cache.get(tool, 7), None);
        assert_eq!(cache.stats().uncacheable, 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn invalidation_is_per_tool() {
        let cache = EstimateCache::new();
        let a = Symbol::intern("ToolA");
        let b = Symbol::intern("ToolB");
        cache.store(a, 1, &Figure::estimated(1.0, "ToolA"));
        cache.store(a, 2, &Figure::estimated(2.0, "ToolA"));
        cache.store(b, 1, &Figure::estimated(3.0, "ToolB"));
        assert_eq!(cache.invalidate_tool("ToolA"), 2);
        assert_eq!(cache.get(a, 1), None);
        assert!(cache.get(b, 1).is_some());
        assert_eq!(cache.invalidate_tool("never-registered-tool"), 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidated, 3);
    }
}
