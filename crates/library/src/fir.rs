//! A DSP-domain design space layer: direct-form FIR filters.
//!
//! The paper's closing claim is that the layer "can be tailored to the
//! needs and resources of each design environment"; this module is a
//! third domain (after cryptography and IDCT) authored against the same
//! framework, backed by the `hwmodel::fir` substrate. Its generalized
//! issue is the classic DSP lever: parallelism — a filter with one MAC
//! per tap and a time-multiplexed single-MAC filter occupy radically
//! different evaluation-space regions.

use dse::constraint::{ConsistencyConstraint, Fidelity, Relation};
use dse::error::DseError;
use dse::eval::FigureOfMerit;
use dse::expr::{CmpOp, Expr, Pred};
use dse::hierarchy::{CdoId, DesignSpace};
use dse::property::{Property, Unit};
use dse::value::{Domain, Value};
use hwmodel::FirArchitecture;
use techlib::Technology;

use crate::core_record::CoreRecord;
use crate::reuse::ReuseLibrary;

/// The built FIR layer with handles to its CDOs.
#[derive(Debug, Clone)]
pub struct FirLayer {
    /// The layer.
    pub space: DesignSpace,
    /// The root FIR CDO.
    pub fir: CdoId,
    /// The per-parallelism families.
    pub families: Vec<CdoId>,
}

/// Builds the FIR design space layer.
///
/// # Errors
///
/// Propagates layer-construction errors.
pub fn build_layer() -> Result<FirLayer, DseError> {
    let mut s = DesignSpace::new("fir-filters");
    let fir = s.add_root("FirFilter", "direct-form FIR filters");

    s.add_property(
        fir,
        Property::requirement("Taps", Domain::int_range(1, 256), None, "filter order + 1"),
    )?;
    s.add_property(
        fir,
        Property::requirement(
            "DataWidth",
            Domain::int_range(4, 32),
            Some(Unit::bits()),
            "sample width",
        ),
    )?;
    s.add_property(
        fir,
        Property::requirement(
            "SampleRateMsps",
            Domain::real_up_to(1000.0),
            Some(Unit::new("Msps")),
            "required output sample rate",
        ),
    )?;
    s.add_property(
        fir,
        Property::generalized_issue(
            "Parallelism",
            Domain::options(["parallel", "semi-parallel", "serial"]),
            "MAC-per-tap vs time-multiplexed structures: radically different area/rate families",
        ),
    )?;
    let families = s.specialize(fir, "Parallelism")?;

    s.add_property(
        fir,
        Property::issue_with_default(
            "MacUnits",
            Domain::options([1, 2, 4, 8, 16, 32, 64, 128, 256]),
            Value::Int(2),
            "physical MAC count (1 = fully serial)",
        ),
    )?;
    s.add_property(
        fir,
        Property::issue(
            "CoefficientWidth",
            Domain::options([8, 10, 12, 16]),
            "coefficient quantization",
        ),
    )?;

    // CC8 (exact): a MAC schedule needs Taps/MacUnits cycles per sample.
    s.add_constraint(
        fir,
        ConsistencyConstraint::new(
            "CC8",
            "cycles per output sample follow the MAC schedule",
            ["Taps".to_owned(), "MacUnits".to_owned()],
            ["CyclesPerSample".to_owned()],
            Relation::Quantitative {
                target: "CyclesPerSample".to_owned(),
                formula: Expr::prop("Taps").div(Expr::prop("MacUnits")),
                fidelity: Fidelity::Exact,
            },
        ),
    )?;
    // CC9 (heuristic): a single-MAC filter cannot sustain tens of Msps on
    // long filters.
    s.add_constraint(
        fir,
        ConsistencyConstraint::new(
            "CC9",
            "serial structures cannot meet high sample rates on long filters",
            ["Taps".to_owned(), "SampleRateMsps".to_owned()],
            ["Parallelism".to_owned()],
            Relation::InconsistentOptions(Pred::all([
                Pred::is("Parallelism", "serial"),
                Pred::cmp(CmpOp::Ge, Expr::prop("Taps"), Expr::constant(16)),
                Pred::cmp(CmpOp::Ge, Expr::prop("SampleRateMsps"), Expr::constant(20)),
            ])),
        ),
    )?;

    debug_assert!(s.validate().is_empty());
    Ok(FirLayer {
        space: s,
        fir,
        families,
    })
}

/// Builds the FIR reuse library: parallel, semi-parallel and serial cores
/// across tap counts and widths, priced by the `hwmodel::fir` substrate.
pub fn build_library(tech: &Technology) -> ReuseLibrary {
    let mut lib = ReuseLibrary::new(format!("fir cores @ {tech}"));
    for taps in [16u32, 32, 64] {
        for (data_width, coeff_width) in [(12u32, 12u32), (16, 16)] {
            for macs in [1u32, 4, taps] {
                let Ok(arch) = FirArchitecture::new(taps, data_width, coeff_width, macs) else {
                    continue;
                };
                let est = arch.estimate(tech);
                let parallelism = if macs == taps {
                    "parallel"
                } else if macs == 1 {
                    "serial"
                } else {
                    "semi-parallel"
                };
                lib.push(
                    CoreRecord::new(
                        format!("fir{taps}x{data_width}-{macs}mac"),
                        "in-house",
                        format!("{arch}"),
                    )
                    .bind("Parallelism", parallelism)
                    .bind("MacUnits", macs as i64)
                    .bind("Taps", taps as i64)
                    .bind("DataWidth", data_width as i64)
                    .bind("CoefficientWidth", coeff_width as i64)
                    .merit(FigureOfMerit::AreaUm2, est.area_um2)
                    .merit(FigureOfMerit::DelayNs, est.sample_time_ns)
                    .merit(FigureOfMerit::ClockNs, est.clock_ns)
                    .merit(FigureOfMerit::LatencyCycles, est.cycles_per_sample as f64)
                    .merit(FigureOfMerit::PowerMw, est.power_mw),
                );
            }
        }
    }
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;
    use dse::session::ExplorationSession;

    #[test]
    fn layer_builds_with_three_families() {
        let layer = build_layer().unwrap();
        assert_eq!(layer.families.len(), 3);
        assert_eq!(
            layer.space.path_string(layer.families[0]),
            "FirFilter.parallel"
        );
        assert!(layer.space.validate().is_empty());
    }

    #[test]
    fn library_covers_all_parallelism_families() {
        let lib = build_library(&Technology::g10_035());
        assert_eq!(lib.len(), 18); // 3 taps × 2 widths × 3 parallelisms
        for family in ["parallel", "semi-parallel", "serial"] {
            assert!(
                lib.cores()
                    .iter()
                    .any(|c| c.binding("Parallelism") == Some(&Value::from(family))),
                "{family}"
            );
        }
    }

    #[test]
    fn cc9_rejects_serial_for_fast_long_filters() {
        let layer = build_layer().unwrap();
        let mut ses = ExplorationSession::new(&layer.space, layer.fir);
        ses.set_requirement("Taps", Value::from(64)).unwrap();
        ses.set_requirement("DataWidth", Value::from(12)).unwrap();
        ses.set_requirement("SampleRateMsps", Value::from(40.0))
            .unwrap();
        let err = ses
            .decide("Parallelism", Value::from("serial"))
            .unwrap_err();
        assert!(
            matches!(err, DseError::ConstraintViolation { ref constraint, .. } if constraint == "CC9")
        );
        ses.decide("Parallelism", Value::from("parallel")).unwrap();
    }

    #[test]
    fn cc8_derives_the_cycle_count() {
        let layer = build_layer().unwrap();
        let mut ses = ExplorationSession::new(&layer.space, layer.fir);
        ses.set_requirement("Taps", Value::from(64)).unwrap();
        ses.set_requirement("DataWidth", Value::from(12)).unwrap();
        ses.set_requirement("SampleRateMsps", Value::from(10.0))
            .unwrap();
        ses.decide("Parallelism", Value::from("semi-parallel"))
            .unwrap();
        ses.decide("MacUnits", Value::from(4)).unwrap();
        assert!(ses
            .derived()
            .contains(&("CyclesPerSample".to_owned(), Value::Int(16))));
    }

    #[test]
    fn exploration_prunes_to_the_committed_family() {
        let layer = build_layer().unwrap();
        let lib = build_library(&Technology::g10_035());
        let mut exp = Explorer::new(&layer.space, layer.fir, &lib);
        exp.session
            .set_requirement("Taps", Value::from(32))
            .unwrap();
        exp.session
            .set_requirement("DataWidth", Value::from(16))
            .unwrap();
        exp.session
            .set_requirement("SampleRateMsps", Value::from(40.0))
            .unwrap();
        exp.session
            .decide("Parallelism", Value::from("parallel"))
            .unwrap();
        let survivors = exp.surviving_cores();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].name(), "fir32x16-32mac");
        // ... and it actually meets the rate.
        let sample_ns = survivors[0].merit_value(&FigureOfMerit::DelayNs).unwrap();
        assert!(1000.0 / sample_ns >= 40.0);
    }

    #[test]
    fn families_occupy_distinct_evaluation_regions() {
        // The justification for the generalized issue, Fig.-3 style.
        let lib = build_library(&Technology::g10_035());
        let mean = |family: &str, merit: &FigureOfMerit| {
            let vals: Vec<f64> = lib
                .cores()
                .iter()
                .filter(|c| c.binding("Parallelism") == Some(&Value::from(family)))
                .filter_map(|c| c.merit_value(merit))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            mean("parallel", &FigureOfMerit::AreaUm2)
                > 3.0 * mean("serial", &FigureOfMerit::AreaUm2)
        );
        assert!(
            mean("serial", &FigureOfMerit::DelayNs)
                > 5.0 * mean("parallel", &FigureOfMerit::DelayNs)
        );
    }
}
