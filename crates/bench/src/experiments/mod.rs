//! One module per reproduced table/figure. Each exposes a typed `run`
//! producing the experiment's data and a `render` producing the printable
//! report; the `tables` binary dispatches on artifact name.

pub mod ablation_cc2;
pub mod ablation_pruning;
pub mod cdos;
pub mod fig10;
pub mod fig12;
pub mod fig3;
pub mod fig6;
pub mod fig9;
pub mod fir;
pub mod hierarchy;
pub mod methods;
pub mod power;
pub mod table1;
pub mod walkthrough;

/// Every experiment name the harness knows, with a one-line description.
pub const ALL: [(&str, &str); 14] = [
    (
        "table1",
        "Table 1: the eight design families across slice widths",
    ),
    (
        "fig6",
        "Fig. 6: 1024-bit modular multiplication, hardware vs software",
    ),
    (
        "fig9",
        "Fig. 9: Brickell vs Montgomery evaluation space at 768 bits",
    ),
    (
        "fig12",
        "Fig. 12: 64-bit Montgomery multipliers, designs #1–#6",
    ),
    (
        "fig3",
        "Figs. 2/3: IDCT organisation coherence (abstraction vs generalization)",
    ),
    (
        "fig10",
        "Fig. 10: Montgomery datapath functional validation vs golden model",
    ),
    (
        "hierarchy",
        "Figs. 4/5/7: the CDO hierarchies (self-documentation)",
    ),
    (
        "cdos",
        "Figs. 8/11: OMM requirement and design-issue listings",
    ),
    (
        "fig13",
        "Fig. 13 + Section 5: the constraint-driven selection walkthrough",
    ),
    (
        "ablation-pruning",
        "Ablation A1: pruning power of generalized-first ordering",
    ),
    (
        "ablation-cc2",
        "Ablation A2: CC2 heuristic formula vs cycle-accurate simulation",
    ),
    (
        "power",
        "Extension E-P1: power/energy figures of merit (the paper's work in progress)",
    ),
    (
        "methods",
        "Extension E-M1: coprocessor-level exponentiation-method exploration",
    ),
    (
        "fir",
        "Extension E-D1: the FIR (DSP) domain layer and its parallelism families",
    ),
];
