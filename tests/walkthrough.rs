//! End-to-end Section-5 scenarios through the public API.

use design_space_layer::coproc::spec::KocSpec;
use design_space_layer::coproc::walkthrough;
use design_space_layer::dse::eval::FigureOfMerit;
use design_space_layer::dse::value::Value;
use design_space_layer::dse_library::crypto;
use design_space_layer::techlib::{FabricationNode, LayoutStyle, Technology};

#[test]
fn paper_walkthrough_selects_verified_montgomery_csa() {
    let report = walkthrough::run(&KocSpec::paper(), &Technology::g10_035()).unwrap();
    let core = report.selected.expect("satisfiable spec");
    assert_eq!(core.binding("Algorithm"), Some(&Value::from("Montgomery")));
    assert_eq!(
        core.binding("AdderStructure"),
        Some(&Value::from("carry-save"))
    );
    assert!(report.functionally_verified);
    assert!(core.merit_value(&FigureOfMerit::TimeUs).unwrap() <= 8.0);
}

#[test]
fn even_modulus_forces_brickell_and_still_verifies() {
    let spec = KocSpec {
        modulo_odd_guaranteed: false,
        max_latency_us: 25.0,
        ..KocSpec::paper()
    };
    let report = walkthrough::run(&spec, &Technology::g10_035()).unwrap();
    let core = report.selected.expect("brickell candidates exist");
    assert_eq!(core.binding("Algorithm"), Some(&Value::from("Brickell")));
    assert!(report.functionally_verified);
}

#[test]
fn older_technology_misses_the_tight_spec() {
    // In 0.7 µm, clocks double; with a 4 µs bound the older node loses
    // most (or all) of its candidates while 0.35 µm keeps plenty.
    let spec = KocSpec {
        max_latency_us: 4.0,
        ..KocSpec::paper()
    };
    let tech07 = Technology::new(FabricationNode::n0700(), LayoutStyle::StandardCell);
    let tight = walkthrough::run(&spec, &tech07).unwrap();
    let in_035 = walkthrough::run(&spec, &Technology::g10_035()).unwrap();
    assert!(
        tight.candidates.len() < in_035.candidates.len(),
        "0.7 µm: {} candidates vs 0.35 µm: {}",
        tight.candidates.len(),
        in_035.candidates.len()
    );
    assert!(!in_035.candidates.is_empty());
}

#[test]
fn pruning_trace_is_monotone_and_ends_nonempty() {
    let report = walkthrough::run(&KocSpec::paper(), &Technology::g10_035()).unwrap();
    for pair in report.steps.windows(2) {
        assert!(pair[1].surviving <= pair[0].surviving);
    }
    assert!(report.steps.last().unwrap().surviving > 0);
    // Range information narrows as the space prunes.
    let first_spread = report.steps[1]
        .delay_range_ns
        .map(|(lo, hi)| hi - lo)
        .unwrap();
    let last_spread = report
        .steps
        .last()
        .unwrap()
        .delay_range_ns
        .map(|(lo, hi)| hi - lo)
        .unwrap();
    assert!(last_spread < first_spread);
}

#[test]
fn walkthrough_against_a_custom_library_subset() {
    // A design environment with only the radix-2 families in its library.
    let layer = crypto::build_layer().unwrap();
    let full = crypto::build_library(&Technology::g10_035(), 768);
    let mut partial = design_space_layer::dse_library::ReuseLibrary::new("radix-2 only");
    for core in full.cores() {
        if core.binding("Radix") == Some(&Value::from(2)) {
            partial.push(core.clone());
        }
    }
    let report =
        walkthrough::run_with_library(&KocSpec::paper(), &Technology::g10_035(), &layer, &partial)
            .unwrap();
    let core = report.selected.expect("radix-2 CSA cores meet 8 µs");
    assert_eq!(core.binding("Radix"), Some(&Value::from(2)));
    assert!(report.functionally_verified);
}
