//! Hierarchy checks — DSL007 / DSL008 (structural variant) / DSL010.
//!
//! The `add_property` API refuses duplicate names along the inheritance
//! chain, but spaces loaded from JSON (or built by external tools) carry
//! no such guarantee — the analyzer re-checks the invariants statically.

use crate::diag::{DiagCode, Diagnostic, Span};
use crate::hierarchy::{CdoId, DesignSpace};
use crate::property::PropertyKind;

/// DSL007: a property re-declared at a descendant silently shadows the
/// ancestor's declaration (nearest-wins lookup would hide the original
/// domain and kind).
pub(crate) fn shadowed_node(space: &DesignSpace, id: CdoId, out: &mut Vec<Diagnostic>) {
    let node = space.node(id);
    let Some(parent) = node.parent() else {
        return;
    };
    for p in node.own_properties() {
        if let Some((owner, _)) = space.find_property(parent, p.name()) {
            out.push(Diagnostic::new(
                DiagCode::ShadowedProperty,
                Span::at(space.path_string(id)).property(p.name()),
                format!(
                    "re-declares {:?}, shadowing the declaration at {}",
                    p.name(),
                    space.path_string(owner)
                ),
            ));
        }
    }
}

/// DSL008 (structural variant): a spawned child whose issue the parent
/// does not declare, or whose spawning option is outside the issue's
/// domain — either way the session can never descend into it.
pub(crate) fn dangling_node(space: &DesignSpace, id: CdoId, out: &mut Vec<Diagnostic>) {
    let node = space.node(id);
    let Some((issue, option)) = node.spawned_by() else {
        return;
    };
    let Some(parent) = node.parent() else {
        return;
    };
    match space.find_property(parent, issue) {
        None => out.push(Diagnostic::new(
            DiagCode::UnreachableChild,
            Span::at(space.path_string(id)).property(issue),
            format!("unreachable: spawned by {issue:?}, which no ancestor declares"),
        )),
        Some((_, prop)) => {
            if !prop.domain().contains(option) {
                out.push(Diagnostic::new(
                    DiagCode::UnreachableChild,
                    Span::at(space.path_string(id)).property(issue),
                    format!(
                        "unreachable: spawning option {option} is outside the domain {} of {issue:?}",
                        prop.domain()
                    ),
                ));
            }
        }
    }
}

/// DSL010: a generalized issue that is *partially* specialized — some
/// options have spawned children, others do not, so deciding a missing
/// option would fail with `OptionNotSpecialized` mid-session. A fully
/// unspecialized issue is taken as deliberate deferral and not flagged.
pub(crate) fn unspecialized_node(space: &DesignSpace, id: CdoId, out: &mut Vec<Diagnostic>) {
    let node = space.node(id);
    let Some(issue) = node.generalized_issue() else {
        return;
    };
    let Some(prop) = node
        .own_properties()
        .iter()
        .find(|p| p.name() == issue && p.kind() == PropertyKind::GeneralizedIssue)
    else {
        return;
    };
    let Some(options) = prop.domain().enumerate() else {
        return;
    };
    let spawned: Vec<_> = node
        .children()
        .iter()
        .filter_map(|&c| space.node(c).spawned_by())
        .filter(|(i, _)| *i == issue)
        .map(|(_, v)| v.clone())
        .collect();
    if spawned.is_empty() {
        return;
    }
    for option in options {
        if !spawned.iter().any(|s| s.matches(&option)) {
            out.push(Diagnostic::new(
                DiagCode::UnspecializedOption,
                Span::at(space.path_string(id)).property(issue),
                format!("option {option} of generalized issue {issue:?} has no spawned child CDO"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::property::Property;
    use crate::value::{Domain, Value};

    #[test]
    fn partially_specialized_issue_is_flagged() {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::generalized_issue("Style", Domain::options(["A", "B", "C"]), ""),
        )
        .unwrap();
        s.specialize_option(root, "Style", Value::from("A")).unwrap();
        let r = analyze(&s);
        let hits: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::UnspecializedOption)
            .collect();
        assert_eq!(hits.len(), 2, "{r}");
    }

    #[test]
    fn near_miss_fully_specialized_and_fully_deferred_are_clean() {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::generalized_issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        s.specialize(root, "Style").unwrap();
        // A second, deliberately deferred issue on a child.
        let a = s.find_by_path("Root.A").unwrap();
        s.add_property(
            a,
            Property::generalized_issue("Sub", Domain::options(["x", "y"]), ""),
        )
        .unwrap();
        let r = analyze(&s);
        assert!(r.is_clean(), "{r}");
    }
}
